"""Quickstart: Deep OLA in five minutes.

Generates a small TPC-H dataset, then watches a grouped aggregate refine
itself: every snapshot is a usable estimate of the final answer, and the
last snapshot *is* the exact answer.

Run:  python examples/quickstart.py
"""

import tempfile

from repro import F, WakeContext, col
from repro.tpch import generate_and_load


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="wake_quickstart_")
    print(f"Generating TPC-H (SF 0.005) under {workdir} ...")
    catalog, _tables = generate_and_load(
        workdir, scale_factor=0.005, fact_partitions=8
    )

    ctx = WakeContext(catalog)

    # An evolving data frame: revenue per return flag.  The aggregate is
    # *growth-scaled* (paper §5), so early estimates already approximate
    # the final totals rather than the partial sums seen so far.
    lineitem = ctx.table("lineitem")
    revenue = lineitem.select(
        l_returnflag="l_returnflag",
        rev=col("l_extendedprice") * (1 - col("l_discount")),
    )
    plan = revenue.agg(F.sum("rev").alias("revenue"),
                       by=["l_returnflag"])

    print("\nOLA snapshots (estimates converge to the exact answer):")
    edf = ctx.run(plan)
    for snapshot in edf:
        by_flag = dict(
            zip(snapshot.frame.column("l_returnflag").tolist(),
                snapshot.frame.column("revenue").tolist())
        )
        cells = "  ".join(
            f"{flag}={value:,.0f}" for flag, value in
            sorted(by_flag.items())
        )
        print(f"  t={snapshot.t:5.2f}  wall={snapshot.wall_time:6.3f}s  "
              f"{cells}")

    print("\nFinal (exact) answer:")
    final = edf.get_final()
    for flag, value in zip(final.column("l_returnflag").tolist(),
                           final.column("revenue").tolist()):
        print(f"  {flag}: {value:,.2f}")
    print(f"\nThe first estimate arrived at "
          f"{edf.first().wall_time:.3f}s; the exact answer at "
          f"{edf.snapshots[-1].wall_time:.3f}s.")


if __name__ == "__main__":
    main()
