"""Multi-query serving demo: one process, three concurrent TPC-H
queries, live snapshot streams, and a mid-flight cancellation.

Launches the NDJSON snapshot server on an ephemeral port, submits three
TPC-H queries at different priorities, prints their snapshot
refinements as they interleave, then cancels one query mid-flight.

Run:  python examples/serve_demo.py
"""

import tempfile
import threading

from repro import WakeContext
from repro.service import QueryService, ServiceClient, SnapshotServer
from repro.tpch import generate_and_load

#: (query, priority): q01 heavy scan, q06 selective filter at double
#: share, q03 a join we will cancel partway through.
SUBMISSIONS = [("q01", 1.0), ("q06", 2.0), ("q03", 1.0)]
CANCEL_QUERY = "q03"
CANCEL_AFTER_SNAPSHOTS = 2

print_lock = threading.Lock()


def watch(port: int, name: str, session_id: str,
          control: ServiceClient) -> None:
    """Subscribe to one session and print its refinements."""
    with ServiceClient(port=port, timeout=60) as client:
        seen = 0
        for event in client.subscribe(session_id, include_frame=False):
            if event["event"] == "end":
                with print_lock:
                    print(f"  [{name}] -> {event['state'].upper()}")
                return
            seen += 1
            with print_lock:
                print(f"  [{name}] snapshot {event['sequence']:>2}  "
                      f"t={event['t']:5.2f}  "
                      f"rows={event['n_rows']:>5}  "
                      f"{'FINAL' if event['final'] else ''}")
            if name == CANCEL_QUERY and seen == CANCEL_AFTER_SNAPSHOTS:
                state = control.cancel(session_id)
                with print_lock:
                    print(f"  [{name}] ... cancelled mid-flight "
                          f"(state={state})")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="wake_serve_demo_")
    print(f"Generating TPC-H (SF 0.01) under {workdir} ...")
    catalog, _tables = generate_and_load(
        workdir, scale_factor=0.01, fact_partitions=24
    )

    server = SnapshotServer(
        QueryService(WakeContext(catalog)), port=0
    ).start()
    print(f"snapshot server listening on 127.0.0.1:{server.port}\n")

    try:
        with ServiceClient(port=server.port, timeout=60) as control:
            watchers = []
            for query, priority in SUBMISSIONS:
                session_id = control.submit(query, priority=priority)
                print(f"submitted {query} as {session_id} "
                      f"(priority {priority})")
                thread = threading.Thread(
                    target=watch,
                    args=(server.port, query, session_id, control),
                )
                watchers.append(thread)
            print("\ninterleaved snapshot refinements:")
            for thread in watchers:
                thread.start()
            for thread in watchers:
                thread.join()

            print("\nfinal session states:")
            for status in control.status()["sessions"]:
                print(f"  {status['name']}: {status['state']} "
                      f"(t={status['t']:.2f}, "
                      f"{status['snapshots']} snapshots, "
                      f"{status['steps']} partition-steps)")
    finally:
        server.stop()
    print("\nserver stopped.")


if __name__ == "__main__":
    main()
