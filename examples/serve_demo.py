"""Multi-query serving demo: one process, concurrent TPC-H queries,
shared scans, a plan-hash cache hit, and a mid-flight cancellation.

Launches the NDJSON snapshot server on an ephemeral port, submits three
TPC-H queries at different priorities (plus a duplicate submit that
*attaches* to an in-flight identical session instead of re-executing),
prints their snapshot refinements as they interleave, then cancels one
query mid-flight.  A background thread polls the server's ``metrics``
op once a second and prints a compact steps/s + snapshot-lag dashboard
line while the queries refine.

Run:  python examples/serve_demo.py
"""

import tempfile
import threading

from repro import ExecutionOptions, WakeContext
from repro.service import (
    QueryService,
    ServiceClient,
    SessionHandle,
    SnapshotServer,
)
from repro.tpch import generate_and_load

#: (query, priority): q01 heavy scan, q06 selective filter at double
#: share, q03 a join we will cancel partway through.
SUBMISSIONS = [("q01", 1.0), ("q06", 2.0), ("q03", 1.0)]
CANCEL_QUERY = "q03"
#: Submitted a second time mid-flight: its plan hash matches the live
#: q06 session, so the submit attaches (cache_hit) instead of running.
DUPLICATE_QUERY = "q06"
CANCEL_AFTER_SNAPSHOTS = 2

print_lock = threading.Lock()


def dashboard(port: int, stop: threading.Event) -> None:
    """Poll the ``metrics`` op once a second over a dedicated
    connection (``ServiceClient`` is not thread-safe) and print one
    compact health line per tick."""
    with ServiceClient(port=port, timeout=60) as client:
        previous_steps = 0.0
        while True:
            report = client.metrics()
            steps = report["steps_total"]
            rate = steps - previous_steps
            previous_steps = steps
            lags = [
                s["snapshot_lag_seconds"]
                for s in report["sessions"].values()
                if s["snapshot_lag_seconds"] is not None
            ]
            worst = max(lags) * 1000.0 if lags else 0.0
            with print_lock:
                print(f"  [metrics] {rate:4.0f} steps/s  "
                      f"queue={report['run_queue_depth']}  "
                      f"snapshots={report['snapshots_published_total']:.0f}  "
                      f"worst-lag={worst:5.1f} ms  "
                      f"drops={report['buffer_drops_total']:.0f}")
            if stop.wait(1.0):
                return


def watch(name: str, handle: SessionHandle) -> None:
    """Subscribe to one session's handle and print its refinements
    (``handle.subscribe()`` opens its own connection, so the control
    connection stays free for the mid-flight cancel)."""
    seen = 0
    for event in handle.subscribe(include_frame=False):
        if event["event"] == "end":
            with print_lock:
                print(f"  [{name}] -> {event['state'].upper()}")
            return
        seen += 1
        with print_lock:
            print(f"  [{name}] snapshot {event['sequence']:>2}  "
                  f"t={event['t']:5.2f}  "
                  f"rows={event['n_rows']:>5}  "
                  f"{'FINAL' if event['final'] else ''}")
        if name == CANCEL_QUERY and seen == CANCEL_AFTER_SNAPSHOTS:
            state = handle.cancel()
            with print_lock:
                print(f"  [{name}] ... cancelled mid-flight "
                      f"(state={state})")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="wake_serve_demo_")
    print(f"Generating TPC-H (SF 0.01) under {workdir} ...")
    catalog, _tables = generate_and_load(
        workdir, scale_factor=0.01, fact_partitions=24
    )

    # Shared scans + the plan-hash result cache + telemetry on for
    # every submit (what `repro serve` defaults to).
    ctx = WakeContext(
        catalog,
        options=ExecutionOptions(scan_share=True, result_cache=True,
                                 telemetry=True),
    )
    server = SnapshotServer(QueryService(ctx), port=0).start()
    print(f"snapshot server listening on 127.0.0.1:{server.port}\n")

    stop_dashboard = threading.Event()
    ticker = threading.Thread(
        target=dashboard, args=(server.port, stop_dashboard),
        daemon=True,
    )
    try:
        with ServiceClient(port=server.port, timeout=60) as control:
            watchers = []
            for query, priority in SUBMISSIONS:
                handle = control.submit(query, priority=priority)
                print(f"submitted {query} as {handle} "
                      f"(priority {priority})")
                watchers.append(threading.Thread(
                    target=watch, args=(query, handle),
                ))
            # An identical submit while the first is in flight: the
            # service attaches it to the running session (replaying the
            # snapshot prefix) instead of executing it again.
            duplicate = control.submit(DUPLICATE_QUERY)
            print(f"submitted {DUPLICATE_QUERY} again as {duplicate}: "
                  f"cache_hit={duplicate.cache_hit} "
                  f"(attached to {duplicate.attached_to})")
            watchers.append(threading.Thread(
                target=watch,
                args=(f"{DUPLICATE_QUERY}', attached", duplicate),
            ))
            print("\ninterleaved snapshot refinements:")
            ticker.start()
            for thread in watchers:
                thread.start()
            for thread in watchers:
                thread.join()
            stop_dashboard.set()
            ticker.join()

            status = control.status()
            print("\nfinal session states:")
            for session in status["sessions"]:
                tag = (" [cache hit]" if session.get("cache_hit")
                       else "")
                print(f"  {session['name']}: {session['state']} "
                      f"(t={session['t']:.2f}, "
                      f"{session['snapshots']} snapshots, "
                      f"{session['steps']} partition-steps){tag}")
            cache, scans = status["cache"], status["scan_share"]
            print(f"\nresult cache: {cache['hits']} hit(s), "
                  f"{cache['misses']} miss(es); shared scans saved "
                  f"{scans['shared_hits']} of "
                  f"{scans['shared_hits'] + scans['physical_reads']} "
                  f"partition reads")
    finally:
        stop_dashboard.set()
        server.stop()
    print("\nserver stopped.")


if __name__ == "__main__":
    main()
