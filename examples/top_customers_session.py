"""The paper's §1 motivating session — Deep OLA over nested operations.

Reproduces the exploration verbatim (a rewritten TPC-H Q18): aggregate
lineitems per order, filter the large orders, join in customer names,
re-aggregate per customer, and take the top customers — with *every*
stage streaming estimates, because edfs are closed under these ops.

Run:  python examples/top_customers_session.py
"""

import tempfile

from repro import F, WakeContext, col
from repro.tpch import generate_and_load

THRESHOLD = 150  # the paper uses 300 at SF 100; scaled for laptop SF


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="wake_top_customers_")
    print(f"Generating TPC-H (SF 0.01) under {workdir} ...")
    catalog, _tables = generate_and_load(
        workdir, scale_factor=0.01, fact_partitions=12
    )
    ctx = WakeContext(catalog)

    # --- the session from the paper's introduction -----------------------
    lineitem = ctx.table("lineitem")
    # item count for each order (local aggregation: exact, streaming)
    order_qty = lineitem.agg(
        F.sum("l_quantity").alias("sum_qty"), by=["l_orderkey"]
    )
    # select only the large orders (filter on a now-constant attribute)
    lg_orders = order_qty.filter(col("sum_qty") > THRESHOLD)
    # find the customers with the biggest order sizes
    lg_order_cust = lg_orders.join(
        ctx.table("orders"), on=[("l_orderkey", "o_orderkey")]
    ).join(ctx.table("customer"), on=[("o_custkey", "c_custkey")])
    qty_per_cust = lg_order_cust.agg(
        F.sum("sum_qty").alias("total_qty"), by=["c_name"]
    )
    top_cust = qty_per_cust.top_k(["total_qty", "c_name"], 5,
                                  desc=[True, False])

    print("\nPlan (note the deliveries: delta = streaming, replace = "
          "refreshed snapshots):")
    print(ctx.explain(top_cust))

    print("\nTop-5 customers, refreshed as data streams in:")
    edf = ctx.run(top_cust)
    shown = None
    for snapshot in edf:
        names = snapshot.frame.column("c_name").tolist()
        totals = snapshot.frame.column("total_qty").tolist()
        leader = (
            f"{names[0]} ({totals[0]:,.0f})" if names else "(none yet)"
        )
        line = f"  t={snapshot.t:5.2f}  leader: {leader}"
        if line != shown:
            print(line)
            shown = line

    print("\nFinal top-5:")
    final = edf.get_final()
    for name, total in zip(final.column("c_name").tolist(),
                           final.column("total_qty").tolist()):
        print(f"  {name}: {total:,.0f}")


if __name__ == "__main__":
    main()
