"""Deep aggregation chains (paper §8.6, Fig 11).

Builds op(op(...op(data))) chains — aggregates over aggregates — of
increasing depth over a synthetic table, and shows that (a) estimates
stream at every depth and (b) the final answers are exact, with cost
growing in the primary group cardinality.

Run:  python examples/deep_query_exploration.py
"""

import tempfile

from repro import WakeContext
from repro.bench.workloads import (
    build_deep_query,
    deep_query_reference,
    generate_deep_dataset,
)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="wake_deep_")
    print(f"Generating synthetic deep-query table under {workdir} ...")
    dataset = generate_deep_dataset(workdir, n_rows=40_000,
                                    n_partitions=10, seed=11)

    print("\ndepth  first(s)  final(s)  snapshots  exact-match")
    for depth in range(0, 7):
        ctx = WakeContext(dataset.catalog)
        plan = build_deep_query(ctx, depth)
        edf = ctx.run(plan)
        expected = deep_query_reference(dataset.table, depth)
        alias = f"agg{depth + 1}" if depth else "agg0"
        got = edf.get_final().column(alias)[0]
        want = expected.column(alias)[0]
        matches = "yes" if abs(got - want) <= 1e-9 * max(abs(want), 1) \
            else "NO"
        print(f"{depth:5d}  {edf.first().wall_time:8.3f}  "
              f"{edf.snapshots[-1].wall_time:8.3f}  "
              f"{len(edf):9d}  {matches:>11}")

    print("\nEach extra aggregation level re-merges the level below on "
          "every refresh — the O(4^d · n/B + n) behaviour of §8.6.")


if __name__ == "__main__":
    main()
