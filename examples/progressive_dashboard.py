"""Progressive dashboard with confidence intervals (paper §6 + §8.5).

Simulates the downstream application the paper motivates: a dashboard
that renders an estimate *with an uncertainty band* long before the exact
number exists.  Runs TPC-H Q14 (promotion revenue %) with 95% Chebyshev
intervals over shuffled input partitions.

Run:  python examples/progressive_dashboard.py
"""

import tempfile

from repro import CIConfig, WakeContext
from repro.core.ci import sigma_column
from repro.tpch import generate_and_load
from repro.tpch.queries import QUERIES

BAR_WIDTH = 46


def bar(lo: float, hi: float, value: float, span: tuple[float, float]
        ) -> str:
    left, right = span
    scale = (right - left) or 1.0

    def pos(x: float) -> int:
        return int(
            min(max((x - left) / scale, 0.0), 1.0) * (BAR_WIDTH - 1)
        )

    cells = [" "] * BAR_WIDTH
    for i in range(pos(lo), pos(hi) + 1):
        cells[i] = "-"
    cells[pos(value)] = "o"
    return "".join(cells)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="wake_dashboard_")
    print(f"Generating TPC-H (SF 0.01) under {workdir} ...")
    catalog, _tables = generate_and_load(
        workdir, scale_factor=0.01, fact_partitions=12
    )

    config = CIConfig(confidence=0.95)
    ctx = WakeContext(catalog, ci=config, partition_shuffle_seed=7)
    plan = QUERIES[14].build_plan(ctx)

    print(f"\nQ14 promotion revenue (%), 95% CI (k = {config.k:.2f}), "
          f"partitions arriving out of order:\n")
    sigma_name = sigma_column("promo_revenue")
    span = (0.0, 30.0)
    final = float("nan")
    # ctx.stream() yields snapshots live from the threaded engine — the
    # consumption mode a real dashboard would use.
    for snapshot in ctx.stream(plan):
        if snapshot.frame.n_rows == 0:
            continue
        value = float(snapshot.frame.column("promo_revenue")[0])
        sigma = float(snapshot.frame.column(sigma_name)[0])
        lo, hi = value - config.k * sigma, value + config.k * sigma
        print(f"  t={snapshot.t:5.2f}  {value:6.2f}%  "
              f"[{lo:6.2f}, {hi:6.2f}]  |{bar(lo, hi, value, span)}|")
        final = value

    print(f"\nExact answer: {final:.2f}% — inside every interval above.")


if __name__ == "__main__":
    main()
