"""Setuptools shim so that editable installs work on offline machines
without the ``wheel`` package (PEP 660 builds need it; ``setup.py develop``
does not)."""

from setuptools import setup

setup()
