"""Deterministic fault injection for chaos-testing the engine.

A :class:`FaultInjector` decides — from a seed, reproducibly — which
partition reads and executor steps fail, how, and how many times.  Two
properties make the injected schedules usable for *byte-identical*
chaos tests:

* decisions are keyed by **site** (``(table, partition index)`` for
  reads), not by call order, so a retry of the failed partition meets
  the *continuation* of that site's schedule (fail N consecutive
  attempts, then succeed) no matter how steps from other queries
  interleave;
* the schedule uses no wall-clock or global randomness: the same seed
  and the same sites produce the same faults, every run.

Faults come in three kinds:

* ``"transient"`` — raises :class:`~repro.errors.TransientStorageError`
  (retryable: mid-write file, lock contention, torn decompress);
* ``"permanent"`` — raises :class:`~repro.errors.PermanentStorageError`
  (not retryable: corrupt schema, unknown format);
* ``"slow"`` — sleeps ``slow_delay`` seconds, then succeeds (straggler
  I/O; exercises backoff-free latency paths).

Wrap a catalog (``wrap_catalog``) to inject at the storage boundary, or
an executor (``wrap_executor``) to inject at the scheduler-step
boundary (always retry-safe, by the executor's ``before_step``
contract).
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass, field

from repro.errors import (
    PermanentStorageError,
    QueryError,
    TransientStorageError,
)
from repro.storage.catalog import Catalog, TableMeta

#: Fault kinds an injector knows how to raise.
FAULT_KINDS = ("transient", "permanent", "slow")


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector actually fired (audit record)."""

    table: str
    partition: int
    kind: str
    path: str | None = None


class _FaultyTableMeta(TableMeta):
    """A :class:`TableMeta` whose reads pass through an injector."""

    def read_partition(self, index, columns=None):
        self._injector.before_read(  # type: ignore[attr-defined]
            self.name, index,
            self.files[index] if 0 <= index < len(self.files) else None,
        )
        return super().read_partition(index, columns=columns)


@dataclass
class _Site:
    """Remaining fault schedule for one (table, partition) site."""

    kinds: list[str] = field(default_factory=list)


class FaultInjector:
    """Seeded, site-keyed fault scheduler.

    ``transient_rate`` injects random transient faults: each *site*
    (table, partition) independently faults with that probability,
    failing ``fault_times`` consecutive attempts before clearing —
    exactly the shape a retry policy must absorb.  ``plan_fault``
    schedules explicit faults on top (any kind, any count).
    ``max_faults`` caps the total injected, bounding worst-case chaos.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        fault_times: int = 1,
        slow_delay: float = 0.0,
        max_faults: int | None = None,
    ) -> None:
        if not 0.0 <= transient_rate <= 1.0:
            raise QueryError(
                f"transient_rate must be in [0, 1], got {transient_rate}"
            )
        if fault_times < 1:
            raise QueryError(
                f"fault_times must be >= 1, got {fault_times}"
            )
        self.seed = seed
        self.transient_rate = transient_rate
        self.fault_times = fault_times
        self.slow_delay = slow_delay
        self.max_faults = max_faults
        #: Every fault fired so far, in firing order.
        self.injected: list[InjectedFault] = []
        self._sites: dict[tuple[str, int], _Site] = {}
        self._step_faults: list[str] = []

    # -- scheduling ---------------------------------------------------------------
    def plan_fault(
        self, table: str, index: int, kind: str = "transient",
        times: int = 1,
    ) -> None:
        """Explicitly schedule ``times`` consecutive faults of ``kind``
        for one partition site (appended after any already planned)."""
        if kind not in FAULT_KINDS:
            raise QueryError(
                f"fault kind must be one of {FAULT_KINDS}, got {kind!r}"
            )
        site = self._sites.setdefault((table, index), _Site())
        site.kinds.extend([kind] * times)

    def plan_step_fault(self, kind: str = "transient",
                        times: int = 1) -> None:
        """Schedule ``times`` faults at the executor-step boundary
        (fired by wrapped executors' ``before_step``, FIFO)."""
        if kind not in FAULT_KINDS:
            raise QueryError(
                f"fault kind must be one of {FAULT_KINDS}, got {kind!r}"
            )
        self._step_faults.extend([kind] * times)

    def _site(self, table: str, index: int) -> _Site:
        key = (table, index)
        site = self._sites.get(key)
        if site is None:
            # Site-keyed RNG: the decision depends only on (seed, table,
            # partition), never on the order sites are first touched, so
            # concurrent queries sharing a catalog see one schedule.
            rng = random.Random(f"{self.seed}:{table}:{index}")
            site = _Site()
            if rng.random() < self.transient_rate:
                site.kinds = ["transient"] * self.fault_times
            self._sites[key] = site
        return site

    # -- firing -------------------------------------------------------------------
    def _budget_left(self) -> bool:
        return (self.max_faults is None
                or len(self.injected) < self.max_faults)

    def _fire(self, table: str, partition: int, kind: str,
              path: str | None) -> None:
        self.injected.append(
            InjectedFault(table=table, partition=partition, kind=kind,
                          path=path)
        )
        where = f"table {table!r} partition {partition}"
        if kind == "transient":
            raise TransientStorageError(
                f"injected transient fault: {where}",
                path=path, partition=partition, table=table,
            )
        if kind == "permanent":
            raise PermanentStorageError(
                f"injected permanent fault: {where}",
                path=path, partition=partition, table=table,
            )
        time.sleep(self.slow_delay)  # "slow": delay, then succeed

    def before_read(self, table: str, index: int,
                    path: str | None) -> None:
        """Hook run before every wrapped partition read; raises (or
        sleeps) per the site's remaining schedule."""
        site = self._site(table, index)
        if not site.kinds or not self._budget_left():
            return
        self._fire(table, index, site.kinds.pop(0), path)

    def before_step(self, executor) -> None:
        """Hook for :attr:`StepExecutor.before_step` (retry-safe)."""
        if not self._step_faults or not self._budget_left():
            return
        self._fire("<step>", -1, self._step_faults.pop(0), None)

    # -- wrapping -----------------------------------------------------------------
    def wrap_table(self, meta: TableMeta) -> TableMeta:
        """A copy of ``meta`` whose reads consult this injector."""
        wrapped = _FaultyTableMeta(
            **{f.name: getattr(meta, f.name)
               for f in dataclasses.fields(meta)}
        )
        object.__setattr__(wrapped, "_injector", self)
        return wrapped

    def wrap_catalog(self, catalog: Catalog) -> Catalog:
        """A shallow catalog copy with every table wrapped."""
        return Catalog(
            tables={name: self.wrap_table(meta)
                    for name, meta in catalog.tables.items()},
            root=catalog.root,
        )

    def wrap_executor(self, executor) -> None:
        """Inject at the step boundary of ``executor`` (in place)."""
        executor.before_step = self.before_step
