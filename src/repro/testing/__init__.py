"""Deterministic test harnesses (fault injection, chaos tooling)."""

from repro.testing.faults import FaultInjector, InjectedFault

__all__ = ["FaultInjector", "InjectedFault"]
