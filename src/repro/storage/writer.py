"""Table writer: split a frame into partitions and register catalog metadata.

When a clustering key is declared, partition boundaries are pushed forward
to the next cluster change so that no key ever straddles two partitions —
the paper's §3.1 clustering promise ("other partitions must not contain
the rows with orderkey=5"), which the local aggregation mode and the
progressive merge join rely on.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import StorageError
from repro.dataframe import DataFrame
from repro.storage.catalog import Catalog, TableMeta
from repro.storage.partition import write_partition
from repro.storage.zonemap import frame_stats


def partition_boundaries(n_rows: int, rows_per_partition: int) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into contiguous ranges of at most
    ``rows_per_partition`` rows (the last range may be shorter)."""
    if rows_per_partition <= 0:
        raise StorageError("rows_per_partition must be positive")
    bounds = []
    start = 0
    while start < n_rows:
        stop = min(start + rows_per_partition, n_rows)
        bounds.append((start, stop))
        start = stop
    return bounds or [(0, 0)]


def cluster_starts(frame: DataFrame, clustering_key: Sequence[str]) -> np.ndarray:
    """Boolean mask: row i starts a new cluster of the clustering key.

    Also validates that clusters are contiguous (the frame is sorted or at
    least grouped by the clustering key); raises otherwise.
    """
    n = frame.n_rows
    if n == 0:
        return np.zeros(0, dtype=bool)
    starts = np.zeros(n, dtype=bool)
    starts[0] = True
    for key in clustering_key:
        col = frame.column(key)
        starts[1:] |= col[1:] != col[:-1]
    n_clusters = int(starts.sum())
    from repro.dataframe.groupby import group_codes

    _codes, _keys, n_distinct = group_codes(frame, list(clustering_key))
    if n_clusters != n_distinct:
        raise StorageError(
            f"frame is not clustered on {tuple(clustering_key)}: "
            f"{n_clusters} contiguous runs vs {n_distinct} distinct keys "
            f"(sort by the clustering key before writing)"
        )
    return starts


def clustered_boundaries(
    frame: DataFrame,
    rows_per_partition: int,
    clustering_key: Sequence[str],
) -> list[tuple[int, int]]:
    """Like :func:`partition_boundaries` but boundaries only fall on
    cluster starts, so a cluster never straddles two partitions."""
    if rows_per_partition <= 0:
        raise StorageError("rows_per_partition must be positive")
    n = frame.n_rows
    if n == 0:
        return [(0, 0)]
    starts = cluster_starts(frame, clustering_key)
    bounds: list[tuple[int, int]] = []
    start = 0
    while start < n:
        stop = min(start + rows_per_partition, n)
        while stop < n and not starts[stop]:
            stop += 1
        bounds.append((start, stop))
        start = stop
    return bounds


def write_table(
    catalog: Catalog,
    directory: str | Path,
    name: str,
    frame: DataFrame,
    rows_per_partition: int,
    primary_key: Sequence[str],
    clustering_key: Sequence[str] = (),
    fmt: str = "npz",
    stats: bool = True,
) -> TableMeta:
    """Write ``frame`` as a partitioned table and register it in ``catalog``.

    Rows are split *in their current order* — callers are responsible for
    pre-sorting by the clustering key so that the on-disk clustering promise
    (paper §3.1 "Data Organization") holds.

    ``stats`` (default on) records per-partition zone maps (column
    min/max/null counts) in the metadata, enabling predicate-pushdown
    partition pruning at scan time.
    """
    if fmt not in ("npz", "csv"):
        raise StorageError(f"unknown table format {fmt!r}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files: list[str] = []
    counts: list[int] = []
    zone_maps: list[dict] = []
    if clustering_key:
        bounds = clustered_boundaries(frame, rows_per_partition,
                                      clustering_key)
    else:
        bounds = partition_boundaries(frame.n_rows, rows_per_partition)
    width = max(4, len(str(len(bounds))))
    for index, (start, stop) in enumerate(bounds):
        piece = frame.slice(start, stop)
        path = directory / f"{name}.{index:0{width}d}.{fmt}"
        write_partition(path, piece)
        files.append(str(path))
        counts.append(piece.n_rows)
        if stats:
            zone_maps.append(frame_stats(piece))
    meta = TableMeta(
        name=name,
        files=tuple(files),
        tuple_counts=tuple(counts),
        schema=frame.schema,
        primary_key=tuple(primary_key),
        clustering_key=tuple(clustering_key),
        stats=tuple(zone_maps) if stats else None,
    )
    catalog.add(meta)
    return meta


def compute_table_stats(meta: TableMeta) -> tuple[dict, ...]:
    """Zone maps for an existing table, one full partition scan each."""
    return tuple(
        frame_stats(frame) for _index, frame in meta.iter_partitions()
    )


def add_catalog_stats(catalog: Catalog, force: bool = False) -> list[str]:
    """Backfill zone-map stats for tables missing them (in place).

    Returns the names of the tables whose stats were (re)computed —
    the migration path for catalogs written before zone maps existed
    (``python -m repro stats catalog.json``).  ``force`` recomputes even
    when stats are already present.
    """
    updated: list[str] = []
    for name, meta in catalog.tables.items():
        if meta.stats is not None and not force:
            continue
        catalog.tables[name] = replace(
            meta, stats=compute_table_stats(meta)
        )
        updated.append(name)
    return updated
