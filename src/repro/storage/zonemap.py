"""Zone maps: per-partition column statistics and partition pruning.

The extended paper (arXiv:2303.04103 §8.1) stores base tables as 512 MB
Parquet chunks precisely so scans can be columnar and skippable.  This
module provides the metadata half of that design:

* :func:`column_stats` / :func:`frame_stats` — per-column ``min``/``max``
  and null counts for one partition, JSON-serializable so the catalog can
  persist them next to the file list and tuple counts (§4.4 metadata);
* :class:`SargablePredicate` — one conjunct of a filter in the canonical
  ``column <op> literal`` shape, with zone-map evaluation
  (:meth:`~SargablePredicate.may_match`);
* :func:`sargable_conjuncts` — extract the sargable conjunction from an
  arbitrary :class:`~repro.dataframe.expr.Expr` tree (non-sargable
  conjuncts are simply ignored — pruning only needs a sound subset);
* :func:`prunable_partitions` — indices a scan may skip entirely.

Pruning is *semantically a filter*: a partition is skipped only when the
zone maps prove no row can satisfy the conjunction, so the final answer is
byte-identical.  Any doubt (missing stats, mixed types, non-sargable
shapes) keeps the partition.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.dataframe.expr import (
    BinaryExpr,
    Column,
    Expr,
    IsInExpr,
    Literal,
)

#: Comparison symbols (as carried by BinaryExpr) usable against zone maps.
_COMPARISONS = {">", ">=", "<", "<="}

#: Symbol → flipped symbol, for literal-on-the-left conjuncts.
_FLIPPED = {">": "<", ">=": "<=", "<": ">", "<=": ">="}

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
}


# -- statistics ---------------------------------------------------------------

def column_stats(values: np.ndarray) -> dict:
    """``{"min": ..., "max": ..., "nulls": int}`` for one column chunk.

    ``min``/``max`` exclude NaNs (a NaN never satisfies a comparison, so
    the non-NaN envelope is the only thing pruning may rely on); they are
    ``None`` when no non-null value exists.  All values are plain Python
    scalars so the catalog JSON stays portable.
    """
    values = np.asarray(values)
    nulls = 0
    if values.dtype.kind == "f":
        nan_mask = np.isnan(values)
        nulls = int(nan_mask.sum())
        values = values[~nan_mask]
    if values.size == 0:
        return {"min": None, "max": None, "nulls": nulls}
    if values.dtype.kind in "iufb":
        lo, hi = values.min().item(), values.max().item()
    else:
        strings = [str(v) for v in values.tolist()]
        lo, hi = min(strings), max(strings)
    return {"min": lo, "max": hi, "nulls": nulls}


def frame_stats(frame) -> dict[str, dict]:
    """Zone-map statistics for every column of one partition frame."""
    return {
        name: column_stats(frame.column(name))
        for name in frame.column_names
    }


# -- sargable predicates ------------------------------------------------------

@dataclass(frozen=True)
class SargablePredicate:
    """One ``column <op> literal`` conjunct usable against zone maps.

    ``op`` is one of ``> >= < <= ==`` or ``isin`` (``value`` is then a
    tuple of scalars).
    """

    column: str
    op: str
    value: object

    def renamed(self, column: str) -> "SargablePredicate":
        return SargablePredicate(column, self.op, self.value)

    def may_match(self, stats: Mapping | None) -> bool:
        """Could any row of a partition with ``stats`` satisfy this?

        Missing or malformed stats keep the partition (return True);
        proofs of emptiness prune it.
        """
        if stats is None:
            return True
        lo, hi = stats.get("min"), stats.get("max")
        if lo is None or hi is None:
            # No non-null value in the chunk: comparisons with NaN (and
            # membership over an all-null chunk) are all False.
            return False
        try:
            if self.op == "isin":
                return any(lo <= v <= hi for v in self.value)  # type: ignore[operator]
            if self.op in (">", ">="):
                return _OPS[self.op](hi, self.value)
            if self.op in ("<", "<="):
                return _OPS[self.op](lo, self.value)
            if self.op == "==":
                return bool(lo <= self.value <= hi)  # type: ignore[operator]
        except TypeError:
            return True  # mixed types: no proof, keep the partition
        return True

    def __repr__(self) -> str:
        if self.op == "isin":
            return f"{self.column} in {list(self.value)!r}"
        return f"{self.column} {self.op} {self.value!r}"


def _as_comparison(expr: BinaryExpr) -> SargablePredicate | None:
    symbol = expr.symbol
    if symbol not in _COMPARISONS and symbol != "==":
        return None
    left, right = expr.left, expr.right
    if isinstance(left, Column) and isinstance(right, Literal):
        column, value = left.name, right.value
    elif isinstance(left, Literal) and isinstance(right, Column):
        column, value = right.name, left.value
        symbol = _FLIPPED.get(symbol, symbol)
    else:
        return None
    if isinstance(value, (bool, int, float, str, np.generic)):
        if isinstance(value, np.generic):
            value = value.item()
        return SargablePredicate(column, symbol, value)
    return None


def sargable_conjuncts(expr: Expr) -> list[SargablePredicate]:
    """The sargable subset of ``expr``'s top-level conjunction.

    Walks ``&`` nodes recursively; keeps ``col <op> literal`` comparisons
    and ``col.isin(scalars)``.  Everything else (disjunctions, derived
    expressions, string predicates) contributes nothing — sound, since a
    conjunction only ever *narrows* the rows the full predicate keeps.
    """
    if isinstance(expr, BinaryExpr):
        if expr.symbol == "&":
            return sargable_conjuncts(expr.left) + sargable_conjuncts(
                expr.right
            )
        pred = _as_comparison(expr)
        return [pred] if pred is not None else []
    if isinstance(expr, IsInExpr) and isinstance(expr.inner, Column):
        values = tuple(
            v.item() if isinstance(v, np.generic) else v
            for v in expr.values
        )
        if all(isinstance(v, (bool, int, float, str)) for v in values):
            return [SargablePredicate(expr.inner.name, "isin", values)]
    return []


# -- pruning ------------------------------------------------------------------

def partition_may_match(
    stats: Mapping[str, Mapping] | None,
    predicates: Sequence[SargablePredicate],
) -> bool:
    """True unless the zone maps prove every row fails some conjunct."""
    if stats is None:
        return True
    return all(pred.may_match(stats.get(pred.column)) for pred in predicates)


def prunable_partitions(
    partition_stats: Sequence[Mapping[str, Mapping] | None] | None,
    predicates: Sequence[SargablePredicate],
) -> frozenset[int]:
    """Indices of partitions no row of which can satisfy ``predicates``."""
    if not partition_stats or not predicates:
        return frozenset()
    return frozenset(
        index
        for index, stats in enumerate(partition_stats)
        if not partition_may_match(stats, predicates)
    )
