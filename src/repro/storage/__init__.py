"""Partitioned table storage + metadata catalog (paper §4.4)."""

from repro.storage.catalog import Catalog, TableMeta
from repro.storage.partition import (
    read_partition,
    read_partition_csv,
    read_partition_npz,
    write_partition,
    write_partition_csv,
    write_partition_npz,
)
from repro.storage.writer import (
    add_catalog_stats,
    compute_table_stats,
    partition_boundaries,
    write_table,
)
from repro.storage.zonemap import (
    SargablePredicate,
    frame_stats,
    prunable_partitions,
    sargable_conjuncts,
)

__all__ = [
    "Catalog",
    "SargablePredicate",
    "TableMeta",
    "add_catalog_stats",
    "compute_table_stats",
    "frame_stats",
    "partition_boundaries",
    "prunable_partitions",
    "read_partition",
    "read_partition_csv",
    "read_partition_npz",
    "sargable_conjuncts",
    "write_partition",
    "write_partition_csv",
    "write_partition_npz",
    "write_table",
]
