"""Partitioned table storage + metadata catalog (paper §4.4)."""

from repro.storage.catalog import Catalog, TableMeta
from repro.storage.partition import (
    read_partition,
    read_partition_csv,
    read_partition_npz,
    write_partition,
    write_partition_csv,
    write_partition_npz,
)
from repro.storage.writer import partition_boundaries, write_table

__all__ = [
    "Catalog",
    "TableMeta",
    "partition_boundaries",
    "read_partition",
    "read_partition_csv",
    "read_partition_npz",
    "write_partition",
    "write_partition_csv",
    "write_partition_npz",
    "write_table",
]
