"""Partition files: the on-disk unit an OLA reader consumes at a time.

The paper stores base tables as directories of 512 MB Parquet chunks; this
module provides the equivalent with two formats:

* ``.npz`` — columnar binary (the Parquet analogue; default), and
* ``.csv`` — the paper's ``read_csv`` path for interoperability and tests.

Schemas (logical dtypes + attribute kinds) are embedded in npz files and
supplied externally for CSV.
"""

from __future__ import annotations

import csv
import io
import json
import zipfile
import zlib
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import (
    PermanentStorageError,
    StorageError,
    TransientStorageError,
)
from repro.dataframe import (
    AttributeKind,
    DataFrame,
    DType,
    Field,
    Schema,
    numpy_dtype,
)

_SCHEMA_KEY = "__schema__"


def _schema_to_json(schema: Schema) -> str:
    return json.dumps(
        [
            {"name": f.name, "dtype": f.dtype.value, "kind": f.kind.value}
            for f in schema
        ]
    )


def _schema_from_json(payload: str) -> Schema:
    try:
        raw = json.loads(payload)
        return Schema(
            Field(item["name"], DType(item["dtype"]),
                  AttributeKind(item["kind"]))
            for item in raw
        )
    except (json.JSONDecodeError, KeyError, ValueError) as exc:
        raise PermanentStorageError(
            f"corrupt embedded schema: {exc}"
        ) from exc


#: Low-level failures that can mean a partition file is mid-write,
#: mid-move, locked, or truncated — a retry may find it whole.  (numpy
#: surfaces truncated archives as OSError/EOFError/BadZipFile/zlib.error
#: and mangled npy headers as ValueError.)
_TRANSIENT_READ_ERRORS = (
    OSError,
    EOFError,
    ValueError,
    zipfile.BadZipFile,
    zlib.error,
)


def write_partition_npz(path: str | Path, frame: DataFrame) -> None:
    """Write a frame as a columnar ``.npz`` partition (schema embedded)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {name: frame.column(name) for name in frame.column_names}
    payload[_SCHEMA_KEY] = np.array(_schema_to_json(frame.schema))
    np.savez(path, **payload)


def _selected_schema(
    schema: Schema, columns: Sequence[str] | None, path: Path
) -> Schema:
    """``schema`` narrowed to ``columns`` in schema order (None = all)."""
    if columns is None:
        return schema
    missing = set(columns) - set(schema.names)
    if missing:
        raise PermanentStorageError(
            f"partition {path}: selected column(s) {sorted(missing)} not "
            f"in schema {list(schema.names)}",
            path=str(path),
        )
    wanted = set(columns)
    return Schema(f for f in schema if f.name in wanted)


def read_partition_npz(
    path: str | Path, columns: Sequence[str] | None = None
) -> DataFrame:
    """Load a ``.npz`` partition back into a DataFrame.

    ``columns`` selects a subset of columns (projection pushdown): only
    the named arrays are decompressed — npz members load lazily, so the
    cost is O(selected columns), not O(schema width).

    Failures are classified: a missing, truncated, or undecompressable
    file raises :class:`TransientStorageError` (it may still be
    mid-write); a corrupt or absent embedded schema raises
    :class:`PermanentStorageError`.
    """
    path = Path(path)
    if not path.exists():
        raise TransientStorageError(
            f"partition file not found (mid-write or mid-move?): {path}",
            path=str(path),
        )
    try:
        with np.load(path, allow_pickle=False) as archive:
            if _SCHEMA_KEY not in archive:
                raise PermanentStorageError(
                    f"not a repro partition (no schema): {path}",
                    path=str(path),
                )
            schema = _schema_from_json(str(archive[_SCHEMA_KEY]))
            schema = _selected_schema(schema, columns, path)
            data = {f.name: archive[f.name] for f in schema}
    except StorageError as exc:
        if exc.path is None:
            exc.path = str(path)
        raise
    except _TRANSIENT_READ_ERRORS as exc:
        raise TransientStorageError(
            f"partition {path} unreadable (truncated/locked/mid-write?): "
            f"{exc}",
            path=str(path),
        ) from exc
    return DataFrame(data, schema=schema)


def write_partition_csv(path: str | Path, frame: DataFrame) -> None:
    """Write a frame as a header-bearing CSV partition."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(frame.column_names)
        for row in frame.iter_rows():
            writer.writerow(row)


def read_partition_csv(
    path: str | Path,
    schema: Schema,
    columns: Sequence[str] | None = None,
) -> DataFrame:
    """Load a CSV partition, coercing columns to the supplied schema.

    ``columns`` restricts parsing/coercion to a subset (the text is still
    read — CSV is row-major — but only the selected columns are
    converted, the dominant cost at scale).
    """
    path = Path(path)
    if not path.exists():
        raise TransientStorageError(
            f"partition file not found (mid-write or mid-move?): {path}",
            path=str(path),
        )
    try:
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise TransientStorageError(
                    f"empty CSV partition (mid-write?): {path}",
                    path=str(path),
                ) from None
            rows = list(reader)
    except StorageError:
        raise
    except OSError as exc:
        raise TransientStorageError(
            f"partition {path} unreadable (locked/mid-write?): {exc}",
            path=str(path),
        ) from exc
    if tuple(header) != schema.names:
        raise PermanentStorageError(
            f"CSV header {header} does not match schema "
            f"{list(schema.names)}",
            path=str(path),
        )
    positions = {name: i for i, name in enumerate(header)}
    selected = _selected_schema(schema, columns, path)
    out: dict[str, np.ndarray] = {}
    try:
        for field in selected:
            index = positions[field.name]
            raw = [row[index] for row in rows]
            if field.dtype in (DType.INT64, DType.DATE):
                out[field.name] = np.array(
                    [int(v) for v in raw], dtype=np.int64
                )
            elif field.dtype == DType.FLOAT64:
                out[field.name] = np.array(
                    [float(v) for v in raw], dtype=np.float64
                )
            elif field.dtype == DType.BOOL:
                out[field.name] = np.array(
                    [v in ("True", "true", "1") for v in raw],
                    dtype=np.bool_,
                )
            else:
                out[field.name] = (
                    np.array(raw) if raw
                    else np.empty(0, dtype=numpy_dtype(DType.STRING))
                )
    except (ValueError, IndexError) as exc:
        # Unparseable cells / ragged rows: the writer may still be
        # appending, so a retry is worth a shot.
        raise TransientStorageError(
            f"partition {path} has unparseable rows (mid-write?): {exc}",
            path=str(path),
        ) from exc
    return DataFrame(out, schema=selected)


def write_partition(path: str | Path, frame: DataFrame) -> None:
    """Dispatch on file suffix (.npz or .csv)."""
    path = Path(path)
    if path.suffix == ".npz":
        write_partition_npz(path, frame)
    elif path.suffix == ".csv":
        write_partition_csv(path, frame)
    else:
        raise PermanentStorageError(
            f"unknown partition format: {path.suffix!r}", path=str(path)
        )


def read_partition(
    path: str | Path,
    schema: Schema | None = None,
    columns: Sequence[str] | None = None,
) -> DataFrame:
    """Dispatch on file suffix; CSV requires an explicit schema."""
    path = Path(path)
    if path.suffix == ".npz":
        return read_partition_npz(path, columns=columns)
    if path.suffix == ".csv":
        if schema is None:
            raise PermanentStorageError(
                "reading CSV partitions requires a schema", path=str(path)
            )
        return read_partition_csv(path, schema, columns=columns)
    raise PermanentStorageError(
        f"unknown partition format: {path.suffix!r}", path=str(path)
    )


def estimate_csv_bytes(frame: DataFrame) -> int:
    """Approximate serialized CSV size (used by partition-size sweeps).

    The header line is counted once, not folded into the per-row average
    — folding it in overestimates frames with short rows by up to a full
    header per 100 rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(frame.column_names)
    header_bytes = len(buffer.getvalue())
    sample_rows = min(100, frame.n_rows)
    for row in frame.head(sample_rows).iter_rows():
        writer.writerow(row)
    body_bytes = len(buffer.getvalue()) - header_bytes
    if frame.n_rows <= 100:
        return header_bytes + body_bytes  # exact: every row serialized
    per_row = body_bytes / sample_rows
    return int(header_bytes + per_row * frame.n_rows)
