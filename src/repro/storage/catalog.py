"""Base-table metadata catalog (paper §4.4).

Wake requires exactly three pieces of metadata per base table: (1) the list
of partition files, (2) the number of tuples in each file, and (3) the
attributes with primary/clustering keys.  ``Catalog`` persists this as a
JSON document next to the partition files; progress ``t`` is computed from
the per-file tuple counts.

On top of the required three, a table may carry optional per-partition
zone-map ``stats`` (per-column min/max/null counts, see
:mod:`repro.storage.zonemap`) that the scan layer uses to skip partitions
a pushed-down filter can never match.  Catalogs written before stats
existed load fine — ``stats`` is simply ``None`` and pruning is disabled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.errors import (
    PermanentStorageError,
    StorageError,
    TransientStorageError,
)
from repro.dataframe import (
    AttributeKind,
    DataFrame,
    DType,
    Field,
    Schema,
)
from repro.storage.partition import read_partition


@dataclass(frozen=True)
class TableMeta:
    """Metadata describing one partitioned base table."""

    name: str
    files: tuple[str, ...]
    tuple_counts: tuple[int, ...]
    schema: Schema
    primary_key: tuple[str, ...]
    clustering_key: tuple[str, ...] = ()
    #: Optional per-partition zone maps: one ``{column: {"min", "max",
    #: "nulls"}}`` mapping per file (parallel to ``files``).  ``None``
    #: (legacy catalogs) disables partition pruning; excluded from
    #: equality/hash so stats never change table identity.
    stats: tuple[Mapping[str, Mapping], ...] | None = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.files) != len(self.tuple_counts):
            raise StorageError(
                f"table {self.name!r}: {len(self.files)} files but "
                f"{len(self.tuple_counts)} tuple counts"
            )
        if self.stats is not None and len(self.stats) != len(self.files):
            raise StorageError(
                f"table {self.name!r}: {len(self.files)} files but "
                f"{len(self.stats)} partition stats"
            )
        for key in (*self.primary_key, *self.clustering_key):
            if key not in self.schema:
                raise StorageError(
                    f"table {self.name!r}: key column {key!r} missing from "
                    f"schema"
                )

    @property
    def total_tuples(self) -> int:
        return int(sum(self.tuple_counts))

    @property
    def n_partitions(self) -> int:
        return len(self.files)

    def read_partition(
        self, index: int, columns: Sequence[str] | None = None
    ) -> DataFrame:
        """Read one partition, classifying and contextualizing failures.

        Storage errors are re-raised with the table name, partition
        index, and file path attached (same transient/permanent class,
        original error chained as the cause) so retry and quarantine
        decisions upstream know exactly which partition failed.
        """
        if not 0 <= index < len(self.files):
            raise PermanentStorageError(
                f"table {self.name!r}: partition index {index} out of "
                f"range [0, {len(self.files)})",
                table=self.name,
                partition=index,
            )
        path = self.files[index]
        try:
            return read_partition(path, self.schema, columns=columns)
        except StorageError as exc:
            raise type(exc)(
                f"table {self.name!r} partition {index}: {exc}",
                path=exc.path or str(path),
                partition=index,
                table=self.name,
            ) from exc

    def iter_partitions(
        self,
        order: Sequence[int] | None = None,
        columns: Sequence[str] | None = None,
    ) -> Iterator[tuple[int, DataFrame]]:
        """Yield (partition_index, frame) pairs, optionally reordered.

        Shuffled orders simulate out-of-order input arrival (used by the
        §8.5 confidence-interval experiment).  ``columns`` narrows every
        read to the selected columns (projection pushdown).
        """
        indices = range(len(self.files)) if order is None else order
        for index in indices:
            yield index, self.read_partition(index, columns=columns)

    def partition_stats(self, index: int) -> Mapping[str, Mapping] | None:
        """Zone-map stats for one partition (None when unavailable)."""
        if self.stats is None:
            return None
        return self.stats[index]

    def read_all(self) -> DataFrame:
        """Materialize the entire table (exact baselines / ground truth)."""
        frames = [frame for _, frame in self.iter_partitions()]
        if not frames:
            return DataFrame.empty(self.schema)
        return DataFrame.concat(frames)


@dataclass
class Catalog:
    """A named collection of :class:`TableMeta`, persistable as JSON."""

    tables: dict[str, TableMeta] = field(default_factory=dict)
    root: str | None = None

    def add(self, meta: TableMeta) -> None:
        if meta.name in self.tables:
            raise StorageError(f"table {meta.name!r} already registered")
        self.tables[meta.name] = meta

    def table(self, name: str) -> TableMeta:
        try:
            return self.tables[name]
        except KeyError:
            raise StorageError(
                f"table {name!r} not in catalog; known tables: "
                f"{sorted(self.tables)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self.tables))

    # -- persistence ----------------------------------------------------------
    def save(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "root": self.root,
            "tables": {
                name: {
                    "files": list(meta.files),
                    "tuple_counts": list(meta.tuple_counts),
                    "schema": [
                        {
                            "name": f.name,
                            "dtype": f.dtype.value,
                            "kind": f.kind.value,
                        }
                        for f in meta.schema
                    ],
                    "primary_key": list(meta.primary_key),
                    "clustering_key": list(meta.clustering_key),
                    **(
                        {"stats": [dict(s) for s in meta.stats]}
                        if meta.stats is not None
                        else {}
                    ),
                }
                for name, meta in self.tables.items()
            },
        }
        path.write_text(json.dumps(doc, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "Catalog":
        path = Path(path)
        if not path.exists():
            raise TransientStorageError(
                f"catalog file not found: {path}", path=str(path)
            )
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise PermanentStorageError(
                f"corrupt catalog {path}: {exc}", path=str(path)
            ) from exc
        catalog = cls(root=doc.get("root"))
        for name, raw in doc.get("tables", {}).items():
            schema = Schema(
                Field(
                    item["name"],
                    DType(item["dtype"]),
                    AttributeKind(item["kind"]),
                )
                for item in raw["schema"]
            )
            stats = raw.get("stats")
            catalog.add(
                TableMeta(
                    name=name,
                    files=tuple(raw["files"]),
                    tuple_counts=tuple(raw["tuple_counts"]),
                    schema=schema,
                    primary_key=tuple(raw["primary_key"]),
                    clustering_key=tuple(raw.get("clustering_key", ())),
                    stats=tuple(stats) if stats is not None else None,
                )
            )
        return catalog
