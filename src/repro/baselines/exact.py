"""Exact all-at-once engines: the conventional-system analogues (§8.1).

The paper compares Wake against Postgres, Presto, Vertica, Polars, and
Actian Vector.  Those systems cannot be bundled here, so the reproduction
substitutes two flavours of an exact engine *running on the identical
DataFrame kernels as Wake* (see DESIGN.md §3 — ratios between systems
sharing kernels isolate exactly the OLA-protocol overhead the paper
measures):

* ``memory`` — tables fully resident before the query starts (the Polars
  analogue; excludes IO from the measured latency);
* ``scan``   — every partition is read from disk as part of the query
  (the warehouse analogue; includes IO, like Presto-on-HDFS).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.storage.catalog import Catalog
from repro.tpch.dbgen import TpchTables

_MODES = ("memory", "scan")


@dataclass(frozen=True)
class ExactResult:
    """Outcome of one exact, all-at-once query execution."""

    frame: DataFrame
    wall_time: float
    rows_scanned: int
    peak_bytes: int


class ExactEngine:
    """Runs a query's reference implementation to completion, once."""

    def __init__(
        self,
        catalog: Catalog | None = None,
        tables: TpchTables | None = None,
        mode: str = "memory",
    ) -> None:
        if mode not in _MODES:
            raise QueryError(f"unknown exact mode {mode!r}; use {_MODES}")
        if mode == "memory" and tables is None:
            raise QueryError("memory mode requires in-memory tables")
        if mode == "scan" and catalog is None:
            raise QueryError("scan mode requires a catalog")
        self.catalog = catalog
        self.tables = tables
        self.mode = mode

    def _load(self) -> "dict[str, DataFrame] | _LazyScan":
        if self.mode == "memory":
            assert self.tables is not None
            return dict(self.tables.tables)
        assert self.catalog is not None
        return _LazyScan(self.catalog)

    def run(self, query, track_memory: bool = False,
            **overrides) -> ExactResult:
        """Execute ``query`` (a :class:`repro.tpch.queries.QueryDef`) and
        time it end-to-end (including the scan in ``scan`` mode).

        ``track_memory`` enables tracemalloc peak tracking; it distorts
        wall time, so latency experiments leave it off.
        """
        import tracemalloc

        if track_memory:
            tracemalloc.start()
        started = time.perf_counter()
        loaded = self._load()
        params = {**query.defaults, **overrides}
        frame = query.reference(loaded, **params)
        elapsed = time.perf_counter() - started
        if isinstance(loaded, _LazyScan):
            rows = loaded.rows_scanned
        else:
            rows = sum(f.n_rows for f in loaded.values())
        peak = 0
        if track_memory:
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        return ExactResult(
            frame=frame,
            wall_time=elapsed,
            rows_scanned=rows,
            peak_bytes=peak,
        )


class _LazyScan(dict):
    """Table mapping that scans a table from disk on first access, so the
    scan engine only pays IO for the tables a query references."""

    def __init__(self, catalog: Catalog) -> None:
        super().__init__()
        self._catalog = catalog
        self.rows_scanned = 0

    def __missing__(self, name: str) -> DataFrame:
        frame = self._catalog.table(name).read_all()
        self[name] = frame
        self.rows_scanned += frame.n_rows
        return frame
