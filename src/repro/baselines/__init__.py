"""Comparison systems: exact engines and OLA baselines (paper §8.1)."""

from repro.baselines.exact import ExactEngine, ExactResult
from repro.baselines.progressive import (
    ProgressiveEstimate,
    ProgressiveQuery,
    ProgressiveScan,
)
from repro.baselines.wanderjoin import (
    WalkQuery,
    WalkStep,
    WanderJoinEngine,
    WanderJoinEstimate,
)

__all__ = [
    "ExactEngine",
    "ExactResult",
    "ProgressiveEstimate",
    "ProgressiveQuery",
    "ProgressiveScan",
    "WalkQuery",
    "WalkStep",
    "WanderJoinEngine",
    "WanderJoinEstimate",
]
