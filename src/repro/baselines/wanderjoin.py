"""WanderJoin-like OLA baseline (paper §8.1 baseline 2, Fig 9b).

WanderJoin estimates multi-join aggregates by random walks over join
indexes: sample a row from the first table, walk to a uniformly-chosen
matching row in each subsequent table, and weight the sampled value by the
inverse of the walk's probability (Horvitz–Thompson).  Estimates are
unbiased but — as the paper stresses — the random-walk mechanism *never
converges to the exact answer*; the error plateaus (Fig 9b).

This implementation substitutes hash indexes for XDB's B-trees and runs
in-process rather than inside PostgreSQL; the estimator math is the
original.  Queries are join *chains* with per-table filters and a SUM
expression over the fully-joined row — the shape of the modified Q3, Q7
and Q10 used by both the original paper and this reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.dataframe import DataFrame
from repro.dataframe.expr import Expr


@dataclass(frozen=True)
class WalkStep:
    """One hop of the walk: join ``prev_key`` to ``table``.``key``."""

    table: str
    prev_key: str  # column on the (joined row of the) previous tables
    key: str  # column on this table
    predicate: Expr | None = None


@dataclass(frozen=True)
class WalkQuery:
    """A join-chain SUM query in WanderJoin's supported dialect."""

    first_table: str
    first_predicate: Expr | None
    steps: tuple[WalkStep, ...]
    value: Expr  # evaluated on the fully joined row (suffix-free columns)


@dataclass(frozen=True)
class WanderJoinEstimate:
    """Running Horvitz–Thompson estimate after ``walks`` walks."""

    estimate: float
    walks: int
    wall_time: float


class _Index:
    """Hash index: key value -> array of row indices."""

    def __init__(self, keys: np.ndarray) -> None:
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_keys)]))
        self._rows = {
            sorted_keys[s]: order[s:e] for s, e in zip(starts, ends)
        }

    def lookup(self, key) -> np.ndarray:
        return self._rows.get(key, _EMPTY)


_EMPTY = np.empty(0, dtype=np.int64)


class WanderJoinEngine:
    """Random-walk OLA over in-memory tables with hash indexes."""

    def __init__(self, tables: dict[str, DataFrame],
                 seed: int = 0) -> None:
        self.tables = tables
        self.rng = np.random.default_rng(seed)

    def run(
        self,
        query: WalkQuery,
        max_walks: int = 20_000,
        report_every: int = 500,
    ) -> list[WanderJoinEstimate]:
        """Perform up to ``max_walks`` random walks, reporting the running
        estimate every ``report_every`` walks."""
        first = self.tables[query.first_table]
        if query.first_predicate is not None:
            first = first.mask(query.first_predicate.evaluate(first))
        n_first = first.n_rows
        if n_first == 0:
            raise QueryError("first table is empty after filtering")

        prepared = []
        for step in query.steps:
            table = self.tables[step.table]
            index = _Index(table.column(step.key))
            predicate = step.predicate
            prepared.append((step, table, index, predicate))

        started = time.perf_counter()
        estimates: list[WanderJoinEstimate] = []
        total = 0.0
        walks = 0
        # Pre-draw first-table samples in blocks for speed.
        for walk in range(max_walks):
            row_index = int(self.rng.integers(0, n_first))
            joined = first.row(row_index)
            weight = float(n_first)
            dead = False
            for step, table, index, predicate in prepared:
                matches = index.lookup(joined[step.prev_key])
                if len(matches) == 0:
                    dead = True
                    break
                pick = int(matches[self.rng.integers(0, len(matches))])
                weight *= float(len(matches))
                row = table.row(pick)
                joined.update(row)
                if predicate is not None:
                    single = DataFrame(
                        {k: np.array([v]) for k, v in row.items()}
                    )
                    if not bool(predicate.evaluate(single)[0]):
                        dead = True
                        break
            if not dead:
                single = DataFrame(
                    {k: np.array([v]) for k, v in joined.items()}
                )
                value = float(
                    np.asarray(query.value.evaluate(single))[0]
                )
                total += value * weight
            walks += 1
            if walks % report_every == 0 or walks == max_walks:
                estimates.append(
                    WanderJoinEstimate(
                        estimate=total / walks,
                        walks=walks,
                        wall_time=time.perf_counter() - started,
                    )
                )
        return estimates
