"""ProgressiveDB-like OLA baseline (paper §8.1 baseline 1, Fig 9a).

ProgressiveDB is a middleware above PostgreSQL that rewrites a single-table
query into chunked "progressive view" queries and scales the partial
aggregates uniformly by the inverse of the processed fraction.  This
simulation preserves the algorithmic content while replacing the Postgres
substrate (see DESIGN.md §3):

* single table only, no joins, no nesting (the system's documented scope);
* chunked scan with a configurable chunk size;
* uniform 1/t scaling of sums/counts (no growth model, no clustering
  shortcuts, no per-group cardinality inference);
* a constant per-chunk ``middleware_overhead`` models the JDBC round trip
  and plan-rewrite cost of the real middleware (calibratable; the paper's
  relative results depend on its existence, not its exact value).

Supported aggregates: sum / count / avg, optionally grouped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.dataframe import AggSpec, DataFrame
from repro.dataframe.expr import Expr
from repro.dataframe.groupby import group_aggregate
from repro.storage.catalog import TableMeta

_SUPPORTED = ("sum", "count", "avg")


@dataclass(frozen=True)
class ProgressiveEstimate:
    """One refinement step of the progressive scan."""

    frame: DataFrame
    t: float
    wall_time: float
    rows_processed: int


@dataclass
class ProgressiveQuery:
    """A single-table aggregate query in ProgressiveDB's dialect."""

    table: str
    aggregates: Sequence[AggSpec]
    predicate: Expr | None = None
    by: Sequence[str] = ()
    derived: dict[str, Expr] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for spec in self.aggregates:
            if spec.agg not in _SUPPORTED:
                raise QueryError(
                    f"ProgressiveDB baseline supports {_SUPPORTED}, "
                    f"not {spec.agg!r}"
                )


class ProgressiveScan:
    """Chunked progressive execution of a :class:`ProgressiveQuery`."""

    def __init__(
        self,
        meta: TableMeta,
        chunk_rows: int = 2_000,
        middleware_overhead: float = 0.004,
    ) -> None:
        self.meta = meta
        self.chunk_rows = chunk_rows
        self.middleware_overhead = middleware_overhead

    def _chunks(self):
        for _index, frame in self.meta.iter_partitions():
            for start in range(0, frame.n_rows, self.chunk_rows):
                yield frame.slice(start, start + self.chunk_rows)

    def run(self, query: ProgressiveQuery) -> list[ProgressiveEstimate]:
        """Scan chunk by chunk, emitting uniformly-scaled estimates."""
        if query.table != self.meta.name:
            raise QueryError(
                f"query targets {query.table!r}, scan is over "
                f"{self.meta.name!r}"
            )
        total = self.meta.total_tuples
        estimates: list[ProgressiveEstimate] = []
        started = time.perf_counter()
        processed = 0
        acc: DataFrame | None = None
        raw_specs = _decompose(query.aggregates)
        for chunk in self._chunks():
            time.sleep(self.middleware_overhead)  # middleware round trip
            processed += chunk.n_rows
            if query.predicate is not None:
                chunk = chunk.mask(query.predicate.evaluate(chunk))
            for name, expr in query.derived.items():
                chunk = chunk.with_column(name, expr.evaluate(chunk))
            partial = _aggregate(chunk, query.by, raw_specs)
            acc = (
                partial if acc is None
                else _merge_frames(acc, partial, query.by, raw_specs)
            )
            t = processed / total
            estimates.append(
                ProgressiveEstimate(
                    frame=_finalize(acc, query, t),
                    t=t,
                    wall_time=time.perf_counter() - started,
                    rows_processed=processed,
                )
            )
        return estimates


def _decompose(specs: Sequence[AggSpec]) -> list[AggSpec]:
    """Mergeable raw parts: avg becomes (sum, count)."""
    raw: list[AggSpec] = []
    seen: set[str] = set()
    for spec in specs:
        if spec.agg == "avg":
            parts = [
                AggSpec("sum", spec.column, f"__{spec.alias}__sum"),
                AggSpec("count", spec.column, f"__{spec.alias}__count"),
            ]
        else:
            parts = [AggSpec(spec.agg, spec.column,
                             f"__{spec.alias}__{spec.agg}")]
        for part in parts:
            if part.alias not in seen:
                seen.add(part.alias)
                raw.append(part)
    return raw


def _aggregate(chunk: DataFrame, by: Sequence[str],
               raw_specs: list[AggSpec]) -> DataFrame:
    if by:
        out = group_aggregate(chunk, list(by), raw_specs)
    else:
        from repro.dataframe.groupby import global_aggregate

        out = global_aggregate(chunk, raw_specs)
    # counts come back int64; merge paths need one uniform float layout
    for spec in raw_specs:
        out = out.with_column(
            spec.alias, out.column(spec.alias).astype(np.float64)
        )
    return out


def _merge_frames(acc: DataFrame, partial: DataFrame, by: Sequence[str],
                  raw_specs: list[AggSpec]) -> DataFrame:
    combined = DataFrame.concat([acc, partial])
    sum_specs = [AggSpec("sum", spec.alias, spec.alias)
                 for spec in raw_specs]
    if by:
        return group_aggregate(combined, list(by), sum_specs)
    from repro.dataframe.groupby import global_aggregate

    return global_aggregate(combined, sum_specs)


def _finalize(acc: DataFrame, query: ProgressiveQuery,
              t: float) -> DataFrame:
    """Uniform 1/t scaling of sums and counts; avg is the raw ratio."""
    scale = 1.0 / t if t < 1.0 else 1.0
    data = {k: acc.column(k) for k in query.by}
    for spec in query.aggregates:
        if spec.agg == "avg":
            total = acc.column(f"__{spec.alias}__sum")
            count = acc.column(f"__{spec.alias}__count")
            with np.errstate(invalid="ignore", divide="ignore"):
                values = np.where(count > 0, total / np.maximum(count, 1),
                                  np.nan)
        elif spec.agg == "sum":
            values = acc.column(f"__{spec.alias}__sum") * scale
        else:  # count
            values = acc.column(f"__{spec.alias}__count") * scale
        data[spec.alias] = values
    return DataFrame(data)
