"""Exception hierarchy for the repro (Wake reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A DataFrame or edf schema is invalid or two schemas are incompatible."""


class ColumnNotFoundError(SchemaError):
    """A referenced column does not exist in the frame."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        super().__init__(
            f"column {name!r} not found; available columns: {list(available)}"
        )
        self.name = name
        self.available = available


class StorageError(ReproError):
    """A partitioned table or catalog is missing, corrupt, or inconsistent.

    Raise one of the two subclasses where the failure mode is known:
    :class:`TransientStorageError` for conditions that may clear on a
    retry, :class:`PermanentStorageError` for ones that never will.
    ``path`` / ``partition`` / ``table`` carry the failing partition's
    context when available (set by the storage layer's raise sites).
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        partition: int | None = None,
        table: str | None = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.partition = partition
        self.table = table


class TransientStorageError(StorageError):
    """A partition read failed in a way a retry may fix: the file is
    missing, locked, truncated, or fails to decompress — all expected
    states for a partition that is still being written or moved."""


class PermanentStorageError(StorageError):
    """A partition or catalog is structurally broken (corrupt schema,
    unknown format, inconsistent metadata); retrying cannot help."""


def is_transient(exc: BaseException) -> bool:
    """True when retrying the failed operation has a chance to succeed."""
    return isinstance(exc, TransientStorageError)


class QueryError(ReproError):
    """A query graph is malformed (bad op arguments, cycles, arity errors)."""


class PlanValidationError(QueryError):
    """Static plan validation rejected a plan before execution.

    Raised by :mod:`repro.analysis.schema_check` at submit time (and by
    the optimizer's rewrite-soundness checker in strict mode).  Carries
    enough structure for the snapshot server to return a machine-readable
    error reply: the validation ``code``, the offending graph ``node`` id
    and ``operator`` name, and the ``column`` involved (when one is).

    Codes: ``undefined-column``, ``type-mismatch``, ``non-numeric-agg``,
    ``duplicate-output``, ``delivery-misuse``, ``unsound-rewrite``.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        node: int | None = None,
        operator: str | None = None,
        column: str | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.node = node
        self.operator = operator
        self.column = column

    def to_dict(self) -> dict:
        """JSON-safe detail payload for wire replies."""
        return {
            "code": self.code,
            "node": self.node,
            "operator": self.operator,
            "column": self.column,
            "message": str(self),
        }


class ExecutionError(ReproError):
    """A runtime failure inside the execution engine."""


class InferenceError(ReproError):
    """Aggregate inference could not produce an estimate (bad growth state)."""


class ServiceError(ReproError):
    """The multi-query service rejected a request or the connection to a
    snapshot server failed."""
