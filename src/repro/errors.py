"""Exception hierarchy for the repro (Wake reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A DataFrame or edf schema is invalid or two schemas are incompatible."""


class ColumnNotFoundError(SchemaError):
    """A referenced column does not exist in the frame."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        super().__init__(
            f"column {name!r} not found; available columns: {list(available)}"
        )
        self.name = name
        self.available = available


class StorageError(ReproError):
    """A partitioned table or catalog is missing, corrupt, or inconsistent."""


class QueryError(ReproError):
    """A query graph is malformed (bad op arguments, cycles, arity errors)."""


class ExecutionError(ReproError):
    """A runtime failure inside the execution engine."""


class InferenceError(ReproError):
    """Aggregate inference could not produce an estimate (bad growth state)."""


class ServiceError(ReproError):
    """The multi-query service rejected a request or the connection to a
    snapshot server failed."""
