"""Multi-query service: run many online-aggregation queries in one
process and stream their snapshots to subscribers.

Layering (bottom-up):

* :class:`repro.engine.executor.StepExecutor` — the resumable executor
  whose quantum is one source partition;
* :mod:`repro.service.session` — query lifecycle (SUBMITTED → RUNNING →
  PAUSED/DONE/CANCELLED/FAILED) plus per-session snapshot buffers with
  non-blocking subscription cursors;
* :mod:`repro.service.scheduler` — a cooperative fair-share (stride)
  scheduler time-slicing partition-steps across sessions, with
  optional fault tolerance (:mod:`repro.service.retry`): transient
  partition-read failures retry with deterministic backoff, and
  skip-and-degrade mode quarantines partitions that keep failing;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib-only NDJSON-over-TCP protocol (``submit`` / ``subscribe`` /
  ``status`` / ``pause`` / ``resume`` / ``cancel``) streaming snapshots
  as they are produced (``repro serve``).
"""

from repro.service.retry import PARTITION_ERROR_MODES, RetryPolicy
from repro.service.scanshare import ScanShareManager, ScanSubscription
from repro.service.scheduler import FairShareScheduler
from repro.service.session import (
    AttachedSession,
    QuerySession,
    SessionState,
    SnapshotBuffer,
    Subscription,
)
from repro.service.server import QueryService, SnapshotServer
from repro.service.client import ServiceClient, SessionHandle

__all__ = [
    "AttachedSession",
    "FairShareScheduler",
    "PARTITION_ERROR_MODES",
    "QueryService",
    "QuerySession",
    "RetryPolicy",
    "ScanShareManager",
    "ScanSubscription",
    "ServiceClient",
    "SessionHandle",
    "SessionState",
    "SnapshotBuffer",
    "SnapshotServer",
    "Subscription",
]
