"""Cooperative fair-share scheduler over partition-steps.

Stride scheduling: every session carries a virtual time, advanced by
``1/priority`` per executed step, and the scheduler always runs the
runnable session with the smallest virtual time (a min-heap, so picking
is O(log n) per step; stale heap entries from pause/cancel are
lazily discarded via an epoch token, bounding the worst case at
O(active queries)).  A priority-2 query therefore receives twice the
partition-steps per unit time of a priority-1 query while both are
runnable.  Newly submitted and resumed sessions enter at the current
virtual clock, so they neither starve incumbents nor claim a catch-up
burst for time spent paused.

The scheduler is *cooperative*: one step (one source partition pushed
through one query's graph) is the indivisible quantum, executed under
the scheduler lock.  Control operations (pause/resume/cancel/submit)
take the same lock, so a cancel can never race the step it interrupts —
cancellation closes the executor's read streams and releases its
operator state before returning.  Subscribers never take this lock;
they wait on the per-session buffer instead, so a slow consumer cannot
block execution.

**Fault tolerance.**  With a :class:`~repro.service.retry.RetryPolicy`
attached, a step that raises a *retry-safe transient* error (the
partition read failed, no operator state advanced — see
:attr:`StepExecutor.step_retry_safe`) does not FAIL the session:
the session re-enters at its current virtual clock after a
deterministic capped-exponential backoff.  Backoff never sleeps under
the scheduler lock — the cooling session parks in a ready-time heap
while every other session keeps stepping.  Once attempts or the
per-session retry budget are exhausted, ``on_partition_error="skip"``
quarantines the partition (the scan emits the pruning path's empty
progress-advancing DELTA and the loss is recorded as degraded state);
the default ``"fail"`` keeps fail-fast semantics.  ``KeyboardInterrupt``
and ``SystemExit`` are never swallowed into a FAILED session: the
session is restored to its runnable state and the exception re-raised.
"""

from __future__ import annotations

import heapq
import threading
import time

from repro.engine.executor import StepExecutor
from repro.errors import QueryError, is_transient
from repro.service.retry import RetryPolicy
from repro.service.session import (
    AttachedSession,
    QuerySession,
    SessionState,
)

#: How long the background loop dozes when nothing is runnable.
_IDLE_WAIT = 0.05


class FairShareScheduler:
    """Time-slices partition-steps across registered query sessions."""

    def __init__(
        self,
        buffer_size: int | None = None,
        retry: RetryPolicy | None = None,
        metrics=None,
    ) -> None:
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._sessions: dict[str, QuerySession] = {}
        self._heap: list[tuple[float, int, str, int]] = []
        #: Sessions waiting out a retry backoff: (ready_monotonic,
        #: counter, session_id, epoch).  Admitted back into the main
        #: heap at their own vtime once ready.
        self._cooling: list[tuple[float, int, str, int]] = []
        self._counter = 0  # submission-order tie break
        self._clock = 0.0  # virtual time of the last scheduled session
        self._next_id = 1
        self._thread: threading.Thread | None = None
        self._stopping = False
        self._buffer_size = buffer_size
        #: Fault-tolerance policy; ``None`` = fail-fast (no retries).
        self.retry = retry
        #: Optional :class:`repro.obs.instruments.ServiceInstruments`
        #: bundle.  Instruments are pre-bound here once; the per-step
        #: cost with telemetry on is one clock pair + three locked adds
        #: and exactly one ``is None`` check when off.
        self.metrics = metrics
        self._step_metrics = (metrics.scheduler if metrics is not None
                              else None)
        self._buffer_metrics = (metrics.buffer if metrics is not None
                                else None)

    # -- registration -------------------------------------------------------------
    def submit(
        self,
        executor: StepExecutor,
        name: str | None = None,
        priority: float = 1.0,
        paused: bool = False,
        trace=None,
    ) -> QuerySession:
        """Register a query for execution; returns its live session.
        ``paused=True`` admits the session without scheduling it (e.g.
        to attach subscribers first), until ``resume``.  ``trace``
        (a :class:`~repro.obs.trace.SessionTrace`) must be passed here
        rather than set afterwards: the daemon step loop may run the
        session the moment the lock drops."""
        with self._work:
            session_id = f"s{self._next_id}"
            self._next_id += 1
            session = QuerySession(
                session_id,
                name or session_id,
                executor,
                priority=priority,
                buffer_size=self._buffer_size,
                buffer_metrics=self._buffer_metrics,
            )
            session.trace = trace
            session.vtime = self._clock
            self._sessions[session_id] = session
            if paused:
                session.state = SessionState.PAUSED
            else:
                self._push(session)
                self._work.notify_all()
            return session

    def attach(
        self,
        primary: QuerySession,
        name: str | None = None,
    ) -> AttachedSession | None:
        """Register a new session that *replays* ``primary`` instead of
        executing (the result-cache hit path).

        The primary's retained snapshot prefix seeds the new session's
        buffer and the primary's pump fans every later snapshot out to
        it — all by reference, under the same lock the step loop uses,
        so no snapshot can be missed or duplicated.  Returns ``None``
        when the attach is impossible: bounded-buffer eviction already
        dropped the primary's prefix (a replay could not be
        byte-identical), which callers treat as a cache miss."""
        with self._work:
            if primary.buffer.evicted:
                return None
            session_id = f"s{self._next_id}"
            self._next_id += 1
            attached = AttachedSession(
                session_id,
                name or primary.name,
                primary,
                buffer_size=self._buffer_size,
                buffer_metrics=self._buffer_metrics,
            )
            for snapshot in primary.buffer.retained():
                attached.buffer.append(snapshot)
            self._sessions[session_id] = attached
            if primary.terminal:
                attached.finish_from_primary(primary.state,
                                             primary.error)
            else:
                primary.fanout.append(attached)
            return attached

    def _push(self, session: QuerySession) -> None:
        session.epoch += 1
        self._counter += 1
        heapq.heappush(
            self._heap,
            (session.vtime, self._counter, session.session_id,
             session.epoch),
        )

    # -- lookup -------------------------------------------------------------------
    def get(self, session_id: str) -> QuerySession:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise QueryError(
                    f"no session {session_id!r}"
                ) from None

    def sessions(self) -> list[QuerySession]:
        with self._lock:
            return [self._sessions[k] for k in sorted(
                self._sessions, key=lambda s: int(s[1:]))]

    # -- observability views ------------------------------------------------------
    def run_queue_depth(self) -> int:
        """Sessions currently runnable (SUBMITTED/RUNNING) — the
        metrics-surface load signal."""
        with self._lock:
            return sum(
                1 for s in self._sessions.values()
                if s.state in (SessionState.SUBMITTED,
                               SessionState.RUNNING)
                and not isinstance(s, AttachedSession)
            )

    def vclock_skew(self) -> float:
        """Spread of runnable sessions' virtual times — the stride-
        scheduling fairness signal (0.0 = perfectly fair or < 2
        runnable sessions)."""
        with self._lock:
            vtimes = [
                s.vtime for s in self._sessions.values()
                if s.state in (SessionState.SUBMITTED,
                               SessionState.RUNNING)
                and not isinstance(s, AttachedSession)
            ]
            if len(vtimes) < 2:
                return 0.0
            return max(vtimes) - min(vtimes)

    # -- control plane ------------------------------------------------------------
    def pause(self, session_id: str) -> SessionState:
        """Stop scheduling a session (its state so far is retained).
        Attached sessions never execute, so pausing one is a no-op."""
        with self._lock:
            session = self.get(session_id)
            if isinstance(session, AttachedSession):
                return session.state
            if session.state in (SessionState.SUBMITTED,
                                 SessionState.RUNNING):
                session.state = SessionState.PAUSED
                session.epoch += 1  # invalidate its heap entry
            return session.state

    def resume(self, session_id: str) -> SessionState:
        """Re-enter a paused session at the current virtual clock."""
        with self._work:
            session = self.get(session_id)
            if isinstance(session, AttachedSession):
                return session.state
            if session.state is SessionState.PAUSED:
                session.state = (SessionState.RUNNING if session.steps
                                 else SessionState.SUBMITTED)
                session.vtime = max(session.vtime, self._clock)
                self._push(session)
                self._work.notify_all()
            return session.state

    def cancel(self, session_id: str) -> SessionState:
        """Terminally stop a session: release its operator state, close
        its read streams, and seal its snapshot buffer.  Safe while the
        scheduler thread runs — the shared lock serializes the cancel
        against any in-flight step.  Cancelling an *attached* session
        merely detaches it: the primary (and its other subscribers)
        keep running."""
        with self._lock:
            session = self.get(session_id)
            if session.terminal:
                return session.state
            if isinstance(session, AttachedSession):
                session.detach()
                return session.state
            session.epoch += 1
            session.pump_snapshots()
            session.executor.close()
            session.finish(SessionState.CANCELLED)
            return session.state

    def prune(self, keep_latest: int = 0) -> list[str]:
        """Drop terminal (DONE/CANCELLED/FAILED) sessions, releasing
        their snapshot history; returns the removed session ids.

        Long-running servers accumulate finished sessions (each pinning
        its full edf) until pruned — call this periodically, optionally
        keeping the ``keep_latest`` most recently finished for
        late subscribers.  Non-terminal sessions are never touched.
        """
        with self._lock:
            terminal = [s for s in self.sessions() if s.terminal]
            terminal.sort(key=lambda s: s.finished_at or 0.0)
            victims = (terminal[:-keep_latest] if keep_latest
                       else terminal)
            for session in victims:
                del self._sessions[session.session_id]
            return [s.session_id for s in victims]

    # -- stepping -----------------------------------------------------------------
    def run_once(self) -> QuerySession | None:
        """Execute one partition-step of the fairest runnable session;
        returns it, or ``None`` when nothing is runnable right now
        (sessions cooling off between retries do not count as
        runnable — see :meth:`next_ready_in`)."""
        with self._lock:
            self._admit_cooled()
            session = self._pop_runnable()
            if session is None:
                return None
            if session.state is SessionState.SUBMITTED:
                session.state = SessionState.RUNNING
            instruments = self._step_metrics
            trace = session.trace
            timed = instruments is not None or trace is not None
            started = time.perf_counter() if timed else 0.0
            try:
                session.executor.step()
            except BaseException as exc:  # noqa: BLE001 - classified below
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    # Never swallow an interrupt into a FAILED session:
                    # restore the session to its runnable state (it was
                    # popped above) and let the interrupt propagate.
                    self._push(session)
                    raise
                return self._handle_step_error(session, exc)
            if timed:
                elapsed = time.perf_counter() - started
                if instruments is not None:
                    instruments.steps.inc()
                    instruments.step_seconds.observe(elapsed)
                if trace is not None:
                    trace.record_step(session.steps, elapsed)
            session.steps += 1
            session.attempt = 0  # the current step succeeded
            session.vtime += 1.0 / session.priority
            moved = session.pump_snapshots()
            if trace is not None and moved:
                trace.record_publish(moved)
            if session.executor.done:
                session.finish(SessionState.DONE)
            else:
                self._push(session)
            return session

    def _handle_step_error(
        self, session: QuerySession, exc: BaseException
    ) -> QuerySession:
        """Retry, quarantine, or fail a session whose step raised.
        Called under the lock; never sleeps."""
        policy = self.retry
        session.last_error = exc
        # Only a retry-safe failure (the partition pull raised before
        # any operator state advanced) may be retried or skipped —
        # a mid-dispatch failure would double-process on retry.
        retry_safe = (policy is not None
                      and session.executor.step_retry_safe)
        instruments = self._step_metrics
        if retry_safe and is_transient(exc):
            session.attempt += 1
            if (session.attempt < policy.max_attempts
                    and session.retries_used < policy.retry_budget):
                session.retries_used += 1
                delay = policy.backoff(session.attempt)
                if instruments is not None:
                    instruments.retries.inc()
                    instruments.backoff_seconds.inc(delay)
                self._cool(session, delay)
                return session
        if retry_safe and policy.on_partition_error == "skip":
            record = session.executor.quarantine_current()
            if record is not None:
                if instruments is not None:
                    instruments.quarantines.inc()
                # Quarantined: the next step emits the empty
                # progress-advancing DELTA instead of re-reading the
                # file, and the loss is recorded as degraded state.
                session.quarantined.append(record)
                session.attempt = 0
                self._push(session)
                self._work.notify_all()
                return session
        session.pump_snapshots()
        try:
            session.executor.close()
        finally:
            # Seal with the error (propagated to attached sessions
            # too): subscribers receive a terminal error event instead
            # of inferring failure from silence.
            session.finish(SessionState.FAILED, error=exc)
        return session

    def _cool(self, session: QuerySession, delay: float) -> None:
        """Park a session until its backoff expires (lock held; the
        actual waiting happens off-lock in the callers' idle loops)."""
        session.epoch += 1
        self._counter += 1
        heapq.heappush(
            self._cooling,
            (time.monotonic() + delay, self._counter,
             session.session_id, session.epoch),
        )

    def _admit_cooled(self) -> None:
        """Move sessions whose backoff expired back into the run heap."""
        now = time.monotonic()
        while self._cooling and self._cooling[0][0] <= now:
            _, _, session_id, epoch = heapq.heappop(self._cooling)
            session = self._sessions.get(session_id)
            if (session is None or epoch != session.epoch
                    or session.state not in (SessionState.SUBMITTED,
                                             SessionState.RUNNING)):
                continue  # paused/cancelled/pruned while cooling
            self._push(session)

    def next_ready_in(self) -> float | None:
        """Seconds until the earliest cooling session is ready to retry
        (0.0 when one is overdue), or ``None`` when nothing is cooling.
        Lets idle loops sleep off-lock instead of spinning."""
        with self._lock:
            now = time.monotonic()
            while self._cooling:
                ready, _, session_id, epoch = self._cooling[0]
                session = self._sessions.get(session_id)
                if (session is None or epoch != session.epoch
                        or session.state not in (SessionState.SUBMITTED,
                                                 SessionState.RUNNING)):
                    heapq.heappop(self._cooling)  # stale entry
                    continue
                return max(0.0, ready - now)
            return None

    def _pop_runnable(self) -> QuerySession | None:
        while self._heap:
            vtime, _, session_id, epoch = heapq.heappop(self._heap)
            session = self._sessions.get(session_id)
            if session is None or epoch != session.epoch:
                continue  # stale entry (paused/cancelled/re-pushed)
            if session.state not in (SessionState.SUBMITTED,
                                     SessionState.RUNNING):
                continue
            self._clock = vtime
            return session
        return None

    def run_until_idle(self) -> None:
        """Step until nothing is runnable (runnable sessions drain to
        DONE; paused sessions stay paused).  Sessions cooling off
        between retries are waited for — off the lock — so the call
        still drains everything that can eventually run."""
        while True:
            if self.run_once() is not None:
                continue
            delay = self.next_ready_in()
            if delay is None:
                return
            if delay > 0:
                time.sleep(delay)  # off-lock: others keep stepping

    # -- background-thread mode ---------------------------------------------------
    def start(self) -> None:
        """Run the step loop on a daemon thread (the server mode)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stopping = False
            self._thread = threading.Thread(
                target=self._loop, name="wake-scheduler", daemon=True
            )
            self._thread.start()

    def _loop(self) -> None:
        while True:
            with self._work:
                if self._stopping:
                    return
            if self.run_once() is None:
                delay = self.next_ready_in()
                wait = (_IDLE_WAIT if delay is None
                        else min(_IDLE_WAIT, max(delay, 0.001)))
                with self._work:
                    if self._stopping:
                        return
                    self._work.wait(wait)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the background loop (sessions keep their state; call
        ``cancel`` per session to release executor resources)."""
        with self._work:
            self._stopping = True
            self._work.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=timeout)
