"""Retry policy for the fault-tolerant scheduler.

One :class:`RetryPolicy` is owned by a
:class:`~repro.service.scheduler.FairShareScheduler` and governs what
happens when a session's ``step()`` raises a *retry-safe transient*
error (see :attr:`~repro.engine.executor.StepExecutor.step_retry_safe`
and :func:`repro.errors.is_transient`):

* up to ``max_attempts`` tries per partition, separated by a
  **deterministic** capped exponential backoff (no jitter — chaos tests
  must replay byte-identically);
* a per-session ``retry_budget`` bounding total retries across the
  whole query, so a degraded disk cannot spin one session forever;
* once retries are exhausted, ``on_partition_error`` picks between
  failing the session (``"fail"``, the default — today's semantics) and
  quarantining the partition (``"skip"``): the scan emits the same
  empty progress-advancing DELTA the zone-map pruning path uses, the
  query keeps refining, and the loss is recorded as degraded state on
  the session (surfaced in ``status`` replies and snapshot events).

Backoff sleeping happens *off* the scheduler lock — a cooling session
parks in a ready-time heap while every other session keeps stepping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError

#: Allowed ``on_partition_error`` modes.
PARTITION_ERROR_MODES = ("fail", "skip")


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler handles transient step failures.

    ``max_attempts`` counts *total* tries per partition (1 = fail
    fast, n > 1 allows n - 1 retries).  ``backoff_base`` seconds before
    the first retry, multiplied by ``backoff_factor`` per subsequent
    attempt and capped at ``backoff_max``.  ``retry_budget`` bounds the
    total retries one session may consume over its lifetime.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    retry_budget: int = 64
    on_partition_error: str = "fail"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise QueryError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise QueryError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise QueryError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.retry_budget < 0:
            raise QueryError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.on_partition_error not in PARTITION_ERROR_MODES:
            raise QueryError(
                f"on_partition_error must be one of "
                f"{PARTITION_ERROR_MODES}, got "
                f"{self.on_partition_error!r}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        Deterministic capped exponential:
        ``min(backoff_max, backoff_base * backoff_factor ** (attempt-1))``.
        """
        if attempt < 1:
            raise QueryError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
