"""Query sessions: lifecycle state machine + snapshot buffers.

A :class:`QuerySession` wraps one :class:`~repro.engine.executor.
StepExecutor` submitted to the service.  The scheduler thread drives it
(``RUNNING`` → ``DONE``/``FAILED``); the control plane pauses, resumes,
or cancels it.  Snapshots produced by the executor are pumped into a
:class:`SnapshotBuffer` from which any number of subscribers read at
their own pace — execution appends without ever blocking on a consumer,
so a slow subscriber can never stall a query (backpressure is handled
by eviction when the buffer is bounded, never by stalling the
producer).
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Iterator

from repro.core.edf import EdfSnapshot
from repro.engine.executor import StepExecutor
from repro.errors import QueryError


class SessionState(Enum):
    """Lifecycle: SUBMITTED → RUNNING → PAUSED | DONE | CANCELLED |
    FAILED (PAUSED can resume back to RUNNING; the last three are
    terminal)."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    PAUSED = "paused"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"


#: States from which no further steps will ever execute.
TERMINAL_STATES = frozenset(
    {SessionState.DONE, SessionState.CANCELLED, SessionState.FAILED}
)


class SnapshotBuffer:
    """Append-only snapshot sequence with independent read cursors.

    The producer (the scheduler thread) appends and never blocks; each
    subscriber holds a cursor — the index of the next snapshot it wants
    — and blocks (with optional timeout) only on *its own* reads.  With
    ``maxlen`` set, only the newest ``maxlen`` snapshots are retained:
    a lagging cursor skips forward and is told how many snapshots it
    dropped.  ``close()`` wakes every waiting subscriber; a closed
    buffer still serves the snapshots it retains.
    """

    def __init__(self, maxlen: int | None = None,
                 metrics=None) -> None:
        if maxlen is not None and maxlen < 1:
            raise QueryError(f"buffer maxlen must be >= 1, got {maxlen}")
        self._cond = threading.Condition()
        self._snapshots: list[EdfSnapshot] = []
        self._base = 0  # global index of _snapshots[0]
        self._maxlen = maxlen
        self._closed = False
        self._error: BaseException | None = None
        # Cumulative server-side counters.  Always maintained (they are
        # plain int adds) so `status` can report slow consumers even
        # with telemetry off; the optional pre-bound BufferInstruments
        # bundle additionally feeds the metrics registry and stamps
        # produce times for the snapshot-lag histogram.
        self._drops = 0
        self._evictions = 0
        self._subscribers = 0
        self._last_lag: float | None = None
        self._metrics = metrics
        self._times: list[float] = []  # aligned with _snapshots

    def append(self, snapshot: EdfSnapshot) -> None:
        with self._cond:
            self._snapshots.append(snapshot)
            metrics = self._metrics
            if metrics is not None:
                self._times.append(metrics.clock())
                metrics.snapshots.inc()
            if (self._maxlen is not None
                    and len(self._snapshots) > self._maxlen):
                overflow = len(self._snapshots) - self._maxlen
                del self._snapshots[:overflow]
                if metrics is not None:
                    del self._times[:overflow]
                    metrics.evictions.inc(overflow)
                self._base += overflow
                self._evictions += overflow
            self._cond.notify_all()

    def close(self, error: BaseException | None = None) -> None:
        """No more snapshots will ever arrive; wake all waiters.

        ``error`` seals the buffer with the terminal failure, so
        subscribers that drain it learn *why* the stream ended instead
        of having to infer it from session state."""
        with self._cond:
            self._closed = True
            if error is not None and self._error is None:
                self._error = error
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def evicted(self) -> bool:
        """True once bounded-buffer eviction has dropped the prefix —
        a replay from snapshot 0 is no longer possible."""
        with self._cond:
            return self._base > 0

    def retained(self) -> list[EdfSnapshot]:
        """The snapshots currently retained (the full history unless
        eviction dropped the prefix — check :attr:`evicted`)."""
        with self._cond:
            return list(self._snapshots)

    def latest(self) -> EdfSnapshot | None:
        """The newest retained snapshot (None while empty)."""
        with self._cond:
            return self._snapshots[-1] if self._snapshots else None

    @property
    def error(self) -> BaseException | None:
        """The terminal error the buffer was sealed with (None unless
        the producing session FAILED)."""
        with self._cond:
            return self._error

    # -- observability views ------------------------------------------------------
    @property
    def drops(self) -> int:
        """Cumulative snapshots *any* subscriber missed to eviction —
        the server-side slow-consumer signal (per-subscriber counts
        stay on each :class:`Subscription`)."""
        with self._cond:
            return self._drops

    @property
    def evictions(self) -> int:
        """Cumulative snapshots evicted by the ``maxlen`` bound."""
        with self._cond:
            return self._evictions

    @property
    def subscribers(self) -> int:
        """Cursors ever opened over this buffer."""
        with self._cond:
            return self._subscribers

    @property
    def last_lag(self) -> float | None:
        """Most recent produce-to-consume delay in seconds (``None``
        until a consume happens with telemetry on)."""
        with self._cond:
            return self._last_lag

    def register_cursor(self) -> None:
        """Count one new subscriber (called by :class:`Subscription`)."""
        with self._cond:
            self._subscribers += 1

    def __len__(self) -> int:
        """Total snapshots ever appended (independent of eviction)."""
        with self._cond:
            return self._base + len(self._snapshots)

    def get(
        self, cursor: int, timeout: float | None = None
    ) -> tuple[EdfSnapshot | None, int, int]:
        """Read the snapshot at ``cursor`` (or the oldest retained one
        past it), blocking until it exists.

        Returns ``(snapshot, next_cursor, dropped)`` where ``dropped``
        counts evicted snapshots the cursor skipped, or
        ``(None, cursor, 0)`` when the buffer closed with nothing newer
        (or the timeout expired).
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while True:
                end = self._base + len(self._snapshots)
                if cursor < end:
                    index = max(cursor, self._base)
                    snapshot = self._snapshots[index - self._base]
                    dropped = index - cursor
                    if dropped:
                        self._drops += dropped
                    metrics = self._metrics
                    if metrics is not None:
                        lag = (metrics.clock()
                               - self._times[index - self._base])
                        self._last_lag = lag
                        metrics.lag.observe(lag)
                        if dropped:
                            metrics.drops.inc(dropped)
                    return snapshot, index + 1, dropped
                if self._closed:
                    return None, cursor, 0
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None, cursor, 0
                self._cond.wait(remaining)


class Subscription:
    """One subscriber's cursor over a session's snapshot buffer."""

    def __init__(self, buffer: SnapshotBuffer, start: int = 0) -> None:
        self._buffer = buffer
        self._cursor = start
        #: Snapshots this subscriber missed to bounded-buffer eviction.
        self.dropped = 0
        buffer.register_cursor()

    @property
    def cursor(self) -> int:
        return self._cursor

    def next(self, timeout: float | None = None) -> EdfSnapshot | None:
        """The next unseen snapshot, or ``None`` when the stream is over
        (buffer closed and drained) or ``timeout`` expired."""
        snapshot, self._cursor, dropped = self._buffer.get(
            self._cursor, timeout=timeout
        )
        self.dropped += dropped
        return snapshot

    @property
    def finished(self) -> bool:
        """True once the buffer is closed and fully consumed."""
        return (self._buffer.closed
                and self._cursor >= len(self._buffer))

    @property
    def error(self) -> BaseException | None:
        """The terminal error of a FAILED session's stream (None while
        the session is live or when it ended cleanly)."""
        return self._buffer.error

    def __iter__(self) -> Iterator[EdfSnapshot]:
        while True:
            snapshot = self.next()
            if snapshot is None:
                return
            yield snapshot


def _buffer_status(buffer: SnapshotBuffer) -> dict:
    """Server-side buffer health for ``status`` replies: cumulative
    drops/evictions (previously visible only to the dropping
    subscriber), subscriber count, and the latest consume lag."""
    return {
        "drops": buffer.drops,
        "evictions": buffer.evictions,
        "subscribers": buffer.subscribers,
        "snapshot_lag_seconds": buffer.last_lag,
    }


class QuerySession:
    """One submitted query: executor + lifecycle + snapshot buffer.

    State is written only under the owning scheduler's lock (the
    scheduler mutates RUNNING/DONE/FAILED from its step loop; control
    threads mutate PAUSED/CANCELLED through the scheduler's methods, so
    a cancel can never race a step).
    """

    def __init__(
        self,
        session_id: str,
        name: str,
        executor: StepExecutor,
        priority: float = 1.0,
        buffer_size: int | None = None,
        buffer_metrics=None,
    ) -> None:
        if priority <= 0:
            raise QueryError(
                f"session priority must be > 0, got {priority}"
            )
        self.session_id = session_id
        self.name = name
        self.executor = executor
        self.priority = float(priority)
        self.state = SessionState.SUBMITTED
        self.error: BaseException | None = None
        self.buffer = SnapshotBuffer(maxlen=buffer_size,
                                     metrics=buffer_metrics)
        self.steps = 0
        #: Consecutive failed attempts at the *current* step (reset to 0
        #: by the scheduler after any successful step or quarantine).
        self.attempt = 0
        #: Total retries consumed across the session's lifetime
        #: (bounded by the retry policy's ``retry_budget``).
        self.retries_used = 0
        #: Most recent step error (kept even after a successful retry,
        #: so degraded state can report what went wrong).
        self.last_error: BaseException | None = None
        #: Quarantined-partition records (skip-and-degrade mode).
        self.quarantined: list = []
        #: Stride-scheduling virtual time (advanced by 1/priority per
        #: step; owned by the scheduler).
        self.vtime = 0.0
        #: Heap-entry validity token (owned by the scheduler).
        self.epoch = 0
        self.submitted_at = time.monotonic()
        self.finished_at: float | None = None
        self._pumped = 0
        #: Canonical plan hash (set by the service when the result
        #: cache is on; ``None`` for directly scheduled sessions).
        self.plan_hash: str | None = None
        #: Optional :class:`repro.obs.trace.SessionTrace` — set via
        #: ``scheduler.submit(trace=...)`` *before* the daemon step
        #: loop can touch the session, so no step goes unrecorded.
        self.trace = None
        #: Attached sessions (result-cache hits) fed by this session's
        #: pump — each receives a *reference* to every snapshot this
        #: session produces (O(1) per snapshot, no copies).
        self.fanout: list["AttachedSession"] = []

    # -- scheduler side -----------------------------------------------------------
    def pump_snapshots(self) -> int:
        """Move newly produced executor snapshots into the buffer (and
        every attached session's buffer — shared references, no
        copies).  Returns how many were transferred.  Never blocks.
        Indexed access keeps the per-step cost O(new snapshots), not
        O(all snapshots ever produced)."""
        edf = self.executor.edf
        moved = 0
        while self._pumped < len(edf):
            snapshot = edf.snapshot(self._pumped)
            self.buffer.append(snapshot)
            for attached in self.fanout:
                attached.buffer.append(snapshot)
            self._pumped += 1
            moved += 1
        return moved

    def finish(
        self,
        state: SessionState,
        error: BaseException | None = None,
    ) -> None:
        """Enter a terminal state: seal this session's buffer and
        propagate the terminal state to every attached session (a
        result-cache subscriber shares its primary's fate — DONE,
        FAILED with the same error, or CANCELLED).  Called under the
        scheduler lock."""
        self.state = state
        if error is not None:
            self.error = error
        self.buffer.close(error=error)
        self.finished_at = time.monotonic()
        if self.trace is not None:
            self.trace.finish(state=state.value)
        for attached in self.fanout:
            attached.finish_from_primary(state, error)
        self.fanout = []

    # -- shared views -------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def subscribe(self, start: int = 0) -> Subscription:
        """A new cursor over this session's snapshots.  ``start=0``
        replays from the first retained snapshot, so subscribers that
        attach after completion still see the full refinement."""
        return Subscription(self.buffer, start=start)

    def degraded(self) -> dict | None:
        """Degraded-state summary, or ``None`` for a healthy session.

        A session degrades when skip-and-degrade mode quarantines
        partitions: the answer keeps refining but is missing the listed
        partitions' rows.  JSON-friendly (wire ``status`` payload)."""
        if not self.quarantined:
            return None
        return {
            "partitions": [
                {
                    "source": q.source,
                    "table": q.table,
                    "index": q.index,
                    "path": q.path,
                    "rows": q.rows,
                }
                for q in self.quarantined
            ],
            "rows_lost": int(sum(q.rows for q in self.quarantined)),
            "last_error": (repr(self.last_error)
                           if self.last_error is not None else None),
        }

    def status(self) -> dict:
        """A JSON-friendly summary (the wire ``status`` payload)."""
        edf = self.executor.edf
        count = len(edf)
        latest = edf.snapshot(count - 1) if count else None
        return {
            "session": self.session_id,
            "name": self.name,
            "state": self.state.value,
            "priority": self.priority,
            "steps": self.steps,
            "snapshots": count,
            "t": latest.t if latest is not None else 0.0,
            "final": latest.is_final if latest is not None else False,
            "error": repr(self.error) if self.error is not None else None,
            "retries": self.retries_used,
            "degraded": self.degraded(),
            "cache_hit": False,
            "buffer": _buffer_status(self.buffer),
        }

    def __repr__(self) -> str:
        return (f"QuerySession({self.session_id!r}, {self.name!r}, "
                f"state={self.state.value})")


class AttachedSession:
    """A result-cache hit: a session that *replays* another session's
    snapshots instead of executing.

    Created by :meth:`FairShareScheduler.attach` when a submit's
    canonical plan hash matches an in-flight (or retained) primary
    session: the primary's retained snapshot prefix is seeded into this
    session's buffer at attach time and every later snapshot is fanned
    out by the primary's pump — all by reference, so an attach costs
    O(prefix snapshots) pointer appends and zero execution.  The
    subscriber-facing surface (``subscribe``/``status``/``degraded``)
    matches :class:`QuerySession`, so clients cannot tell (except via
    ``cache_hit``/``attached_to`` in ``status``) that nothing ran.

    Lifecycle: the attached session mirrors its primary — it reaches
    DONE/FAILED (same error) when the primary does.  ``cancel`` on an
    attached session merely *detaches* it (the primary and any other
    subscribers keep going); pause/resume are no-ops (there is no
    execution to deschedule).
    """

    def __init__(
        self,
        session_id: str,
        name: str,
        primary: QuerySession,
        buffer_size: int | None = None,
        buffer_metrics=None,
    ) -> None:
        self.session_id = session_id
        self.name = name
        self.primary = primary
        self.priority = primary.priority
        self.state = primary.state
        self.error: BaseException | None = None
        self.buffer = SnapshotBuffer(maxlen=buffer_size,
                                     metrics=buffer_metrics)
        self.plan_hash = primary.plan_hash
        self.submitted_at = time.monotonic()
        self.finished_at: float | None = None

    # -- mirrored views ------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def steps(self) -> int:
        """Partition-steps executed *by the primary* — this session
        itself never executes."""
        return self.primary.steps

    @property
    def quarantined(self) -> list:
        return self.primary.quarantined

    def subscribe(self, start: int = 0) -> Subscription:
        return Subscription(self.buffer, start=start)

    def degraded(self) -> dict | None:
        """Degradation is shared state: a partition quarantined in the
        primary is missing from every attached subscriber's answer."""
        return self.primary.degraded()

    def finish_from_primary(
        self,
        state: SessionState,
        error: BaseException | None = None,
    ) -> None:
        """The primary reached a terminal state; mirror it (called
        under the scheduler lock, via :meth:`QuerySession.finish`)."""
        self.state = state
        self.error = error
        self.buffer.close(error=error)
        self.finished_at = time.monotonic()

    def detach(self) -> None:
        """Stop mirroring (the attached session's ``cancel``): seal the
        buffer with what was replayed so far and leave the primary —
        and its other subscribers — untouched."""
        if self.terminal:
            return
        self.state = SessionState.CANCELLED
        if self in self.primary.fanout:
            self.primary.fanout.remove(self)
        self.buffer.close()
        self.finished_at = time.monotonic()

    def status(self) -> dict:
        """The wire ``status`` payload — same shape as
        :class:`QuerySession.status` plus the attach provenance."""
        count = len(self.buffer)
        latest = self.buffer.latest()
        return {
            "session": self.session_id,
            "name": self.name,
            "state": self.state.value,
            "priority": self.priority,
            "steps": self.steps,
            "snapshots": count,
            "t": latest.t if latest is not None else 0.0,
            "final": latest.is_final if latest is not None else False,
            "error": repr(self.error) if self.error is not None else None,
            "retries": self.primary.retries_used,
            "degraded": self.degraded(),
            "cache_hit": True,
            "attached_to": self.primary.session_id,
            "buffer": _buffer_status(self.buffer),
        }

    def __repr__(self) -> str:
        return (f"AttachedSession({self.session_id!r}, {self.name!r}, "
                f"primary={self.primary.session_id!r}, "
                f"state={self.state.value})")
