"""Shared-scan fan-out: one physical partition read per (table,
partition, column-superset), fanned out to every subscribed query.

The multi-query service (PR 5) runs N concurrent queries over the same
base tables, but each query's :class:`~repro.engine.ops.read.ReadOperator`
re-reads and re-decompresses every partition — the scan layer is N-times
redundant, the classic shared-cyclic-scan problem of online aggregation.
This module de-duplicates the physical work *without touching query
semantics*:

* Each :class:`PartitionStream` *subscribes* to the
  :class:`ScanShareManager` with the set of partitions it will actually
  read (zone-map-pruned ones excluded) and its pushed-down column set.
* The first subscriber to pull a partition performs the one physical
  read — using the **union** of the columns every currently-pending
  subscriber needs, so overlapping projections share one decompress —
  and publishes the frame; every other pending subscriber's pull is a
  cache hit that *projects* the shared frame down to its own columns.
* Entries are refcounted by the set of subscribers still waiting: the
  last fetch evicts, so steady-state memory is O(in-flight partitions),
  not O(table).  A small LRU cap bounds the pathological case of a
  paused subscriber pinning entries indefinitely; an LRU-evicted
  subscriber simply falls back to its own read (a miss, never an error).

**Correctness contract** — snapshot sequences stay byte-identical to
unshared scans:

* Projection of the shared superset frame uses
  :meth:`~repro.dataframe.frame.DataFrame.select`, which preserves the
  requested column order; npz members are the same arrays whether the
  read was projected or not, so the projected view is byte-identical to
  a direct projected read.
* Fan-out shares *references* to immutable frames — no copy, no
  re-ordering, no batching across partitions.
* Failed reads are **never** published: a transient error propagates to
  exactly the pulling session (whose cursor has not advanced), so PR 6
  retry/quarantine stays per-session.  A subscriber that quarantines a
  partition :meth:`~ScanSubscription.release`\\ s it so the others stop
  waiting on (and stop widening column unions for) that subscriber.

The manager has one internal lock guarding only dict bookkeeping;
**physical IO always happens outside the lock** (check → read → publish)
so one slow read never serializes unrelated tables — and the service
scheduler, which steps sessions under its own lock, never does IO while
holding *that* lock either (the read happens inside the step, below the
scheduler's seam).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.dataframe import DataFrame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.storage.catalog import TableMeta

#: Default LRU cap on published-but-not-fully-consumed entries.  Each
#: entry is one partition's column superset; 64 comfortably covers the
#: window between the fastest and slowest of a fair-share cohort while
#: bounding memory when a paused session pins its pending entries.
DEFAULT_MAX_CACHED = 64


class _Entry:
    """One published partition read: the superset frame plus the ids of
    subscribers that have not consumed it yet (the refcount)."""

    __slots__ = ("frame", "columns", "waiting")

    def __init__(
        self,
        frame: DataFrame,
        columns: tuple[str, ...] | None,
        waiting: set[int],
    ) -> None:
        self.frame = frame
        self.columns = columns
        self.waiting = waiting


class ScanSubscription:
    """One scan's membership in the share pool (created via
    :meth:`ScanShareManager.subscribe`; used by
    :class:`~repro.engine.ops.read.PartitionStream`).

    * :meth:`fetch` — the shared read: returns the partition projected
      to *this* subscriber's columns, hitting the pool when another
      subscriber already paid for the physical read.
    * :meth:`release` — this subscriber will never read the partition
      (quarantine): stop counting it toward refcounts/column unions.
    * :meth:`close` — the stream is exhausted or abandoned; releases
      every remaining pending partition.  Idempotent.
    """

    def __init__(
        self,
        manager: "ScanShareManager",
        sub_id: int,
        key: tuple,
        meta: "TableMeta",
        columns: tuple[str, ...] | None,
    ) -> None:
        self._manager = manager
        self._id = sub_id
        self._key = key
        self._meta = meta
        self._columns = columns
        self._closed = False

    def fetch(self, index: int) -> DataFrame:
        """Read partition ``index`` through the share pool, projected to
        this subscriber's columns.  A failure propagates unchanged (and
        publishes nothing), leaving this call retryable."""
        return self._manager._fetch(self, index)

    def release(self, index: int) -> None:
        """Drop this subscriber's claim on ``index`` (the quarantine
        path): pending entries stop waiting for us and future column
        unions stop including ours."""
        self._manager._release(self, index)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._manager._unsubscribe(self)


class ScanShareManager:
    """The service-wide shared-scan pool (one per
    :class:`~repro.service.server.QueryService`).

    Thread-safe; safe to share across every session of a service.  The
    manager is content-addressed — tables are keyed by ``(name, files)``
    — so two catalogs pointing at the same partition files share reads
    while a re-registered table with different files does not.
    """

    def __init__(self, max_cached: int = DEFAULT_MAX_CACHED) -> None:
        if max_cached < 1:
            raise ValueError(
                f"max_cached must be >= 1, got {max_cached}"
            )
        self._lock = threading.Lock()
        self._max_cached = max_cached
        self._next_id = 1
        #: sub_id -> (table key, pending partition indices, columns).
        self._subscribers: dict[
            int, tuple[tuple, set[int], tuple[str, ...] | None]
        ] = {}
        #: (table key, partition index) -> published entry, in LRU order
        #: (most recently touched last).
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._physical_reads = 0
        self._shared_hits = 0
        self._lru_evictions = 0

    # -- subscription lifecycle ----------------------------------------------------
    def subscribe(
        self,
        meta: "TableMeta",
        pending: Iterable[int],
        columns: Iterable[str] | None,
    ) -> ScanSubscription:
        """Register one scan: ``pending`` is the set of partition
        indices it will physically read (pruned ones excluded) and
        ``columns`` its projection (``None`` = all columns)."""
        key = (meta.name, tuple(meta.files))
        cols = tuple(columns) if columns is not None else None
        with self._lock:
            sub_id = self._next_id
            self._next_id += 1
            self._subscribers[sub_id] = (key, set(pending), cols)
        return ScanSubscription(self, sub_id, key, meta, cols)

    def _unsubscribe(self, sub: ScanSubscription) -> None:
        with self._lock:
            record = self._subscribers.pop(sub._id, None)
            if record is None:
                return
            key, pending, _ = record
            for index in pending:
                self._drop_claim_locked(sub._id, (key, index))

    def _release(self, sub: ScanSubscription, index: int) -> None:
        with self._lock:
            record = self._subscribers.get(sub._id)
            if record is None:
                return
            record[1].discard(index)
            self._drop_claim_locked(sub._id, (sub._key, index))

    def _drop_claim_locked(self, sub_id: int, entry_key: tuple) -> None:
        entry = self._entries.get(entry_key)
        if entry is not None:
            entry.waiting.discard(sub_id)
            if not entry.waiting:
                del self._entries[entry_key]

    # -- the shared read -----------------------------------------------------------
    def _fetch(self, sub: ScanSubscription, index: int) -> DataFrame:
        entry_key = (sub._key, index)
        with self._lock:
            entry = self._entries.get(entry_key)
            if (
                entry is not None
                and sub._id in entry.waiting
                and _covers(entry.columns, sub._columns)
            ):
                # Hit: consume our claim; the last consumer evicts.
                entry.waiting.discard(sub._id)
                if entry.waiting:
                    self._entries.move_to_end(entry_key)
                else:
                    del self._entries[entry_key]
                record = self._subscribers.get(sub._id)
                if record is not None:
                    record[1].discard(index)
                self._shared_hits += 1
                frame = entry.frame
            else:
                # Miss: compute the column union + waiting set from the
                # subscribers currently pending this partition, then do
                # the physical read OUTSIDE the lock.
                frame = None
                union = _column_union(
                    self._subscribers.values(), sub._key, index
                )
        if frame is None:
            read = sub._meta.read_partition(index, columns=union)
            self._physical_reads += 1
            with self._lock:
                record = self._subscribers.get(sub._id)
                if record is not None:
                    record[1].discard(index)
                waiting = {
                    sid
                    for sid, (key, pend, _) in self._subscribers.items()
                    if key == sub._key and index in pend
                }
                if waiting:
                    self._entries[entry_key] = _Entry(
                        read, union, waiting
                    )
                    self._entries.move_to_end(entry_key)
                    while len(self._entries) > self._max_cached:
                        self._entries.popitem(last=False)
                        self._lru_evictions += 1
            frame = read
        if sub._columns is None:
            return frame
        if frame.column_names == sub._columns:
            return frame
        return frame.select(list(sub._columns))

    # -- introspection -------------------------------------------------------------
    def stats(self) -> Mapping[str, int]:
        """Counters for the service ``status`` report: physical reads
        paid, fetches served from the pool, LRU evictions, and the
        current pool occupancy."""
        with self._lock:
            return {
                "physical_reads": self._physical_reads,
                "shared_hits": self._shared_hits,
                "lru_evictions": self._lru_evictions,
                "subscribers": len(self._subscribers),
                "entries": len(self._entries),
            }


def _covers(
    have: tuple[str, ...] | None, need: tuple[str, ...] | None
) -> bool:
    """Whether a published column set satisfies a subscriber's
    projection (``None`` = the full schema)."""
    if have is None:
        return True
    if need is None:
        return False
    return set(need) <= set(have)


def _column_union(
    records, key: tuple, index: int
) -> tuple[str, ...] | None:
    """The union of the column sets of every subscriber pending
    ``(key, index)``; ``None`` as soon as any of them scans the full
    schema."""
    union: set[str] = set()
    for rec_key, pending, cols in records:
        if rec_key != key or index not in pending:
            continue
        if cols is None:
            return None
        union.update(cols)
    return tuple(sorted(union)) if union else None
