"""Blocking NDJSON client for the snapshot server.

One :class:`ServiceClient` owns one TCP connection; requests on it are
serialized (a ``subscribe`` stream occupies the connection until its
``end`` event).  Open one client per concurrent subscription — they are
cheap — and control the same sessions from any of them.

``submit`` returns a :class:`SessionHandle` — a ``str`` subclass that
*is* the session id (every old call site that treated the return value
as a bare id string keeps working: comparisons, dict keys, JSON
payloads) but additionally carries the submit reply
(:attr:`~SessionHandle.cache_hit`, :attr:`~SessionHandle.attached_to`)
and offers the control surface as methods::

    handle = client.submit("q06")
    handle.pause(); handle.resume()
    for event in handle.subscribe():   # a fresh connection per stream
        ...
"""

from __future__ import annotations

import json
import socket
from typing import Iterator, Mapping

from repro.errors import ServiceError


class SessionHandle(str):
    """A session id with its controls attached.

    Subclasses ``str`` so the handle *is* the session id on the wire
    and in existing code (``handle == "s1"``, set membership,
    ``json.dumps``); the extra surface delegates to the client that
    created it.  Control methods (:meth:`status`, :meth:`pause`,
    :meth:`resume`, :meth:`cancel`) reuse the creating client's
    connection; :meth:`subscribe` opens a **fresh** connection so the
    snapshot stream never blocks control traffic.
    """

    #: Whether this submit attached to a cached identical session
    #: instead of executing (the service's plan-hash result cache).
    cache_hit: bool
    #: The primary session id replayed on a cache hit (``None`` when
    #: this submit executes for itself).
    attached_to: str | None

    def __new__(
        cls,
        session_id: str,
        client: "ServiceClient",
        reply: dict | None = None,
    ) -> "SessionHandle":
        handle = super().__new__(cls, session_id)
        handle._client = client
        reply = reply or {}
        handle.cache_hit = bool(reply.get("cache_hit", False))
        handle.attached_to = reply.get("attached_to")
        return handle

    def status(self) -> dict:
        return self._client.status(str(self))

    def pause(self) -> str:
        return self._client.pause(str(self))

    def resume(self) -> str:
        return self._client.resume(str(self))

    def cancel(self) -> str:
        return self._client.cancel(str(self))

    def subscribe(
        self, start: int = 0, include_frame: bool = True
    ) -> Iterator[dict]:
        """Stream this session's snapshot events over a dedicated
        connection (closed when the stream ends), so the creating
        client stays free for control requests."""
        with self._client.clone() as stream_client:
            yield from stream_client.subscribe(
                str(self), start=start, include_frame=include_frame
            )


class ServiceClient:
    """Talk to a :class:`~repro.service.server.SnapshotServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float | None = None,
        read_timeout: float | None = None,
    ) -> None:
        """``timeout`` bounds the initial connect; ``read_timeout``
        bounds every subsequent reply read (``None`` = wait forever, the
        default — but set it for unattended clients: a hung server then
        raises :class:`~repro.errors.ServiceError` instead of blocking
        ``subscribe()`` indefinitely).  Defaults to ``timeout`` when
        only that is given."""
        self._host = host
        self._port = port
        self._timeout = timeout
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._read_timeout = (read_timeout if read_timeout is not None
                              else timeout)
        self._sock.settimeout(self._read_timeout)
        self._file = self._sock.makefile("rwb")

    def clone(self) -> "ServiceClient":
        """A fresh connection to the same server (same timeouts) — used
        by :meth:`SessionHandle.subscribe` so a long-lived snapshot
        stream does not occupy this connection."""
        return ServiceClient(
            self._host, self._port,
            timeout=self._timeout, read_timeout=self._read_timeout,
        )

    # -- plumbing -----------------------------------------------------------------
    def _send(self, payload: dict) -> None:
        self._file.write((json.dumps(payload) + "\n").encode())
        self._file.flush()

    def _read(self) -> dict:
        try:
            line = self._file.readline()
        except (socket.timeout, TimeoutError) as exc:
            raise ServiceError(
                f"no reply within {self._read_timeout}s (server hung "
                f"or unreachable?)"
            ) from exc
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line)

    def _request(self, payload: dict) -> dict:
        self._send(payload)
        reply = self._read()
        if reply.get("ok") is False:
            raise ServiceError(reply.get("error", "request failed"))
        return reply

    # -- operations ---------------------------------------------------------------
    def submit(
        self,
        query: str,
        params: Mapping | None = None,
        priority: float = 1.0,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        name: str | None = None,
        paused: bool = False,
        scan_share: bool | None = None,
        result_cache: bool | None = None,
    ) -> SessionHandle:
        """Submit a registered query; returns a :class:`SessionHandle`
        (a ``str`` holding the session id, plus controls and the
        ``cache_hit``/``attached_to`` submit metadata).
        ``paused=True`` admits it without running — attach subscribers,
        then ``resume``.  ``scan_share``/``result_cache`` override the
        server's defaults for this submit."""
        request: dict = {"op": "submit", "query": query,
                         "priority": priority}
        if paused:
            request["paused"] = True
        if params:
            request["params"] = dict(params)
        if parallelism is not None:
            request["parallelism"] = parallelism
        if pushdown is not None:
            request["pushdown"] = pushdown
        if name is not None:
            request["name"] = name
        if scan_share is not None:
            request["scan_share"] = scan_share
        if result_cache is not None:
            request["result_cache"] = result_cache
        reply = self._request(request)
        return SessionHandle(reply["session"], self, reply)

    def status(self, session: str | None = None) -> dict:
        """One session's status, or ``{"sessions": [...]}`` for all."""
        request: dict = {"op": "status"}
        if session is not None:
            request["session"] = session
        return self._request(request)

    def pause(self, session: str) -> str:
        return self._request({"op": "pause", "session": session})["state"]

    def resume(self, session: str) -> str:
        return self._request({"op": "resume",
                              "session": session})["state"]

    def cancel(self, session: str) -> str:
        return self._request({"op": "cancel",
                              "session": session})["state"]

    def prune(self, keep_latest: int = 0) -> list[str]:
        """Drop finished sessions server-side; returns removed ids."""
        return self._request({"op": "prune",
                              "keep_latest": keep_latest})["removed"]

    def metrics(self, format: str | None = None) -> dict:
        """The server's observability report (steps/s, snapshot lag,
        buffer drops, scan-share/cache counters, per-session series).
        ``format="prometheus"`` returns the reply whose ``prometheus``
        field carries the text exposition instead."""
        request: dict = {"op": "metrics"}
        if format is not None:
            request["format"] = format
        return self._request(request)

    def trace(self, session: str | None = None) -> dict:
        """One session's span tree (``trace`` field), or the retained
        trace summaries (``traces``) when ``session`` is omitted."""
        request: dict = {"op": "trace"}
        if session is not None:
            request["session"] = session
        return self._request(request)

    def subscribe(
        self,
        session: str,
        start: int = 0,
        include_frame: bool = True,
    ) -> Iterator[dict]:
        """Yield snapshot events (and the terminal ``end`` event) for a
        session, blocking between snapshots as they are produced.
        Snapshots already buffered server-side are replayed first, so
        subscribing after completion still yields the full refinement."""
        self._request({"op": "subscribe", "session": session,
                       "start": start, "include_frame": include_frame})
        while True:
            event = self._read()
            yield event
            if event.get("event") == "end":
                return

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
