"""Blocking NDJSON client for the snapshot server.

One :class:`ServiceClient` owns one TCP connection; requests on it are
serialized (a ``subscribe`` stream occupies the connection until its
``end`` event).  Open one client per concurrent subscription — they are
cheap — and control the same sessions from any of them.
"""

from __future__ import annotations

import json
import socket
from typing import Iterator, Mapping

from repro.errors import ServiceError


class ServiceClient:
    """Talk to a :class:`~repro.service.server.SnapshotServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float | None = None,
        read_timeout: float | None = None,
    ) -> None:
        """``timeout`` bounds the initial connect; ``read_timeout``
        bounds every subsequent reply read (``None`` = wait forever, the
        default — but set it for unattended clients: a hung server then
        raises :class:`~repro.errors.ServiceError` instead of blocking
        ``subscribe()`` indefinitely).  Defaults to ``timeout`` when
        only that is given."""
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._read_timeout = (read_timeout if read_timeout is not None
                              else timeout)
        self._sock.settimeout(self._read_timeout)
        self._file = self._sock.makefile("rwb")

    # -- plumbing -----------------------------------------------------------------
    def _send(self, payload: dict) -> None:
        self._file.write((json.dumps(payload) + "\n").encode())
        self._file.flush()

    def _read(self) -> dict:
        try:
            line = self._file.readline()
        except (socket.timeout, TimeoutError) as exc:
            raise ServiceError(
                f"no reply within {self._read_timeout}s (server hung "
                f"or unreachable?)"
            ) from exc
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line)

    def _request(self, payload: dict) -> dict:
        self._send(payload)
        reply = self._read()
        if reply.get("ok") is False:
            raise ServiceError(reply.get("error", "request failed"))
        return reply

    # -- operations ---------------------------------------------------------------
    def submit(
        self,
        query: str,
        params: Mapping | None = None,
        priority: float = 1.0,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        name: str | None = None,
        paused: bool = False,
    ) -> str:
        """Submit a registered query; returns the new session id.
        ``paused=True`` admits it without running — attach subscribers,
        then ``resume``."""
        request: dict = {"op": "submit", "query": query,
                         "priority": priority}
        if paused:
            request["paused"] = True
        if params:
            request["params"] = dict(params)
        if parallelism is not None:
            request["parallelism"] = parallelism
        if pushdown is not None:
            request["pushdown"] = pushdown
        if name is not None:
            request["name"] = name
        return self._request(request)["session"]

    def status(self, session: str | None = None) -> dict:
        """One session's status, or ``{"sessions": [...]}`` for all."""
        request: dict = {"op": "status"}
        if session is not None:
            request["session"] = session
        return self._request(request)

    def pause(self, session: str) -> str:
        return self._request({"op": "pause", "session": session})["state"]

    def resume(self, session: str) -> str:
        return self._request({"op": "resume",
                              "session": session})["state"]

    def cancel(self, session: str) -> str:
        return self._request({"op": "cancel",
                              "session": session})["state"]

    def prune(self, keep_latest: int = 0) -> list[str]:
        """Drop finished sessions server-side; returns removed ids."""
        return self._request({"op": "prune",
                              "keep_latest": keep_latest})["removed"]

    def subscribe(
        self,
        session: str,
        start: int = 0,
        include_frame: bool = True,
    ) -> Iterator[dict]:
        """Yield snapshot events (and the terminal ``end`` event) for a
        session, blocking between snapshots as they are produced.
        Snapshots already buffered server-side are replayed first, so
        subscribing after completion still yields the full refinement."""
        self._request({"op": "subscribe", "session": session,
                       "start": start, "include_frame": include_frame})
        while True:
            event = self._read()
            yield event
            if event.get("event") == "end":
                return

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
