"""Snapshot-streaming server: NDJSON over TCP (stdlib asyncio only).

Wire protocol — one JSON object per line, newline-terminated, in both
directions.  Requests carry an ``op``:

* ``{"op": "submit", "query": "q06", "params": {...}, "priority": 2,
  "parallelism": 4}`` → ``{"ok": true, "session": "s1", ...}``
* ``{"op": "status"}`` (all sessions) or
  ``{"op": "status", "session": "s1"}``
* ``{"op": "pause" | "resume" | "cancel", "session": "s1"}``
* ``{"op": "prune", "keep_latest": 4}`` — drop finished sessions
  (their retained snapshot history) so long-running servers reclaim
  memory; returns the removed session ids.
* ``{"op": "metrics"}`` — the observability report: steps/s, retry/
  backoff counts, partitions read/pruned/quarantined, scan-share and
  result-cache counters, per-session snapshot lag/drops/evictions,
  plus the full registry series dump.  ``"format": "prometheus"``
  returns the text exposition in a ``prometheus`` field instead; a
  plain HTTP ``GET /metrics`` on the same port gets the text format
  directly (one-shot, for Prometheus scrapers).
* ``{"op": "trace"}`` (retained trace summaries) or
  ``{"op": "trace", "session": "s1"}`` (one session's full span tree:
  submit → validate → optimize → per-step execute → publish).
* ``{"op": "subscribe", "session": "s1", "start": 0,
  "include_frame": true}`` → an ack line, then one
  ``{"event": "snapshot", ...}`` line per snapshot *as it is produced*
  (snapshots before ``start`` are replayed from the session buffer),
  terminated by ``{"event": "end", "state": "done" | "cancelled" |
  "failed", "error": ...}``.  ``dropped`` on a snapshot counts
  evictions a slow subscriber skipped (bounded buffers only); a
  ``degraded`` field appears once skip-and-degrade mode quarantines
  partitions (see :mod:`repro.service.retry`), and a FAILED session's
  stream always terminates with the ``end`` event carrying its error.

Execution happens on the scheduler's worker thread; the asyncio loop
only shuttles lines, so a stalled client connection never blocks query
progress (subscription reads run in the default thread-pool executor
against the session's snapshot buffer).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Callable, Mapping

from repro.api.context import WakeContext
from repro.api.frame_api import EdfFrame
from repro.api.options import ExecutionOptions
from repro.core.edf import EdfSnapshot
from repro.engine.plan_node import plan_hash
from repro.errors import PlanValidationError, QueryError
from repro.obs import (
    MetricsRegistry,
    ServiceInstruments,
    Tracer,
    maybe_span,
)
from repro.service.retry import RetryPolicy
from repro.service.scanshare import ScanShareManager
from repro.service.scheduler import FairShareScheduler
from repro.service.session import (
    AttachedSession,
    QuerySession,
    SessionState,
    Subscription,
)

#: Poll interval for subscription reads — short enough that server
#: shutdown and client disconnects are noticed promptly.
_SUBSCRIBE_POLL = 0.1


def tpch_plan_registry() -> dict[str, Callable[..., EdfFrame]]:
    """The default plan registry: the 22 TPC-H queries as ``q01``…``q22``
    (with unpadded ``q1``… aliases)."""
    from repro.tpch.queries import QUERIES

    registry: dict[str, Callable[..., EdfFrame]] = {}
    for number, query in QUERIES.items():
        def factory(ctx: WakeContext, _query=query, **params) -> EdfFrame:
            return _query.build_plan(ctx, **params)

        registry[f"q{number:02d}"] = factory
        registry[f"q{number}"] = factory
    return registry


class QueryService:
    """A WakeContext + plan registry + fair-share scheduler: the
    process-wide multi-query engine the server (or an embedding
    application) drives.

    Two multi-query optimizations live at this layer, both off by
    default and switched through :class:`ExecutionOptions` (``options=``
    here sets the service default; per-submit ``options``/kwargs
    override it):

    * ``scan_share`` — every submitted executor joins the service-wide
      :class:`~repro.service.scanshare.ScanShareManager`, so concurrent
      queries over the same table pay one physical read per (table,
      partition, column-superset).
    * ``result_cache`` — submits are keyed by the canonical
      :func:`~repro.engine.plan_node.plan_hash` of their *optimized*
      plan (plus the option fingerprint that can change result bytes);
      a key match *attaches* to the in-flight or retained session —
      replaying its snapshot prefix, O(prefix), zero execution —
      instead of re-executing.  The cache is advisory: entries whose
      session failed, was cancelled, was pruned, or whose buffer
      evicted its prefix fall back to a fresh execution (and re-prime
      the cache).  After mutating the catalog's underlying files,
      call :meth:`invalidate_cache` — the plan hash keys table *names*,
      not file contents.
    """

    def __init__(
        self,
        ctx: WakeContext,
        plans: Mapping[str, Callable[..., EdfFrame]] | None = None,
        buffer_size: int | None = None,
        retry: RetryPolicy | None = None,
        options: ExecutionOptions | None = None,
        telemetry: bool | None = None,
    ) -> None:
        self.ctx = ctx
        self.plans = (dict(plans) if plans is not None
                      else tpch_plan_registry())
        #: Service-default execution options (the context's unless
        #: overridden) — per-submit options/kwargs merge over these.
        self.options = options if options is not None else ctx.options
        # Telemetry (metrics registry + tracer) is a service-level
        # switch: ``telemetry=`` here overrides the options bundle (the
        # ``repro serve`` default is ON).  The sequence of snapshots a
        # query produces is byte-identical either way — telemetry only
        # ever *observes* (see benchmarks/bench_obs_overhead.py).
        enabled = (telemetry if telemetry is not None
                   else self.options.telemetry)
        if enabled:
            self.registry: MetricsRegistry | None = MetricsRegistry()
            self.instruments: ServiceInstruments | None = (
                ServiceInstruments(self.registry))
            self.tracer: Tracer | None = Tracer(
                clock=self.registry.clock)
        else:
            self.registry = None
            self.instruments = None
            self.tracer = None
        self.scheduler = FairShareScheduler(
            buffer_size=buffer_size, retry=retry,
            metrics=self.instruments,
        )
        #: Service-wide shared-scan pool (active only for sessions
        #: submitted with ``scan_share=True``).
        self.scan_share = ScanShareManager()
        self._cache_lock = threading.Lock()
        #: (plan hash, *option fingerprint) -> primary session id.
        self._result_cache: dict[tuple, str] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        if self.registry is not None:
            self._register_views()

    def _register_views(self) -> None:
        """Expose counters whose single source of truth lives elsewhere
        (scan-share pool, result cache, scheduler, per-session buffers)
        as collection-time registry views — no shadow counters, so the
        ``status`` aliases and the metrics surface cannot drift."""
        registry = self.registry
        assert registry is not None
        share = self.scan_share

        def share_stat(key: str):
            return lambda: share.stats()[key]

        registry.register_view(
            "repro_scan_share_physical_reads_total",
            share_stat("physical_reads"), kind="counter",
            help="partition reads paid by the shared-scan pool",
        )
        registry.register_view(
            "repro_scan_share_hits_total",
            share_stat("shared_hits"), kind="counter",
            help="partition fetches served from the shared-scan pool",
        )
        registry.register_view(
            "repro_scan_share_evictions_total",
            share_stat("lru_evictions"), kind="counter",
            help="shared-scan pool LRU evictions",
        )
        registry.register_view(
            "repro_result_cache_hits_total",
            lambda: self.cache_stats()["hits"], kind="counter",
            help="submits that attached to a cached identical session",
        )
        registry.register_view(
            "repro_result_cache_misses_total",
            lambda: self.cache_stats()["misses"], kind="counter",
            help="cache-enabled submits that executed for themselves",
        )
        registry.register_view(
            "repro_result_cache_entries",
            lambda: self.cache_stats()["entries"],
            help="live plan-hash result-cache entries",
        )
        registry.register_view(
            "repro_run_queue_depth", self.scheduler.run_queue_depth,
            help="sessions currently runnable",
        )
        registry.register_view(
            "repro_vclock_skew", self.scheduler.vclock_skew,
            help="virtual-time spread across runnable sessions "
                 "(stride-scheduling fairness)",
        )
        registry.register_view(
            "repro_sessions",
            lambda: [
                ({"state": state}, count)
                for state, count in self._sessions_by_state().items()
            ],
            help="registered sessions by lifecycle state",
        )
        registry.register_view(
            "repro_session_buffer_drops_total",
            lambda: [
                ({"session": s.session_id}, s.buffer.drops)
                for s in self.scheduler.sessions()
            ],
            kind="counter",
            help="snapshots subscribers of one session missed to "
                 "eviction",
        )
        registry.register_view(
            "repro_session_snapshot_lag_seconds",
            lambda: [
                ({"session": s.session_id}, s.buffer.last_lag)
                for s in self.scheduler.sessions()
                if s.buffer.last_lag is not None
            ],
            help="latest produce-to-consume delay per session",
        )

    def _sessions_by_state(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for session in self.scheduler.sessions():
            key = session.state.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def metrics_report(self) -> dict:
        """The NDJSON ``metrics`` payload: a curated headline section
        (the quantities an operator reaches for first) plus the full
        registry series dump.  Always-on fields (scan share, cache,
        per-session buffer health) are reported even with telemetry
        off, under ``"enabled": false``."""
        sessions: dict[str, dict] = {}
        for session in self.scheduler.sessions():
            buffer = session.buffer
            sessions[session.session_id] = {
                "name": session.name,
                "state": session.state.value,
                "steps": session.steps,
                "snapshots": len(buffer),
                "snapshot_lag_seconds": buffer.last_lag,
                "drops": buffer.drops,
                "evictions": buffer.evictions,
                "subscribers": buffer.subscribers,
            }
        cache = self.cache_stats()
        report: dict = {
            "enabled": self.registry is not None,
            "scan_share": dict(self.scan_share.stats()),
            "cache": cache,
            "result_cache_attaches_total": cache["hits"],
            "run_queue_depth": self.scheduler.run_queue_depth(),
            "vclock_skew": self.scheduler.vclock_skew(),
            "sessions": sessions,
        }
        if self.registry is None or self.instruments is None:
            return report
        registry, instruments = self.registry, self.instruments
        uptime = registry.uptime()
        steps = instruments.scheduler.steps.value
        report.update({
            "uptime_seconds": uptime,
            "steps_total": steps,
            "steps_per_second": (steps / uptime if uptime > 0
                                 else 0.0),
            "retries_total": instruments.scheduler.retries.value,
            "backoff_seconds_total":
                instruments.scheduler.backoff_seconds.value,
            "partitions_quarantined_total":
                instruments.scheduler.quarantines.value,
            "partitions_read_total":
                instruments.scan.partitions_read.value,
            "partitions_pruned_total":
                instruments.scan.partitions_pruned.value,
            "scan_rows_total": instruments.scan.rows_read.value,
            "scan_bytes_total": instruments.scan.bytes_read.value,
            "snapshots_published_total":
                instruments.buffer.snapshots.value,
            "buffer_drops_total": instruments.buffer.drops.value,
            "buffer_evictions_total":
                instruments.buffer.evictions.value,
            "series": registry.to_dict(),
        })
        return report

    def submit(
        self,
        query: str,
        params: Mapping | None = None,
        priority: float = 1.0,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        name: str | None = None,
        paused: bool = False,
        options: ExecutionOptions | None = None,
        scan_share: bool | None = None,
        result_cache: bool | None = None,
    ) -> QuerySession | AttachedSession:
        """Build the named plan and register it with the scheduler —
        or, with the result cache on and a plan-hash match against a
        live/retained identical session, attach to it instead."""
        try:
            factory = self.plans[query]
        except KeyError:
            known = ", ".join(sorted(self.plans))
            raise QueryError(
                f"unknown query {query!r}; known: {known}"
            ) from None
        opts = (options if options is not None else self.options).merged(
            parallelism=parallelism,
            pushdown=pushdown,
            scan_share=scan_share,
            result_cache=result_cache,
        )
        trace = (self.tracer.begin(name or query)
                 if self.tracer is not None else None)
        with maybe_span(trace, "submit", query=query):
            with maybe_span(trace, "build"):
                frame = factory(self.ctx, **dict(params or {}))
            executor = self.ctx.executor_for(frame, options=opts,
                                             trace=trace)
            # Hash the *optimized* graph: parallelism/pushdown
            # structure is part of the key, so differently-tuned
            # submits never collide.
            digest = plan_hash(executor.graph, executor.output)
            if trace is not None:
                trace.plan_hash = digest
            cache_key = (digest, *opts.cache_fingerprint())
            # ``paused`` submits bypass the cache entirely: an attach
            # replays instead of executing, which cannot be paused, and
            # a paused primary would stall its attachers.
            if opts.result_cache and not paused:
                with maybe_span(trace, "cache_lookup") as span:
                    attached = self._try_attach(cache_key,
                                                name or query)
                    if span is not None:
                        span.attrs["hit"] = attached is not None
                if attached is not None:
                    executor.close()  # the planned run never starts
                    if trace is not None and self.tracer is not None:
                        trace.root.attrs["cache_hit"] = True
                        trace.finish(state="attached")
                        self.tracer.bind(attached.session_id, trace)
                    return attached
            if opts.scan_share:
                executor.scan_share = self.scan_share
            if self.instruments is not None:
                executor.scan_metrics = self.instruments.scan
            session = self.scheduler.submit(
                executor, name=name or query, priority=priority,
                paused=paused, trace=trace,
            )
            session.plan_hash = digest
        if trace is not None and self.tracer is not None:
            self.tracer.bind(session.session_id, trace)
        if opts.result_cache and not paused:
            with self._cache_lock:
                self._result_cache[cache_key] = session.session_id
        return session

    def _try_attach(
        self, cache_key: tuple, name: str
    ) -> AttachedSession | None:
        """Attach to the cached session for ``cache_key`` if it is
        still usable; any dead entry (pruned, failed, cancelled,
        prefix evicted) counts as a miss and is dropped."""
        with self._cache_lock:
            primary_id = self._result_cache.get(cache_key)
        attached = None
        if primary_id is not None:
            try:
                primary = self.scheduler.get(primary_id)
            except QueryError:
                primary = None  # pruned
            if (
                isinstance(primary, QuerySession)
                and primary.state not in (SessionState.FAILED,
                                          SessionState.CANCELLED)
            ):
                attached = self.scheduler.attach(primary, name=name)
        with self._cache_lock:
            if attached is None:
                self._cache_misses += 1
                if (primary_id is not None
                        and self._result_cache.get(cache_key)
                        == primary_id):
                    del self._result_cache[cache_key]
            else:
                self._cache_hits += 1
        return attached

    def cache_stats(self) -> dict:
        """Result-cache counters for the ``status`` report."""
        with self._cache_lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "entries": len(self._result_cache),
            }

    def invalidate_cache(self) -> int:
        """Drop every result-cache entry (call after catalog files
        change under an unchanged table name); returns how many entries
        were dropped.  In-flight sessions are unaffected — only future
        submits stop attaching."""
        with self._cache_lock:
            dropped = len(self._result_cache)
            self._result_cache.clear()
            return dropped

    def start(self) -> None:
        self.scheduler.start()

    def stop(self) -> None:
        self.scheduler.stop()


def snapshot_event(
    session: QuerySession,
    snapshot: EdfSnapshot,
    dropped: int = 0,
    include_frame: bool = True,
) -> dict:
    """Serialize one snapshot as a wire event."""
    event = {
        "event": "snapshot",
        "session": session.session_id,
        "name": session.name,
        "sequence": snapshot.sequence,
        "t": snapshot.t,
        "wall_time": snapshot.wall_time,
        "rows_processed": snapshot.rows_processed,
        "n_rows": snapshot.frame.n_rows,
        "final": snapshot.is_final,
    }
    if dropped:
        event["dropped"] = dropped
    degraded = session.degraded()
    if degraded is not None:
        # Skip-and-degrade mode: the answer is refining but is missing
        # the quarantined partitions' rows — subscribers must know.
        event["degraded"] = degraded
    if include_frame:
        event["columns"] = snapshot.frame.to_pydict()
    return event


def _encode(payload: dict) -> bytes:
    # default=str covers numpy scalars / datetimes in frame columns.
    return (json.dumps(payload, default=str) + "\n").encode()


class SnapshotServer:
    """Asyncio TCP front-end over a :class:`QueryService`.

    Use ``asyncio.run(server.serve())`` for a foreground server (the
    CLI), or ``start()``/``stop()`` to run it on a background thread
    with its own event loop (tests, notebooks, the demo)."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; updated once listening
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- request handling ---------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                if line.startswith(b"GET "):
                    # One-shot Prometheus scrape: a plain HTTP GET on
                    # the NDJSON port (GET never starts a JSON line, so
                    # the protocols coexist).  Reply and close — HTTP
                    # keep-alive is not supported.
                    await self._serve_http_get(line, writer)
                    return
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be an object")
                except ValueError as exc:
                    writer.write(_encode(
                        {"ok": False, "error": f"bad request: {exc}"}
                    ))
                    await writer.drain()
                    continue
                try:
                    await self._dispatch(request, reader, writer)
                except PlanValidationError as exc:
                    # Static validation rejected the plan at submit:
                    # the reply carries the structured detail (code,
                    # offending node + column) instead of the session
                    # failing mid-stream with a terminal ``end``.
                    writer.write(_encode({
                        "ok": False,
                        "error": str(exc),
                        "detail": exc.to_dict(),
                    }))
                except (QueryError, KeyError, TypeError,
                        ValueError) as exc:
                    # Wire fields are untrusted: a bad priority/params/
                    # start must produce an error reply, not kill the
                    # connection.
                    writer.write(_encode({"ok": False,
                                          "error": str(exc)}))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown: complete normally so the loop's
            # connection callback doesn't log a spurious error.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_http_get(
        self, request_line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Answer ``GET /metrics`` with the Prometheus text format
        (anything else is a 404); the connection closes after the
        response, which is all a scrape needs."""
        parts = request_line.decode("latin-1").split()
        path = parts[1] if len(parts) >= 2 else ""
        registry = self.service.registry
        if path in ("/metrics", "/metrics/") and registry is not None:
            body = registry.render_prometheus().encode()
            head = (
                "HTTP/1.0 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4; "
                "charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        else:
            body = (b"telemetry disabled\n"
                    if registry is None else b"not found\n")
            status = ("503 Service Unavailable" if registry is None
                      else "404 Not Found")
            head = (
                f"HTTP/1.0 {status}\r\n"
                "Content-Type: text/plain\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _dispatch(
        self,
        request: dict,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        op = request.get("op")
        scheduler = self.service.scheduler
        if op == "submit":
            if "query" not in request:
                raise QueryError("submit needs a 'query'")
            session = self.service.submit(
                str(request["query"]),
                params=request.get("params"),
                priority=float(request.get("priority", 1.0)),
                parallelism=request.get("parallelism"),
                pushdown=request.get("pushdown"),
                name=request.get("name"),
                paused=bool(request.get("paused", False)),
                scan_share=request.get("scan_share"),
                result_cache=request.get("result_cache"),
            )
            writer.write(_encode({"ok": True, **session.status()}))
        elif op == "status":
            if "session" in request:
                session = scheduler.get(str(request["session"]))
                writer.write(_encode({"ok": True, **session.status()}))
            else:
                # ``cache``/``scan_share`` are deprecated aliases kept
                # for wire compatibility: the authoritative surface is
                # the ``metrics`` op (both are views over the same
                # underlying counters, so they can never drift).
                writer.write(_encode({
                    "ok": True,
                    "sessions": [s.status()
                                 for s in scheduler.sessions()],
                    "cache": self.service.cache_stats(),
                    "scan_share": dict(
                        self.service.scan_share.stats()
                    ),
                }))
        elif op == "metrics":
            fmt = request.get("format", "json")
            if fmt == "prometheus":
                registry = self.service.registry
                if registry is None:
                    raise QueryError(
                        "telemetry is disabled on this server; start "
                        "it with ExecutionOptions(telemetry=True) or "
                        "`repro serve --metrics`"
                    )
                writer.write(_encode({
                    "ok": True,
                    "prometheus": registry.render_prometheus(),
                }))
            elif fmt == "json":
                writer.write(_encode({
                    "ok": True,
                    **self.service.metrics_report(),
                }))
            else:
                raise QueryError(
                    f"unknown metrics format {fmt!r}; expected "
                    f"'json' or 'prometheus'"
                )
        elif op == "trace":
            tracer = self.service.tracer
            if tracer is None:
                raise QueryError(
                    "telemetry is disabled on this server; start it "
                    "with ExecutionOptions(telemetry=True) or "
                    "`repro serve --metrics`"
                )
            if "session" in request:
                trace = tracer.get(str(request["session"]))
                if trace is None:
                    raise QueryError(
                        f"no trace retained for session "
                        f"{request['session']!r}"
                    )
                writer.write(_encode({"ok": True,
                                      "trace": trace.to_dict()}))
            else:
                writer.write(_encode({
                    "ok": True,
                    "traces": [
                        {
                            "session": t.session_id,
                            "name": t.name,
                            "plan_hash": t.plan_hash,
                            "steps_total": t.steps_total,
                        }
                        for t in tracer.traces()
                    ],
                }))
        elif op in ("pause", "resume", "cancel"):
            if "session" not in request:
                raise QueryError(f"{op} needs a 'session'")
            session_id = str(request["session"])
            state = getattr(scheduler, op)(session_id)
            writer.write(_encode({"ok": True, "session": session_id,
                                  "state": state.value}))
        elif op == "prune":
            removed = scheduler.prune(
                keep_latest=int(request.get("keep_latest", 0))
            )
            writer.write(_encode({"ok": True, "removed": removed}))
        elif op == "subscribe":
            if "session" not in request:
                raise QueryError("subscribe needs a 'session'")
            session = scheduler.get(str(request["session"]))
            writer.write(_encode({"ok": True, "subscribed":
                                  session.session_id}))
            await writer.drain()
            await self._stream_snapshots(
                session, reader, writer,
                start=int(request.get("start", 0)),
                include_frame=bool(request.get("include_frame", True)),
            )
        else:
            raise QueryError(f"unknown op {op!r}")

    async def _stream_snapshots(
        self,
        session: QuerySession,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        start: int,
        include_frame: bool,
    ) -> None:
        """Stream buffered + live snapshots until the session ends."""
        loop = asyncio.get_running_loop()
        subscription = Subscription(session.buffer, start=start)
        while True:
            # A subscriber that disconnects while the session is idle
            # (paused, or between snapshots) would otherwise keep this
            # polling coroutine alive until server shutdown.
            if reader.at_eof() or writer.is_closing():
                return
            seen_dropped = subscription.dropped
            snapshot = await loop.run_in_executor(
                None, subscription.next, _SUBSCRIBE_POLL
            )
            if snapshot is not None:
                writer.write(_encode(snapshot_event(
                    session, snapshot,
                    dropped=subscription.dropped - seen_dropped,
                    include_frame=include_frame,
                )))
                await writer.drain()
                continue
            if subscription.finished:
                writer.write(_encode({
                    "event": "end",
                    "session": session.session_id,
                    "state": session.state.value,
                    "error": (repr(session.error)
                              if session.error is not None else None),
                }))
                await writer.drain()
                return

    # -- foreground mode ----------------------------------------------------------
    async def serve(self) -> None:
        """Start the scheduler and serve until cancelled (CLI mode)."""
        self.service.start()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        try:
            async with server:
                await server.serve_forever()
        finally:
            self.service.stop()

    # -- background-thread mode ---------------------------------------------------
    def start(self) -> "SnapshotServer":
        """Serve on a daemon thread with a private event loop; returns
        once the socket is listening (``self.port`` is then bound)."""
        if self._thread is not None:
            return self
        self.service.start()
        started = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                server = loop.run_until_complete(asyncio.start_server(
                    self._handle_connection, self.host, self.port
                ))
            except BaseException as exc:  # noqa: BLE001 - surfaced to start()
                failure.append(exc)
                started.set()
                loop.close()
                return
            self.port = server.sockets[0].getsockname()[1]
            started.set()
            try:
                loop.run_forever()
            finally:
                server.close()
                loop.run_until_complete(server.wait_closed())
                tasks = asyncio.all_tasks(loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    loop.run_until_complete(asyncio.gather(
                        *tasks, return_exceptions=True
                    ))
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="wake-server", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread = None
            self.service.stop()
            raise failure[0]
        return self

    def stop(self) -> None:
        """Stop the background server and the scheduler thread."""
        loop, thread = self._loop, self._thread
        self._loop = self._thread = None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10)
        self.service.stop()
