"""Snapshot-streaming server: NDJSON over TCP (stdlib asyncio only).

Wire protocol — one JSON object per line, newline-terminated, in both
directions.  Requests carry an ``op``:

* ``{"op": "submit", "query": "q06", "params": {...}, "priority": 2,
  "parallelism": 4}`` → ``{"ok": true, "session": "s1", ...}``
* ``{"op": "status"}`` (all sessions) or
  ``{"op": "status", "session": "s1"}``
* ``{"op": "pause" | "resume" | "cancel", "session": "s1"}``
* ``{"op": "prune", "keep_latest": 4}`` — drop finished sessions
  (their retained snapshot history) so long-running servers reclaim
  memory; returns the removed session ids.
* ``{"op": "subscribe", "session": "s1", "start": 0,
  "include_frame": true}`` → an ack line, then one
  ``{"event": "snapshot", ...}`` line per snapshot *as it is produced*
  (snapshots before ``start`` are replayed from the session buffer),
  terminated by ``{"event": "end", "state": "done" | "cancelled" |
  "failed", "error": ...}``.  ``dropped`` on a snapshot counts
  evictions a slow subscriber skipped (bounded buffers only); a
  ``degraded`` field appears once skip-and-degrade mode quarantines
  partitions (see :mod:`repro.service.retry`), and a FAILED session's
  stream always terminates with the ``end`` event carrying its error.

Execution happens on the scheduler's worker thread; the asyncio loop
only shuttles lines, so a stalled client connection never blocks query
progress (subscription reads run in the default thread-pool executor
against the session's snapshot buffer).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Callable, Mapping

from repro.api.context import WakeContext
from repro.api.frame_api import EdfFrame
from repro.api.options import ExecutionOptions
from repro.core.edf import EdfSnapshot
from repro.engine.plan_node import plan_hash
from repro.errors import PlanValidationError, QueryError
from repro.service.retry import RetryPolicy
from repro.service.scanshare import ScanShareManager
from repro.service.scheduler import FairShareScheduler
from repro.service.session import (
    AttachedSession,
    QuerySession,
    SessionState,
    Subscription,
)

#: Poll interval for subscription reads — short enough that server
#: shutdown and client disconnects are noticed promptly.
_SUBSCRIBE_POLL = 0.1


def tpch_plan_registry() -> dict[str, Callable[..., EdfFrame]]:
    """The default plan registry: the 22 TPC-H queries as ``q01``…``q22``
    (with unpadded ``q1``… aliases)."""
    from repro.tpch.queries import QUERIES

    registry: dict[str, Callable[..., EdfFrame]] = {}
    for number, query in QUERIES.items():
        def factory(ctx: WakeContext, _query=query, **params) -> EdfFrame:
            return _query.build_plan(ctx, **params)

        registry[f"q{number:02d}"] = factory
        registry[f"q{number}"] = factory
    return registry


class QueryService:
    """A WakeContext + plan registry + fair-share scheduler: the
    process-wide multi-query engine the server (or an embedding
    application) drives.

    Two multi-query optimizations live at this layer, both off by
    default and switched through :class:`ExecutionOptions` (``options=``
    here sets the service default; per-submit ``options``/kwargs
    override it):

    * ``scan_share`` — every submitted executor joins the service-wide
      :class:`~repro.service.scanshare.ScanShareManager`, so concurrent
      queries over the same table pay one physical read per (table,
      partition, column-superset).
    * ``result_cache`` — submits are keyed by the canonical
      :func:`~repro.engine.plan_node.plan_hash` of their *optimized*
      plan (plus the option fingerprint that can change result bytes);
      a key match *attaches* to the in-flight or retained session —
      replaying its snapshot prefix, O(prefix), zero execution —
      instead of re-executing.  The cache is advisory: entries whose
      session failed, was cancelled, was pruned, or whose buffer
      evicted its prefix fall back to a fresh execution (and re-prime
      the cache).  After mutating the catalog's underlying files,
      call :meth:`invalidate_cache` — the plan hash keys table *names*,
      not file contents.
    """

    def __init__(
        self,
        ctx: WakeContext,
        plans: Mapping[str, Callable[..., EdfFrame]] | None = None,
        buffer_size: int | None = None,
        retry: RetryPolicy | None = None,
        options: ExecutionOptions | None = None,
    ) -> None:
        self.ctx = ctx
        self.plans = (dict(plans) if plans is not None
                      else tpch_plan_registry())
        self.scheduler = FairShareScheduler(
            buffer_size=buffer_size, retry=retry
        )
        #: Service-default execution options (the context's unless
        #: overridden) — per-submit options/kwargs merge over these.
        self.options = options if options is not None else ctx.options
        #: Service-wide shared-scan pool (active only for sessions
        #: submitted with ``scan_share=True``).
        self.scan_share = ScanShareManager()
        self._cache_lock = threading.Lock()
        #: (plan hash, *option fingerprint) -> primary session id.
        self._result_cache: dict[tuple, str] = {}
        self._cache_hits = 0
        self._cache_misses = 0

    def submit(
        self,
        query: str,
        params: Mapping | None = None,
        priority: float = 1.0,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        name: str | None = None,
        paused: bool = False,
        options: ExecutionOptions | None = None,
        scan_share: bool | None = None,
        result_cache: bool | None = None,
    ) -> QuerySession | AttachedSession:
        """Build the named plan and register it with the scheduler —
        or, with the result cache on and a plan-hash match against a
        live/retained identical session, attach to it instead."""
        try:
            factory = self.plans[query]
        except KeyError:
            known = ", ".join(sorted(self.plans))
            raise QueryError(
                f"unknown query {query!r}; known: {known}"
            ) from None
        opts = (options if options is not None else self.options).merged(
            parallelism=parallelism,
            pushdown=pushdown,
            scan_share=scan_share,
            result_cache=result_cache,
        )
        frame = factory(self.ctx, **dict(params or {}))
        executor = self.ctx.executor_for(frame, options=opts)
        # Hash the *optimized* graph: parallelism/pushdown structure is
        # part of the key, so differently-tuned submits never collide.
        digest = plan_hash(executor.graph, executor.output)
        cache_key = (digest, *opts.cache_fingerprint())
        # ``paused`` submits bypass the cache entirely: an attach
        # replays instead of executing, which cannot be paused, and a
        # paused primary would stall its attachers.
        if opts.result_cache and not paused:
            attached = self._try_attach(cache_key, name or query)
            if attached is not None:
                executor.close()  # the planned run never starts
                return attached
        if opts.scan_share:
            executor.scan_share = self.scan_share
        session = self.scheduler.submit(
            executor, name=name or query, priority=priority,
            paused=paused,
        )
        session.plan_hash = digest
        if opts.result_cache and not paused:
            with self._cache_lock:
                self._result_cache[cache_key] = session.session_id
        return session

    def _try_attach(
        self, cache_key: tuple, name: str
    ) -> AttachedSession | None:
        """Attach to the cached session for ``cache_key`` if it is
        still usable; any dead entry (pruned, failed, cancelled,
        prefix evicted) counts as a miss and is dropped."""
        with self._cache_lock:
            primary_id = self._result_cache.get(cache_key)
        attached = None
        if primary_id is not None:
            try:
                primary = self.scheduler.get(primary_id)
            except QueryError:
                primary = None  # pruned
            if (
                isinstance(primary, QuerySession)
                and primary.state not in (SessionState.FAILED,
                                          SessionState.CANCELLED)
            ):
                attached = self.scheduler.attach(primary, name=name)
        with self._cache_lock:
            if attached is None:
                self._cache_misses += 1
                if (primary_id is not None
                        and self._result_cache.get(cache_key)
                        == primary_id):
                    del self._result_cache[cache_key]
            else:
                self._cache_hits += 1
        return attached

    def cache_stats(self) -> dict:
        """Result-cache counters for the ``status`` report."""
        with self._cache_lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "entries": len(self._result_cache),
            }

    def invalidate_cache(self) -> int:
        """Drop every result-cache entry (call after catalog files
        change under an unchanged table name); returns how many entries
        were dropped.  In-flight sessions are unaffected — only future
        submits stop attaching."""
        with self._cache_lock:
            dropped = len(self._result_cache)
            self._result_cache.clear()
            return dropped

    def start(self) -> None:
        self.scheduler.start()

    def stop(self) -> None:
        self.scheduler.stop()


def snapshot_event(
    session: QuerySession,
    snapshot: EdfSnapshot,
    dropped: int = 0,
    include_frame: bool = True,
) -> dict:
    """Serialize one snapshot as a wire event."""
    event = {
        "event": "snapshot",
        "session": session.session_id,
        "name": session.name,
        "sequence": snapshot.sequence,
        "t": snapshot.t,
        "wall_time": snapshot.wall_time,
        "rows_processed": snapshot.rows_processed,
        "n_rows": snapshot.frame.n_rows,
        "final": snapshot.is_final,
    }
    if dropped:
        event["dropped"] = dropped
    degraded = session.degraded()
    if degraded is not None:
        # Skip-and-degrade mode: the answer is refining but is missing
        # the quarantined partitions' rows — subscribers must know.
        event["degraded"] = degraded
    if include_frame:
        event["columns"] = snapshot.frame.to_pydict()
    return event


def _encode(payload: dict) -> bytes:
    # default=str covers numpy scalars / datetimes in frame columns.
    return (json.dumps(payload, default=str) + "\n").encode()


class SnapshotServer:
    """Asyncio TCP front-end over a :class:`QueryService`.

    Use ``asyncio.run(server.serve())`` for a foreground server (the
    CLI), or ``start()``/``stop()`` to run it on a background thread
    with its own event loop (tests, notebooks, the demo)."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; updated once listening
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- request handling ---------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be an object")
                except ValueError as exc:
                    writer.write(_encode(
                        {"ok": False, "error": f"bad request: {exc}"}
                    ))
                    await writer.drain()
                    continue
                try:
                    await self._dispatch(request, reader, writer)
                except PlanValidationError as exc:
                    # Static validation rejected the plan at submit:
                    # the reply carries the structured detail (code,
                    # offending node + column) instead of the session
                    # failing mid-stream with a terminal ``end``.
                    writer.write(_encode({
                        "ok": False,
                        "error": str(exc),
                        "detail": exc.to_dict(),
                    }))
                except (QueryError, KeyError, TypeError,
                        ValueError) as exc:
                    # Wire fields are untrusted: a bad priority/params/
                    # start must produce an error reply, not kill the
                    # connection.
                    writer.write(_encode({"ok": False,
                                          "error": str(exc)}))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown: complete normally so the loop's
            # connection callback doesn't log a spurious error.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self,
        request: dict,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        op = request.get("op")
        scheduler = self.service.scheduler
        if op == "submit":
            if "query" not in request:
                raise QueryError("submit needs a 'query'")
            session = self.service.submit(
                str(request["query"]),
                params=request.get("params"),
                priority=float(request.get("priority", 1.0)),
                parallelism=request.get("parallelism"),
                pushdown=request.get("pushdown"),
                name=request.get("name"),
                paused=bool(request.get("paused", False)),
                scan_share=request.get("scan_share"),
                result_cache=request.get("result_cache"),
            )
            writer.write(_encode({"ok": True, **session.status()}))
        elif op == "status":
            if "session" in request:
                session = scheduler.get(str(request["session"]))
                writer.write(_encode({"ok": True, **session.status()}))
            else:
                writer.write(_encode({
                    "ok": True,
                    "sessions": [s.status()
                                 for s in scheduler.sessions()],
                    "cache": self.service.cache_stats(),
                    "scan_share": dict(
                        self.service.scan_share.stats()
                    ),
                }))
        elif op in ("pause", "resume", "cancel"):
            if "session" not in request:
                raise QueryError(f"{op} needs a 'session'")
            session_id = str(request["session"])
            state = getattr(scheduler, op)(session_id)
            writer.write(_encode({"ok": True, "session": session_id,
                                  "state": state.value}))
        elif op == "prune":
            removed = scheduler.prune(
                keep_latest=int(request.get("keep_latest", 0))
            )
            writer.write(_encode({"ok": True, "removed": removed}))
        elif op == "subscribe":
            if "session" not in request:
                raise QueryError("subscribe needs a 'session'")
            session = scheduler.get(str(request["session"]))
            writer.write(_encode({"ok": True, "subscribed":
                                  session.session_id}))
            await writer.drain()
            await self._stream_snapshots(
                session, reader, writer,
                start=int(request.get("start", 0)),
                include_frame=bool(request.get("include_frame", True)),
            )
        else:
            raise QueryError(f"unknown op {op!r}")

    async def _stream_snapshots(
        self,
        session: QuerySession,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        start: int,
        include_frame: bool,
    ) -> None:
        """Stream buffered + live snapshots until the session ends."""
        loop = asyncio.get_running_loop()
        subscription = Subscription(session.buffer, start=start)
        while True:
            # A subscriber that disconnects while the session is idle
            # (paused, or between snapshots) would otherwise keep this
            # polling coroutine alive until server shutdown.
            if reader.at_eof() or writer.is_closing():
                return
            seen_dropped = subscription.dropped
            snapshot = await loop.run_in_executor(
                None, subscription.next, _SUBSCRIBE_POLL
            )
            if snapshot is not None:
                writer.write(_encode(snapshot_event(
                    session, snapshot,
                    dropped=subscription.dropped - seen_dropped,
                    include_frame=include_frame,
                )))
                await writer.drain()
                continue
            if subscription.finished:
                writer.write(_encode({
                    "event": "end",
                    "session": session.session_id,
                    "state": session.state.value,
                    "error": (repr(session.error)
                              if session.error is not None else None),
                }))
                await writer.drain()
                return

    # -- foreground mode ----------------------------------------------------------
    async def serve(self) -> None:
        """Start the scheduler and serve until cancelled (CLI mode)."""
        self.service.start()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        try:
            async with server:
                await server.serve_forever()
        finally:
            self.service.stop()

    # -- background-thread mode ---------------------------------------------------
    def start(self) -> "SnapshotServer":
        """Serve on a daemon thread with a private event loop; returns
        once the socket is listening (``self.port`` is then bound)."""
        if self._thread is not None:
            return self
        self.service.start()
        started = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                server = loop.run_until_complete(asyncio.start_server(
                    self._handle_connection, self.host, self.port
                ))
            except BaseException as exc:  # noqa: BLE001 - surfaced to start()
                failure.append(exc)
                started.set()
                loop.close()
                return
            self.port = server.sockets[0].getsockname()[1]
            started.set()
            try:
                loop.run_forever()
            finally:
                server.close()
                loop.run_until_complete(server.wait_closed())
                tasks = asyncio.all_tasks(loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    loop.run_until_complete(asyncio.gather(
                        *tasks, return_exceptions=True
                    ))
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="wake-server", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread = None
            self.service.stop()
            raise failure[0]
        return self

    def stop(self) -> None:
        """Stop the background server and the scheduler thread."""
        loop, thread = self._loop, self._thread
        self._loop = self._thread = None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10)
        self.service.stop()
