"""Load generated TPC-H tables into partitioned catalog storage.

The paper partitions the 100 GB dataset into 512 MB chunks (§8.1); here
partition counts are explicit so experiments control the number of OLA
refinement steps directly (Fig 12 sweeps rows-per-partition).
"""

from __future__ import annotations

import math
import shutil
from pathlib import Path

from repro.errors import StorageError
from repro.dataframe import DataFrame, sort_frame
from repro.storage import Catalog, write_table
from repro.tpch import schema as spec
from repro.tpch.dbgen import TpchTables, generate


def load_tables(
    tables: TpchTables,
    directory: str | Path,
    fact_partitions: int = 16,
    dimension_partitions: int = 2,
    fmt: str = "npz",
    stats: bool = True,
) -> Catalog:
    """Write all tables into ``directory`` and return the catalog.

    ``fact_partitions`` applies to lineitem and orders (the streamed
    tables); ``dimension_partitions`` to the rest (nation/region always
    get a single partition).  ``fmt`` picks the partition format:
    ``npz`` (columnar, the Parquet analogue) or ``csv`` (the paper's
    ``read_csv`` ingestion path).  ``stats`` records per-partition
    zone maps so predicate pushdown can prune partitions at scan time.
    """
    catalog = Catalog(root=str(directory))
    for name, table_spec in spec.TABLES.items():
        frame: DataFrame = tables[name]
        if table_spec.clustering_key:
            frame = sort_frame(frame, list(table_spec.clustering_key))
        if name in ("lineitem", "orders"):
            n_parts = fact_partitions
        elif name in ("nation", "region"):
            n_parts = 1
        else:
            n_parts = dimension_partitions
        rows_per_partition = max(1, math.ceil(frame.n_rows / n_parts))
        write_table(
            catalog,
            Path(directory) / name,
            name,
            frame,
            rows_per_partition=rows_per_partition,
            primary_key=table_spec.primary_key,
            clustering_key=table_spec.clustering_key,
            fmt=fmt,
            stats=stats,
        )
    return catalog


def generate_and_load(
    directory: str | Path,
    scale_factor: float = 0.01,
    seed: int = 42,
    fact_partitions: int = 16,
    dimension_partitions: int = 2,
    fmt: str = "npz",
    stats: bool = True,
) -> tuple[Catalog, TpchTables]:
    """One-call dbgen + load; returns (catalog, in-memory tables)."""
    tables = generate(scale_factor, seed=seed)
    catalog = load_tables(
        tables, directory,
        fact_partitions=fact_partitions,
        dimension_partitions=dimension_partitions,
        fmt=fmt,
        stats=stats,
    )
    catalog.save(Path(directory) / "catalog.json")
    return catalog, tables


def load_or_generate(
    cache_root: str | Path,
    scale_factor: float = 0.01,
    seed: int = 42,
    fact_partitions: int = 16,
    dimension_partitions: int = 2,
    fmt: str = "npz",
) -> tuple[Catalog, TpchTables]:
    """Like :func:`generate_and_load`, but reuses an on-disk dataset.

    The partitioned tables live under a parameter-keyed subdirectory of
    ``cache_root``; when a valid catalog (every partition file present)
    already exists there, only the in-memory reference tables are
    regenerated and the partition write is skipped.  CI points
    ``REPRO_TPCH_CACHE_DIR`` here and caches the directory across runs,
    so the slow suite stops rewriting dbgen output on every run.
    """
    directory = Path(cache_root) / (
        f"sf{scale_factor:g}_seed{seed}_f{fact_partitions}"
        f"_d{dimension_partitions}_{fmt}"
    )
    path = directory / "catalog.json"
    tables = generate(scale_factor, seed=seed)
    if path.exists():
        try:
            catalog = Catalog.load(path)
        except StorageError:
            catalog = None
        if catalog is not None and all(
            Path(f).exists()
            for meta in catalog.tables.values()
            for f in meta.files
        ):
            return catalog, tables
    # Stale or partial cache (e.g. restored to a different absolute
    # path): rebuild from scratch.
    shutil.rmtree(directory, ignore_errors=True)
    catalog = load_tables(
        tables, directory,
        fact_partitions=fact_partitions,
        dimension_partitions=dimension_partitions,
        fmt=fmt,
    )
    catalog.save(path)
    return catalog, tables
