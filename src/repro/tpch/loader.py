"""Load generated TPC-H tables into partitioned catalog storage.

The paper partitions the 100 GB dataset into 512 MB chunks (§8.1); here
partition counts are explicit so experiments control the number of OLA
refinement steps directly (Fig 12 sweeps rows-per-partition).
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.dataframe import DataFrame, sort_frame
from repro.storage import Catalog, write_table
from repro.tpch import schema as spec
from repro.tpch.dbgen import TpchTables, generate


def load_tables(
    tables: TpchTables,
    directory: str | Path,
    fact_partitions: int = 16,
    dimension_partitions: int = 2,
    fmt: str = "npz",
) -> Catalog:
    """Write all tables into ``directory`` and return the catalog.

    ``fact_partitions`` applies to lineitem and orders (the streamed
    tables); ``dimension_partitions`` to the rest (nation/region always
    get a single partition).  ``fmt`` picks the partition format:
    ``npz`` (columnar, the Parquet analogue) or ``csv`` (the paper's
    ``read_csv`` ingestion path).
    """
    catalog = Catalog(root=str(directory))
    for name, table_spec in spec.TABLES.items():
        frame: DataFrame = tables[name]
        if table_spec.clustering_key:
            frame = sort_frame(frame, list(table_spec.clustering_key))
        if name in ("lineitem", "orders"):
            n_parts = fact_partitions
        elif name in ("nation", "region"):
            n_parts = 1
        else:
            n_parts = dimension_partitions
        rows_per_partition = max(1, math.ceil(frame.n_rows / n_parts))
        write_table(
            catalog,
            Path(directory) / name,
            name,
            frame,
            rows_per_partition=rows_per_partition,
            primary_key=table_spec.primary_key,
            clustering_key=table_spec.clustering_key,
            fmt=fmt,
        )
    return catalog


def generate_and_load(
    directory: str | Path,
    scale_factor: float = 0.01,
    seed: int = 42,
    fact_partitions: int = 16,
    dimension_partitions: int = 2,
    fmt: str = "npz",
) -> tuple[Catalog, TpchTables]:
    """One-call dbgen + load; returns (catalog, in-memory tables)."""
    tables = generate(scale_factor, seed=seed)
    catalog = load_tables(
        tables, directory,
        fact_partitions=fact_partitions,
        dimension_partitions=dimension_partitions,
        fmt=fmt,
    )
    catalog.save(Path(directory) / "catalog.json")
    return catalog, tables
