"""TPC-H Q1: pricing summary report.

Category "mape" (§8.3): group-by on low-cardinality non-clustered keys
(returnflag × linestatus) — estimates converge, recall hits 100% early.
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    date,
    group_aggregate,
    lit,
    sort_frame,
)
from repro.tpch.queries._helpers import add, mask

NAME = "q01"
CATEGORY = "mape"
DEFAULTS = {"delta_days": 90}

_AGGS = [
    ("sum", "l_quantity", "sum_qty"),
    ("sum", "l_extendedprice", "sum_base_price"),
    ("sum", "disc_price", "sum_disc_price"),
    ("sum", "charge", "sum_charge"),
    ("avg", "l_quantity", "avg_qty"),
    ("avg", "l_extendedprice", "avg_price"),
    ("avg", "l_discount", "avg_disc"),
    ("count", None, "count_order"),
]


def _disc_price():
    return col("l_extendedprice") * (lit(1.0) - col("l_discount"))


def _charge():
    return _disc_price() * (lit(1.0) + col("l_tax"))


def build(ctx, delta_days):
    cutoff = date("1998-12-01") - delta_days
    li = ctx.table("lineitem").filter(col("l_shipdate") <= cutoff)
    enriched = li.select(
        l_returnflag="l_returnflag",
        l_linestatus="l_linestatus",
        l_quantity="l_quantity",
        l_extendedprice="l_extendedprice",
        l_discount="l_discount",
        disc_price=_disc_price(),
        charge=_charge(),
    )
    from repro.api.functions import AggExpr

    aggs = [AggExpr(fn, column, alias) for fn, column, alias in _AGGS]
    out = enriched.agg(*aggs, by=["l_returnflag", "l_linestatus"])
    return out.sort(["l_returnflag", "l_linestatus"])


def reference(tables, delta_days):
    cutoff = date("1998-12-01") - delta_days
    li = mask(tables["lineitem"], col("l_shipdate") <= cutoff)
    li = add(li, "disc_price", _disc_price())
    li = add(li, "charge", _charge())
    out = group_aggregate(
        li,
        ["l_returnflag", "l_linestatus"],
        [AggSpec(fn, column, alias) for fn, column, alias in _AGGS],
    )
    return sort_frame(out, ["l_returnflag", "l_linestatus"])
