"""TPC-H Q6: revenue-change forecast (single-table global aggregate).

Category "mape".  One of the two queries supported by ProgressiveDB
(Fig 9a) and the pipeline-timeline example (Fig 13).
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    add_years,
    col,
    date,
    global_aggregate,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask

NAME = "q06"
CATEGORY = "mape"
DEFAULTS = {"start": "1994-01-01", "years": 1, "discount": 0.06,
            "quantity": 24}


def _predicate(lo, hi, discount, quantity):
    return (
        col("l_shipdate").between(lo, hi)
        & (col("l_discount") >= discount - 0.01001)
        & (col("l_discount") <= discount + 0.01001)
        & (col("l_quantity") < quantity)
    )


def build(ctx, start, years, discount, quantity):
    lo = date(start)
    hi = add_years(lo, years)
    li = ctx.table("lineitem").filter(
        _predicate(lo, hi, discount, quantity)
    )
    enriched = li.select(gain=col("l_extendedprice") * col("l_discount"))
    return enriched.agg(F.sum("gain").alias("revenue"))


def reference(tables, start, years, discount, quantity):
    lo = date(start)
    hi = add_years(lo, years)
    li = mask(tables["lineitem"], _predicate(lo, hi, discount, quantity))
    li = add(li, "gain", col("l_extendedprice") * col("l_discount"))
    return global_aggregate(li, [AggSpec("sum", "gain", "revenue")])
