"""TPC-H Q3: shipping priority.

Category "recall": the final group-by contains the clustering key
(l_orderkey), so aggregate values are exact while recall grows (§8.3
category 2).
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    date,
    group_aggregate,
    hash_join,
    top_k,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask, revenue_expr

NAME = "q03"
CATEGORY = "recall"
DEFAULTS = {"segment": "BUILDING", "cutoff": "1995-03-15", "limit": 10}

_KEYS = ["l_orderkey", "o_orderdate", "o_shippriority"]


def build(ctx, segment, cutoff, limit):
    cut = date(cutoff)
    cust = ctx.table("customer").filter(col("c_mktsegment") == segment)
    orders_f = ctx.table("orders").filter(col("o_orderdate") < cut)
    oc = orders_f.join(cust, on=[("o_custkey", "c_custkey")])
    li = ctx.table("lineitem").filter(col("l_shipdate") > cut)
    lo = li.join(oc, on=[("l_orderkey", "o_orderkey")])
    enriched = lo.select(
        l_orderkey="l_orderkey",
        o_orderdate="o_orderdate",
        o_shippriority="o_shippriority",
        rev=revenue_expr(),
    )
    out = enriched.agg(F.sum("rev").alias("revenue"), by=_KEYS)
    return out.top_k(["revenue", "o_orderdate", "l_orderkey"], limit,
                     desc=[True, False, False])


def reference(tables, segment, cutoff, limit):
    cut = date(cutoff)
    cust = mask(tables["customer"], col("c_mktsegment") == segment)
    orders_f = mask(tables["orders"], col("o_orderdate") < cut)
    oc = hash_join(orders_f, cust, ["o_custkey"], ["c_custkey"])
    li = mask(tables["lineitem"], col("l_shipdate") > cut)
    lo = hash_join(li, oc, ["l_orderkey"], ["o_orderkey"])
    lo = add(lo, "rev", revenue_expr())
    out = group_aggregate(lo, _KEYS, [AggSpec("sum", "rev", "revenue")])
    return top_k(out, ["revenue", "o_orderdate", "l_orderkey"], limit,
                 ascending=[False, True, True])
