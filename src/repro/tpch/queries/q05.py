"""TPC-H Q5: local supplier volume.  Category "mape"."""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    add_years,
    col,
    date,
    group_aggregate,
    hash_join,
    sort_frame,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask, revenue_expr

NAME = "q05"
CATEGORY = "mape"
DEFAULTS = {"region": "ASIA", "start": "1994-01-01", "years": 1}


def build(ctx, region, start, years):
    lo = date(start)
    hi = add_years(lo, years)
    region_f = ctx.table("region").filter(col("r_name") == region)
    nations = ctx.table("nation").join(
        region_f, on=[("n_regionkey", "r_regionkey")]
    )
    supp = ctx.table("supplier").join(
        nations, on=[("s_nationkey", "n_nationkey")]
    )
    orders_f = ctx.table("orders").filter(
        col("o_orderdate").between(lo, hi)
    )
    oc = orders_f.join(ctx.table("customer"),
                       on=[("o_custkey", "c_custkey")])
    lo_join = ctx.table("lineitem").join(
        oc, on=[("l_orderkey", "o_orderkey")]
    )
    full = lo_join.join(supp, on=[("l_suppkey", "s_suppkey")]).filter(
        col("c_nationkey") == col("s_nationkey")
    )
    enriched = full.select(n_name="n_name", rev=revenue_expr())
    out = enriched.agg(F.sum("rev").alias("revenue"), by=["n_name"])
    return out.sort("revenue", desc=True)


def reference(tables, region, start, years):
    lo = date(start)
    hi = add_years(lo, years)
    region_f = mask(tables["region"], col("r_name") == region)
    nations = hash_join(tables["nation"], region_f, ["n_regionkey"],
                        ["r_regionkey"])
    supp = hash_join(tables["supplier"], nations, ["s_nationkey"],
                     ["n_nationkey"])
    orders_f = mask(tables["orders"], col("o_orderdate").between(lo, hi))
    oc = hash_join(orders_f, tables["customer"], ["o_custkey"],
                   ["c_custkey"])
    lo_join = hash_join(tables["lineitem"], oc, ["l_orderkey"],
                        ["o_orderkey"])
    full = hash_join(lo_join, supp, ["l_suppkey"], ["s_suppkey"])
    full = mask(full, col("c_nationkey") == col("s_nationkey"))
    full = add(full, "rev", revenue_expr())
    out = group_aggregate(full, ["n_name"],
                          [AggSpec("sum", "rev", "revenue")])
    return sort_frame(out, ["revenue"], ascending=False)
