"""TPC-H Q16: parts/supplier relationship (count-distinct over an anti
join).  Category "mape".
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    group_aggregate,
    hash_join,
    sort_frame,
)
from repro.api import F
from repro.tpch.queries._helpers import mask

NAME = "q16"
CATEGORY = "mape"
DEFAULTS = {
    "brand": "Brand#45",
    "type_prefix": "MEDIUM POLISHED",
    "sizes": (49, 14, 23, 45, 19, 3, 36, 9),
}

_KEYS = ["p_brand", "p_type", "p_size"]


def _part_filter(brand, type_prefix, sizes):
    return (
        (col("p_brand") != brand)
        & ~col("p_type").startswith(type_prefix)
        & col("p_size").isin(list(sizes))
    )


def _complaint_filter():
    return (col("s_comment").contains("Customer")
            & col("s_comment").contains("Complaints"))


def build(ctx, brand, type_prefix, sizes):
    part_f = ctx.table("part").filter(
        _part_filter(brand, type_prefix, sizes)
    )
    ps = ctx.table("partsupp").join(
        part_f, on=[("ps_partkey", "p_partkey")]
    )
    bad_supp = ctx.table("supplier").filter(
        _complaint_filter()
    ).project("s_suppkey")
    good = ps.join(bad_supp, on=[("ps_suppkey", "s_suppkey")],
                   how="anti")
    out = good.agg(
        F.count_distinct("ps_suppkey").alias("supplier_cnt"), by=_KEYS
    )
    return out.sort(["supplier_cnt", *_KEYS],
                    desc=[True, False, False, False])


def reference(tables, brand, type_prefix, sizes):
    part_f = mask(tables["part"], _part_filter(brand, type_prefix, sizes))
    ps = hash_join(tables["partsupp"], part_f, ["ps_partkey"],
                   ["p_partkey"])
    bad_supp = mask(tables["supplier"], _complaint_filter())
    good = hash_join(ps, bad_supp.select(["s_suppkey"]), ["ps_suppkey"],
                     ["s_suppkey"], how="anti")
    out = group_aggregate(
        good, _KEYS,
        [AggSpec("count_distinct", "ps_suppkey", "supplier_cnt")],
    )
    return sort_frame(out, ["supplier_cnt", *_KEYS],
                      ascending=[False, True, True, True])
