"""TPC-H Q9: product-type profit measure.  Category "mape"."""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    group_aggregate,
    hash_join,
    sort_frame,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask, revenue_expr

NAME = "q09"
CATEGORY = "mape"
DEFAULTS = {"color": "green"}

_KEYS = ["nation", "o_year"]


def _amount():
    return revenue_expr() - col("ps_supplycost") * col("l_quantity")


def build(ctx, color):
    part_f = ctx.table("part").filter(
        col("p_name").contains(color)
    ).project("p_partkey")
    li = ctx.table("lineitem").join(
        part_f, on=[("l_partkey", "p_partkey")], how="semi"
    )
    lps = li.join(
        ctx.table("partsupp"),
        on=[("l_partkey", "ps_partkey"), ("l_suppkey", "ps_suppkey")],
    )
    lo = lps.join(ctx.table("orders"),
                  on=[("l_orderkey", "o_orderkey")])
    supp_n = (
        ctx.table("supplier")
        .join(ctx.table("nation"), on=[("s_nationkey", "n_nationkey")])
        .select(s_suppkey="s_suppkey", nation="n_name")
    )
    full = lo.join(supp_n, on=[("l_suppkey", "s_suppkey")])
    enriched = full.select(
        nation="nation",
        o_year=col("o_orderdate").year(),
        amount=_amount(),
    )
    out = enriched.agg(F.sum("amount").alias("sum_profit"), by=_KEYS)
    return out.sort(["nation", "o_year"], desc=[False, True])


def reference(tables, color):
    part_f = mask(tables["part"], col("p_name").contains(color))
    li = hash_join(tables["lineitem"], part_f.select(["p_partkey"]),
                   ["l_partkey"], ["p_partkey"], how="semi")
    lps = hash_join(li, tables["partsupp"],
                    ["l_partkey", "l_suppkey"],
                    ["ps_partkey", "ps_suppkey"])
    lo = hash_join(lps, tables["orders"], ["l_orderkey"], ["o_orderkey"])
    supp_n = hash_join(tables["supplier"], tables["nation"],
                       ["s_nationkey"], ["n_nationkey"])
    supp_n = supp_n.rename({"n_name": "nation"})
    full = hash_join(lo, supp_n, ["l_suppkey"], ["s_suppkey"])
    full = add(full, "o_year", col("o_orderdate").year())
    full = add(full, "amount", _amount())
    out = group_aggregate(full, _KEYS,
                          [AggSpec("sum", "amount", "sum_profit")])
    return sort_frame(out, ["nation", "o_year"], ascending=[True, False])
