"""TPC-H Q7: volume shipping between two nations.  Category "mape"."""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    date,
    group_aggregate,
    hash_join,
    sort_frame,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask, revenue_expr

NAME = "q07"
CATEGORY = "mape"
DEFAULTS = {"nation_a": "FRANCE", "nation_b": "GERMANY",
            "ship_lo": "1995-01-01", "ship_hi": "1996-12-31"}

_KEYS = ["supp_nation", "cust_nation", "l_year"]


def _pair_filter(nation_a, nation_b):
    return (
        (col("supp_nation") == nation_a) & (col("cust_nation") == nation_b)
    ) | (
        (col("supp_nation") == nation_b) & (col("cust_nation") == nation_a)
    )


def build(ctx, nation_a, nation_b, ship_lo, ship_hi):
    pair = [nation_a, nation_b]
    n1 = ctx.table("nation").filter(col("n_name").isin(pair))
    supp = (
        ctx.table("supplier")
        .join(n1, on=[("s_nationkey", "n_nationkey")])
        .select(s_suppkey="s_suppkey", supp_nation="n_name")
    )
    n2 = ctx.table("nation", source_name="nation2").filter(
        col("n_name").isin(pair)
    )
    cust = (
        ctx.table("customer")
        .join(n2, on=[("c_nationkey", "n_nationkey")])
        .select(c_custkey="c_custkey", cust_nation="n_name")
    )
    orders_c = ctx.table("orders").join(
        cust, on=[("o_custkey", "c_custkey")]
    )
    li = ctx.table("lineitem").filter(
        (col("l_shipdate") >= date(ship_lo))
        & (col("l_shipdate") <= date(ship_hi))
    )
    lo = li.join(orders_c, on=[("l_orderkey", "o_orderkey")])
    full = lo.join(supp, on=[("l_suppkey", "s_suppkey")]).filter(
        _pair_filter(nation_a, nation_b)
    )
    enriched = full.select(
        supp_nation="supp_nation",
        cust_nation="cust_nation",
        l_year=col("l_shipdate").year(),
        volume=revenue_expr(),
    )
    out = enriched.agg(F.sum("volume").alias("revenue"), by=_KEYS)
    return out.sort(_KEYS)


def reference(tables, nation_a, nation_b, ship_lo, ship_hi):
    pair = [nation_a, nation_b]
    n1 = mask(tables["nation"], col("n_name").isin(pair))
    supp = hash_join(tables["supplier"], n1, ["s_nationkey"],
                     ["n_nationkey"])
    supp = supp.rename({"n_name": "supp_nation"})
    cust = hash_join(tables["customer"], n1, ["c_nationkey"],
                     ["n_nationkey"])
    cust = cust.rename({"n_name": "cust_nation"})
    orders_c = hash_join(tables["orders"], cust, ["o_custkey"],
                         ["c_custkey"])
    li = mask(
        tables["lineitem"],
        (col("l_shipdate") >= date(ship_lo))
        & (col("l_shipdate") <= date(ship_hi)),
    )
    lo = hash_join(li, orders_c, ["l_orderkey"], ["o_orderkey"])
    full = hash_join(lo, supp, ["l_suppkey"], ["s_suppkey"])
    full = mask(full, _pair_filter(nation_a, nation_b))
    full = add(full, "l_year", col("l_shipdate").year())
    full = add(full, "volume", revenue_expr())
    out = group_aggregate(full, _KEYS,
                          [AggSpec("sum", "volume", "revenue")])
    return sort_frame(out, _KEYS)
