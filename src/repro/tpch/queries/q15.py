"""TPC-H Q15: top supplier (argmax against a derived view).

Category "mixed": §8.3 notes Q15's on-off recall/precision, caused by the
running argmax flipping between suppliers while estimates evolve — this
plan reproduces that artifact via the live cross join of the revenue view
with its own running maximum.
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    add_months,
    col,
    date,
    global_aggregate,
    group_aggregate,
    hash_join,
    sort_frame,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask, revenue_expr

NAME = "q15"
CATEGORY = "mixed"
DEFAULTS = {"start": "1996-01-01", "months": 3}

_OUT = ["s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"]


def build(ctx, start, months):
    lo = date(start)
    hi = add_months(lo, months)
    li = ctx.table("lineitem").filter(
        col("l_shipdate").between(lo, hi)
    ).select(l_suppkey="l_suppkey", rev=revenue_expr())
    view = li.agg(F.sum("rev").alias("total_revenue"),
                  by=["l_suppkey"])
    best = view.agg(F.max("total_revenue").alias("max_revenue"))
    top = view.cross_join(best).filter(
        col("total_revenue") == col("max_revenue")
    )
    named = top.join(ctx.table("supplier"),
                     on=[("l_suppkey", "s_suppkey")])
    out = named.select(
        s_suppkey="l_suppkey",
        s_name="s_name",
        s_address="s_address",
        s_phone="s_phone",
        total_revenue="total_revenue",
    )
    return out.sort("s_suppkey")


def reference(tables, start, months):
    lo = date(start)
    hi = add_months(lo, months)
    li = mask(tables["lineitem"], col("l_shipdate").between(lo, hi))
    li = add(li, "rev", revenue_expr())
    view = group_aggregate(li, ["l_suppkey"],
                           [AggSpec("sum", "rev", "total_revenue")])
    best = global_aggregate(
        view, [AggSpec("max", "total_revenue", "max_revenue")]
    )
    top = mask(view,
               col("total_revenue") == best.column("max_revenue")[0])
    named = hash_join(top, tables["supplier"], ["l_suppkey"],
                      ["s_suppkey"])
    named = named.rename({"l_suppkey": "s_suppkey"})
    return sort_frame(named.select(_OUT), ["s_suppkey"])
