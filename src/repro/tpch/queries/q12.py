"""TPC-H Q12: shipping-mode / order-priority.  Category "mape"."""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    add_years,
    col,
    date,
    group_aggregate,
    hash_join,
    lit,
    sort_frame,
    when,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask

NAME = "q12"
CATEGORY = "mape"
DEFAULTS = {"modes": ("MAIL", "SHIP"), "start": "1994-01-01", "years": 1}

_HIGH = ("1-URGENT", "2-HIGH")


def _line_filter(modes, lo, hi):
    return (
        col("l_shipmode").isin(list(modes))
        & (col("l_commitdate") < col("l_receiptdate"))
        & (col("l_shipdate") < col("l_commitdate"))
        & col("l_receiptdate").between(lo, hi)
    )


def build(ctx, modes, start, years):
    lo = date(start)
    hi = add_years(lo, years)
    li = ctx.table("lineitem").filter(_line_filter(modes, lo, hi))
    joined = li.join(ctx.table("orders"),
                     on=[("l_orderkey", "o_orderkey")])
    enriched = joined.select(
        l_shipmode="l_shipmode",
        high=when(col("o_orderpriority").isin(list(_HIGH)), lit(1.0),
                  lit(0.0)),
        low=when(col("o_orderpriority").isin(list(_HIGH)), lit(0.0),
                 lit(1.0)),
    )
    out = enriched.agg(
        F.sum("high").alias("high_line_count"),
        F.sum("low").alias("low_line_count"),
        by=["l_shipmode"],
    )
    return out.sort("l_shipmode")


def reference(tables, modes, start, years):
    lo = date(start)
    hi = add_years(lo, years)
    li = mask(tables["lineitem"], _line_filter(modes, lo, hi))
    joined = hash_join(li, tables["orders"], ["l_orderkey"],
                       ["o_orderkey"])
    joined = add(
        joined, "high",
        when(col("o_orderpriority").isin(list(_HIGH)), lit(1.0),
             lit(0.0)),
    )
    joined = add(
        joined, "low",
        when(col("o_orderpriority").isin(list(_HIGH)), lit(0.0),
             lit(1.0)),
    )
    out = group_aggregate(
        joined, ["l_shipmode"],
        [AggSpec("sum", "high", "high_line_count"),
         AggSpec("sum", "low", "low_line_count")],
    )
    return sort_frame(out, ["l_shipmode"])
