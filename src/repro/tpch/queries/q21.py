"""TPC-H Q21: suppliers who kept orders waiting (EXISTS / NOT EXISTS
decorrelated through per-order distinct-supplier counts).

Category "mixed": Fig 8's right panel uses Q21 — recall rises quickly but
MAPE drops slowly because the group-by key (s_name) is diverse.
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    group_aggregate,
    hash_join,
    top_k,
)
from repro.api import F
from repro.tpch.queries._helpers import mask

NAME = "q21"
CATEGORY = "mixed"
DEFAULTS = {"nation": "SAUDI ARABIA", "limit": 100}


def build(ctx, nation, limit):
    lineitem = ctx.table("lineitem")
    late = lineitem.filter(
        col("l_receiptdate") > col("l_commitdate")
    )
    nsupp = lineitem.agg(
        F.count_distinct("l_suppkey").alias("nsupp"), by=["l_orderkey"]
    )
    nlate = late.agg(
        F.count_distinct("l_suppkey").alias("nlate"), by=["l_orderkey"]
    )
    enriched = late.join(
        nsupp, on=[("l_orderkey", "l_orderkey")], suffix="_ns"
    ).join(
        nlate, on=[("l_orderkey", "l_orderkey")], suffix="_nl"
    ).filter((col("nsupp") >= 2) & (col("nlate") == 1))
    orders_f = ctx.table("orders").filter(col("o_orderstatus") == "F")
    with_orders = enriched.join(
        orders_f, on=[("l_orderkey", "o_orderkey")]
    )
    nation_f = ctx.table("nation").filter(col("n_name") == nation)
    supp = ctx.table("supplier").join(
        nation_f, on=[("s_nationkey", "n_nationkey")]
    )
    named = with_orders.join(supp, on=[("l_suppkey", "s_suppkey")])
    out = named.agg(F.count().alias("numwait"), by=["s_name"])
    return out.top_k(["numwait", "s_name"], limit, desc=[True, False])


def reference(tables, nation, limit):
    lineitem = tables["lineitem"]
    late = mask(lineitem, col("l_receiptdate") > col("l_commitdate"))
    nsupp = group_aggregate(
        lineitem, ["l_orderkey"],
        [AggSpec("count_distinct", "l_suppkey", "nsupp")],
    )
    nlate = group_aggregate(
        late, ["l_orderkey"],
        [AggSpec("count_distinct", "l_suppkey", "nlate")],
    )
    enriched = hash_join(late, nsupp, ["l_orderkey"], ["l_orderkey"],
                         suffix="_ns")
    enriched = hash_join(enriched, nlate, ["l_orderkey"],
                         ["l_orderkey"], suffix="_nl")
    enriched = mask(enriched, (col("nsupp") >= 2) & (col("nlate") == 1))
    orders_f = mask(tables["orders"], col("o_orderstatus") == "F")
    with_orders = hash_join(enriched, orders_f, ["l_orderkey"],
                            ["o_orderkey"])
    nation_f = mask(tables["nation"], col("n_name") == nation)
    supp = hash_join(tables["supplier"], nation_f, ["s_nationkey"],
                     ["n_nationkey"])
    named = hash_join(with_orders, supp, ["l_suppkey"], ["s_suppkey"])
    out = group_aggregate(named, ["s_name"],
                          [AggSpec("count", None, "numwait")])
    return top_k(out, ["numwait", "s_name"], limit,
                 ascending=[False, True])
