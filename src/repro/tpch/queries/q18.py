"""TPC-H Q18: large-volume customers — the paper's motivating session
(§1, Fig 6) verbatim: sum per order (local agg on the clustering key),
filter on the now-constant total, merge join orders, hash join customer,
re-aggregate, top-k.

Category "recall": values exact, recall grows linearly (§8.3, Fig 8
middle panel).
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    group_aggregate,
    hash_join,
    top_k,
)
from repro.api import F
from repro.tpch.queries._helpers import mask

NAME = "q18"
CATEGORY = "recall"
DEFAULTS = {"threshold": 300, "limit": 100}

_KEYS = ["c_name", "c_custkey", "l_orderkey", "o_orderdate",
         "o_totalprice"]


def build(ctx, threshold, limit):
    order_qty = ctx.table("lineitem").agg(
        F.sum("l_quantity").alias("order_qty"), by=["l_orderkey"]
    )
    lg_orders = order_qty.filter(col("order_qty") > threshold)
    with_orders = lg_orders.join(
        ctx.table("orders"), on=[("l_orderkey", "o_orderkey")]
    )
    with_cust = with_orders.join(
        ctx.table("customer"), on=[("o_custkey", "c_custkey")]
    ).select(
        c_name="c_name",
        c_custkey="o_custkey",  # join key survives on the probe side
        l_orderkey="l_orderkey",
        o_orderdate="o_orderdate",
        o_totalprice="o_totalprice",
        order_qty="order_qty",
    )
    out = with_cust.agg(F.sum("order_qty").alias("total_qty"),
                        by=_KEYS)
    return out.top_k(["o_totalprice", "o_orderdate", "l_orderkey"],
                     limit, desc=[True, False, False])


def reference(tables, threshold, limit):
    order_qty = group_aggregate(
        tables["lineitem"], ["l_orderkey"],
        [AggSpec("sum", "l_quantity", "order_qty")],
    )
    lg_orders = mask(order_qty, col("order_qty") > threshold)
    with_orders = hash_join(lg_orders, tables["orders"], ["l_orderkey"],
                            ["o_orderkey"])
    with_cust = hash_join(with_orders, tables["customer"],
                          ["o_custkey"], ["c_custkey"])
    with_cust = with_cust.with_column(
        "c_custkey", with_cust.column("o_custkey")
    )
    out = group_aggregate(with_cust, _KEYS,
                          [AggSpec("sum", "order_qty", "total_qty")])
    return top_k(out, ["o_totalprice", "o_orderdate", "l_orderkey"],
                 limit, ascending=[False, True, True])
