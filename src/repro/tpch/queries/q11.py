"""TPC-H Q11: important stock identification.

Deep OLA case: a grouped aggregate compared against a *scalar* global
aggregate of the same stream (HAVING sum > fraction × total), kept
OLA-interactive by a live cross join.  Category "mixed".

``fraction`` defaults to 0.01 rather than the spec's 0.0001/SF (which
degenerates at laptop scale factors).
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    global_aggregate,
    group_aggregate,
    hash_join,
    sort_frame,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask

NAME = "q11"
CATEGORY = "mixed"
DEFAULTS = {"nation": "GERMANY", "fraction": 0.01}


def build(ctx, nation, fraction):
    nation_f = ctx.table("nation").filter(col("n_name") == nation)
    supp = ctx.table("supplier").join(
        nation_f, on=[("s_nationkey", "n_nationkey")]
    ).project("s_suppkey")
    ps = ctx.table("partsupp").join(
        supp, on=[("ps_suppkey", "s_suppkey")], how="semi"
    )
    val = ps.select(
        ps_partkey="ps_partkey",
        part_value=col("ps_supplycost") * col("ps_availqty"),
    )
    by_part = val.agg(F.sum("part_value").alias("value"),
                      by=["ps_partkey"])
    total = val.agg(F.sum("part_value").alias("total"))
    out = (
        by_part.cross_join(total)
        .filter(col("value") > col("total") * fraction)
        .project("ps_partkey", "value")
    )
    return out.sort(["value", "ps_partkey"], desc=[True, False])


def reference(tables, nation, fraction):
    nation_f = mask(tables["nation"], col("n_name") == nation)
    supp = hash_join(tables["supplier"], nation_f, ["s_nationkey"],
                     ["n_nationkey"])
    ps = hash_join(tables["partsupp"], supp.select(["s_suppkey"]),
                   ["ps_suppkey"], ["s_suppkey"], how="semi")
    ps = add(ps, "part_value",
             col("ps_supplycost") * col("ps_availqty"))
    by_part = group_aggregate(ps, ["ps_partkey"],
                              [AggSpec("sum", "part_value", "value")])
    total = global_aggregate(ps, [AggSpec("sum", "part_value", "total")])
    threshold = total.column("total")[0] * fraction
    out = mask(by_part, col("value") > threshold)
    return sort_frame(out.select(["ps_partkey", "value"]),
                      ["value", "ps_partkey"], ascending=[False, True])
