"""TPC-H Q10: returned-item reporting.

Category "mixed" (§8.3): high-cardinality non-clustered group-by
(c_custkey) — recall rises quickly but per-group samples are small, so
MAPE drops slowly.
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    add_months,
    col,
    date,
    group_aggregate,
    hash_join,
    top_k,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask, revenue_expr

NAME = "q10"
CATEGORY = "mixed"
DEFAULTS = {"start": "1993-10-01", "months": 3, "limit": 20}

_KEYS = ["c_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
         "c_address", "c_comment"]


def build(ctx, start, months, limit):
    lo_date = date(start)
    hi_date = add_months(lo_date, months)
    orders_f = ctx.table("orders").filter(
        col("o_orderdate").between(lo_date, hi_date)
    )
    cust_n = ctx.table("customer").join(
        ctx.table("nation"), on=[("c_nationkey", "n_nationkey")]
    )
    oc = orders_f.join(cust_n, on=[("o_custkey", "c_custkey")])
    li = ctx.table("lineitem").filter(col("l_returnflag") == "R")
    lo = li.join(oc, on=[("l_orderkey", "o_orderkey")])
    names = {k: k for k in _KEYS}
    names["c_custkey"] = "o_custkey"  # join key survives on probe side
    enriched = lo.select(**names, rev=revenue_expr())
    out = enriched.agg(F.sum("rev").alias("revenue"), by=_KEYS)
    return out.top_k(["revenue", "c_custkey"], limit,
                     desc=[True, False])


def reference(tables, start, months, limit):
    lo_date = date(start)
    hi_date = add_months(lo_date, months)
    orders_f = mask(tables["orders"],
                    col("o_orderdate").between(lo_date, hi_date))
    cust_n = hash_join(tables["customer"], tables["nation"],
                       ["c_nationkey"], ["n_nationkey"])
    oc = hash_join(orders_f, cust_n, ["o_custkey"], ["c_custkey"])
    li = mask(tables["lineitem"], col("l_returnflag") == "R")
    lo = hash_join(li, oc, ["l_orderkey"], ["o_orderkey"])
    lo = lo.with_column("c_custkey", lo.column("o_custkey"))
    lo = add(lo, "rev", revenue_expr())
    out = group_aggregate(lo, _KEYS, [AggSpec("sum", "rev", "revenue")])
    return top_k(out, ["revenue", "c_custkey"], limit,
                 ascending=[False, True])
