"""TPC-H Q14: promotion effect (ratio of two global sums).

Category "mape".  The query of the §8.5 confidence-interval experiment
(Fig 10): a weighted average over a join of two tables with filters.
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    add_months,
    col,
    date,
    global_aggregate,
    hash_join,
    lit,
    when,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask, revenue_expr

NAME = "q14"
CATEGORY = "mape"
DEFAULTS = {"start": "1995-09-01", "months": 1}


def build(ctx, start, months):
    lo = date(start)
    hi = add_months(lo, months)
    li = ctx.table("lineitem").filter(
        col("l_shipdate").between(lo, hi)
    )
    lp = li.join(ctx.table("part"), on=[("l_partkey", "p_partkey")])
    enriched = lp.select(
        promo=when(col("p_type").startswith("PROMO"), revenue_expr(),
                   lit(0.0)),
        rev=revenue_expr(),
    )
    sums = enriched.agg(
        F.sum("promo").alias("promo_sum"),
        F.sum("rev").alias("rev_sum"),
    )
    return sums.select(
        promo_revenue=lit(100.0) * col("promo_sum") / col("rev_sum")
    )


def reference(tables, start, months):
    lo = date(start)
    hi = add_months(lo, months)
    li = mask(tables["lineitem"], col("l_shipdate").between(lo, hi))
    lp = hash_join(li, tables["part"], ["l_partkey"], ["p_partkey"])
    lp = add(lp, "promo",
             when(col("p_type").startswith("PROMO"), revenue_expr(),
                  lit(0.0)))
    lp = add(lp, "rev", revenue_expr())
    sums = global_aggregate(
        lp,
        [AggSpec("sum", "promo", "promo_sum"),
         AggSpec("sum", "rev", "rev_sum")],
    )
    return add(
        sums, "promo_revenue",
        lit(100.0) * col("promo_sum") / col("rev_sum"),
    ).select(["promo_revenue"])
