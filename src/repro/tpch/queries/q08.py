"""TPC-H Q8: national market share (aggregation-over-aggregation via the
ratio select).  Category "mape" — Fig 8's left panel uses this query.
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    date,
    group_aggregate,
    hash_join,
    lit,
    sort_frame,
    when,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask, revenue_expr

NAME = "q08"
CATEGORY = "mape"
DEFAULTS = {"nation": "BRAZIL", "region": "AMERICA",
            "p_type": "ECONOMY ANODIZED STEEL",
            "date_lo": "1995-01-01", "date_hi": "1996-12-31"}


def build(ctx, nation, region, p_type, date_lo, date_hi):
    part_f = ctx.table("part").filter(col("p_type") == p_type)
    li = ctx.table("lineitem").join(
        part_f, on=[("l_partkey", "p_partkey")]
    )
    orders_f = ctx.table("orders").filter(
        (col("o_orderdate") >= date(date_lo))
        & (col("o_orderdate") <= date(date_hi))
    )
    lo = li.join(orders_f, on=[("l_orderkey", "o_orderkey")])
    region_f = ctx.table("region").filter(col("r_name") == region)
    nations_am = ctx.table("nation").join(
        region_f, on=[("n_regionkey", "r_regionkey")]
    )
    cust_am = (
        ctx.table("customer")
        .join(nations_am, on=[("c_nationkey", "n_nationkey")])
        .project("c_custkey")
    )
    lco = lo.join(cust_am, on=[("o_custkey", "c_custkey")], how="semi")
    supp_n = (
        ctx.table("supplier")
        .join(ctx.table("nation", source_name="nation2"),
              on=[("s_nationkey", "n_nationkey")])
        .select(s_suppkey="s_suppkey", supp_nation="n_name")
    )
    full = lco.join(supp_n, on=[("l_suppkey", "s_suppkey")])
    enriched = full.select(
        o_year=col("o_orderdate").year(),
        volume=revenue_expr(),
        brazil_volume=when(col("supp_nation") == nation, revenue_expr(),
                           lit(0.0)),
    )
    sums = enriched.agg(
        F.sum("brazil_volume").alias("nation_volume"),
        F.sum("volume").alias("total_volume"),
        by=["o_year"],
    )
    out = sums.select(
        o_year="o_year",
        mkt_share=col("nation_volume") / col("total_volume"),
    )
    return out.sort("o_year")


def reference(tables, nation, region, p_type, date_lo, date_hi):
    part_f = mask(tables["part"], col("p_type") == p_type)
    li = hash_join(tables["lineitem"], part_f, ["l_partkey"],
                   ["p_partkey"])
    orders_f = mask(
        tables["orders"],
        (col("o_orderdate") >= date(date_lo))
        & (col("o_orderdate") <= date(date_hi)),
    )
    lo = hash_join(li, orders_f, ["l_orderkey"], ["o_orderkey"])
    region_f = mask(tables["region"], col("r_name") == region)
    nations_am = hash_join(tables["nation"], region_f, ["n_regionkey"],
                           ["r_regionkey"])
    cust_am = hash_join(tables["customer"], nations_am, ["c_nationkey"],
                        ["n_nationkey"])
    lco = hash_join(lo, cust_am.select(["c_custkey"]), ["o_custkey"],
                    ["c_custkey"], how="semi")
    supp_n = hash_join(tables["supplier"], tables["nation"],
                       ["s_nationkey"], ["n_nationkey"])
    supp_n = supp_n.rename({"n_name": "supp_nation"})
    full = hash_join(lco, supp_n, ["l_suppkey"], ["s_suppkey"])
    full = add(full, "o_year", col("o_orderdate").year())
    full = add(full, "volume", revenue_expr())
    full = add(
        full, "brazil_volume",
        when(col("supp_nation") == nation, revenue_expr(), lit(0.0)),
    )
    sums = group_aggregate(
        full, ["o_year"],
        [AggSpec("sum", "brazil_volume", "nation_volume"),
         AggSpec("sum", "volume", "total_volume")],
    )
    sums = add(sums, "mkt_share",
               col("nation_volume") / col("total_volume"))
    return sort_frame(sums.select(["o_year", "mkt_share"]), ["o_year"])
