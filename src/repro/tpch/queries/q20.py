"""TPC-H Q20: potential part promotion (nested IN subqueries decorrelated
through a grouped-quantity join).  Category "mixed".
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    add_years,
    col,
    date,
    group_aggregate,
    hash_join,
    lit,
    sort_frame,
)
from repro.api import F
from repro.dataframe.groupby import distinct_rows
from repro.tpch.queries._helpers import mask

NAME = "q20"
CATEGORY = "mixed"
DEFAULTS = {"color": "forest", "start": "1994-01-01", "years": 1,
            "nation": "CANADA"}


def build(ctx, color, start, years, nation):
    lo = date(start)
    hi = add_years(lo, years)
    part_f = ctx.table("part").filter(
        col("p_name").startswith(color)
    ).project("p_partkey")
    li = ctx.table("lineitem").filter(
        col("l_shipdate").between(lo, hi)
    )
    qty_ps = li.agg(F.sum("l_quantity").alias("qty"),
                    by=["l_partkey", "l_suppkey"])
    ps_f = ctx.table("partsupp").join(
        part_f, on=[("ps_partkey", "p_partkey")], how="semi"
    )
    psq = ps_f.join(
        qty_ps,
        on=[("ps_partkey", "l_partkey"), ("ps_suppkey", "l_suppkey")],
    )
    excess = psq.filter(
        col("ps_availqty") > lit(0.5) * col("qty")
    ).project("ps_suppkey").distinct("ps_suppkey")
    nation_f = ctx.table("nation").filter(col("n_name") == nation)
    supp = ctx.table("supplier").join(
        nation_f, on=[("s_nationkey", "n_nationkey")]
    )
    out = supp.join(excess, on=[("s_suppkey", "ps_suppkey")],
                    how="semi")
    return out.project("s_name", "s_address").sort("s_name")


def reference(tables, color, start, years, nation):
    lo = date(start)
    hi = add_years(lo, years)
    part_f = mask(tables["part"], col("p_name").startswith(color))
    li = mask(tables["lineitem"], col("l_shipdate").between(lo, hi))
    qty_ps = group_aggregate(li, ["l_partkey", "l_suppkey"],
                             [AggSpec("sum", "l_quantity", "qty")])
    ps_f = hash_join(tables["partsupp"], part_f.select(["p_partkey"]),
                     ["ps_partkey"], ["p_partkey"], how="semi")
    psq = hash_join(ps_f, qty_ps, ["ps_partkey", "ps_suppkey"],
                    ["l_partkey", "l_suppkey"])
    excess = distinct_rows(
        mask(psq, col("ps_availqty") > lit(0.5) * col("qty"))
        .select(["ps_suppkey"]),
        ["ps_suppkey"],
    )
    nation_f = mask(tables["nation"], col("n_name") == nation)
    supp = hash_join(tables["supplier"], nation_f, ["s_nationkey"],
                     ["n_nationkey"])
    out = hash_join(supp, excess, ["s_suppkey"], ["ps_suppkey"],
                    how="semi")
    return sort_frame(out.select(["s_name", "s_address"]), ["s_name"])
