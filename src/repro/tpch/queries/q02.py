"""TPC-H Q2: minimum-cost supplier.

Category "mixed": the argmin (ps_supplycost = min per part) gives on-off
recall/precision as the running minimum moves (§8.3's note on Q2/Q15).
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    group_aggregate,
    hash_join,
    top_k,
)
from repro.api import F
from repro.tpch.queries._helpers import mask

NAME = "q02"
CATEGORY = "mixed"
DEFAULTS = {"size": 15, "type_suffix": "BRASS", "region": "EUROPE",
            "limit": 100}

_SORT = ["s_acctbal", "n_name", "s_name", "ps_partkey"]
_DESC = [True, False, False, False]
_OUT = ["s_acctbal", "s_name", "n_name", "ps_partkey", "p_mfgr",
        "s_address", "s_phone", "s_comment"]


def build(ctx, size, type_suffix, region, limit):
    region_f = ctx.table("region").filter(col("r_name") == region)
    nations = ctx.table("nation").join(
        region_f, on=[("n_regionkey", "r_regionkey")]
    )
    supp_eu = ctx.table("supplier").join(
        nations, on=[("s_nationkey", "n_nationkey")]
    )
    ps_eu = ctx.table("partsupp").join(
        supp_eu, on=[("ps_suppkey", "s_suppkey")]
    )
    part_f = ctx.table("part").filter(
        (col("p_size") == size) & col("p_type").endswith(type_suffix)
    )
    target = ps_eu.join(part_f, on=[("ps_partkey", "p_partkey")])
    min_cost = target.agg(
        F.min("ps_supplycost").alias("min_cost"), by=["ps_partkey"]
    )
    matched = target.join(
        min_cost, on=[("ps_partkey", "ps_partkey")], suffix="_mc"
    ).filter(col("ps_supplycost") == col("min_cost"))
    out = matched.project(*_OUT)
    return out.top_k(_SORT, limit, desc=_DESC)


def reference(tables, size, type_suffix, region, limit):
    region_f = mask(tables["region"], col("r_name") == region)
    nations = hash_join(tables["nation"], region_f,
                        ["n_regionkey"], ["r_regionkey"])
    supp_eu = hash_join(tables["supplier"], nations,
                        ["s_nationkey"], ["n_nationkey"])
    ps_eu = hash_join(tables["partsupp"], supp_eu,
                      ["ps_suppkey"], ["s_suppkey"])
    part_f = mask(
        tables["part"],
        (col("p_size") == size) & col("p_type").endswith(type_suffix),
    )
    target = hash_join(ps_eu, part_f, ["ps_partkey"], ["p_partkey"])
    min_cost = group_aggregate(
        target, ["ps_partkey"],
        [AggSpec("min", "ps_supplycost", "min_cost")],
    )
    matched = hash_join(target, min_cost, ["ps_partkey"], ["ps_partkey"],
                        suffix="_mc")
    matched = mask(matched, col("ps_supplycost") == col("min_cost"))
    return top_k(matched.select(_OUT), _SORT, limit,
                 ascending=[not d for d in _DESC])
