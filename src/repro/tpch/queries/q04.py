"""TPC-H Q4: order priority checking (EXISTS decorrelated to a merge
semi-join over the distinct late-commit order keys).

Category "mape".
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    date,
    add_months,
    group_aggregate,
    hash_join,
    sort_frame,
)
from repro.api import F
from repro.dataframe.groupby import distinct_rows
from repro.tpch.queries._helpers import mask

NAME = "q04"
CATEGORY = "mape"
DEFAULTS = {"start": "1993-07-01", "months": 3}


def build(ctx, start, months):
    lo = date(start)
    hi = add_months(lo, months)
    late = (
        ctx.table("lineitem")
        .filter(col("l_commitdate") < col("l_receiptdate"))
        .distinct("l_orderkey")
        .project("l_orderkey")
    )
    orders_f = ctx.table("orders").filter(
        col("o_orderdate").between(lo, hi)
    )
    matched = orders_f.join(
        late, on=[("o_orderkey", "l_orderkey")], method="merge"
    )
    out = matched.agg(F.count().alias("order_count"),
                      by=["o_orderpriority"])
    return out.sort("o_orderpriority")


def reference(tables, start, months):
    lo = date(start)
    hi = add_months(lo, months)
    late = distinct_rows(
        mask(tables["lineitem"],
             col("l_commitdate") < col("l_receiptdate")),
        ["l_orderkey"],
    )
    orders_f = mask(tables["orders"], col("o_orderdate").between(lo, hi))
    matched = hash_join(orders_f, late, ["o_orderkey"], ["l_orderkey"],
                        how="semi")
    out = group_aggregate(matched, ["o_orderpriority"],
                          [AggSpec("count", None, "order_count")])
    return sort_frame(out, ["o_orderpriority"])
