"""TPC-H Q17: small-quantity-order revenue (correlated scalar subquery
decorrelated into an avg-per-part join).

Category "mape".  The paper (§8.2) notes Q17 must compute the subquery's
aggregate before producing a first result — here the avg-per-part
aggregate is a REPLACE build side, which blocks the probe exactly the
same way.
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    global_aggregate,
    group_aggregate,
    hash_join,
    lit,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask

NAME = "q17"
CATEGORY = "mape"
DEFAULTS = {"brand": "Brand#23", "container": "MED BOX"}


def build(ctx, brand, container):
    part_f = ctx.table("part").filter(
        (col("p_brand") == brand) & (col("p_container") == container)
    ).project("p_partkey")
    li_p = ctx.table("lineitem").join(
        part_f, on=[("l_partkey", "p_partkey")], how="semi"
    )
    avg_q = li_p.agg(F.avg("l_quantity").alias("avg_qty"),
                     by=["l_partkey"])
    joined = li_p.join(avg_q, on=[("l_partkey", "l_partkey")],
                       suffix="_aq")
    small = joined.filter(
        col("l_quantity") < lit(0.2) * col("avg_qty")
    )
    total = small.agg(F.sum("l_extendedprice").alias("total"))
    return total.select(avg_yearly=col("total") / lit(7.0))


def reference(tables, brand, container):
    part_f = mask(
        tables["part"],
        (col("p_brand") == brand) & (col("p_container") == container),
    )
    li_p = hash_join(tables["lineitem"], part_f.select(["p_partkey"]),
                     ["l_partkey"], ["p_partkey"], how="semi")
    avg_q = group_aggregate(li_p, ["l_partkey"],
                            [AggSpec("avg", "l_quantity", "avg_qty")])
    joined = hash_join(li_p, avg_q, ["l_partkey"], ["l_partkey"],
                       suffix="_aq")
    small = mask(joined, col("l_quantity") < lit(0.2) * col("avg_qty"))
    total = global_aggregate(small,
                             [AggSpec("sum", "l_extendedprice", "total")])
    return add(total, "avg_yearly",
               col("total") / lit(7.0)).select(["avg_yearly"])
