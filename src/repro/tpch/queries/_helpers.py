"""Shared helpers for reference implementations (exact, kernel-level)."""

from __future__ import annotations

from repro.dataframe import DataFrame
from repro.dataframe.expr import Expr


def mask(frame: DataFrame, predicate: Expr) -> DataFrame:
    """Filter a frame by an expression (reference-side convenience)."""
    return frame.mask(predicate.evaluate(frame))


def add(frame: DataFrame, name: str, expr: Expr) -> DataFrame:
    """Append a derived column from an expression."""
    return frame.with_column(name, expr.evaluate(frame))


def revenue_expr():
    """The TPC-H revenue expression l_extendedprice * (1 − l_discount)."""
    from repro.dataframe import col, lit

    return col("l_extendedprice") * (lit(1.0) - col("l_discount"))
