"""TPC-H Q19: discounted revenue (three OR'd condition branches).
Category "mape".
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    global_aggregate,
    hash_join,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask, revenue_expr

NAME = "q19"
CATEGORY = "mape"
DEFAULTS = {
    "brand1": "Brand#12", "qty1": 1,
    "brand2": "Brand#23", "qty2": 10,
    "brand3": "Brand#34", "qty3": 20,
}

_CONTAINERS_1 = ("SM CASE", "SM BOX", "SM PACK", "SM PKG")
_CONTAINERS_2 = ("MED BAG", "MED BOX", "MED PKG", "MED PACK")
_CONTAINERS_3 = ("LG CASE", "LG BOX", "LG PACK", "LG PKG")


def _branch(brand, containers, qty_lo, size_hi):
    return (
        (col("p_brand") == brand)
        & col("p_container").isin(list(containers))
        & (col("l_quantity") >= qty_lo)
        & (col("l_quantity") <= qty_lo + 10)
        & (col("p_size") >= 1)
        & (col("p_size") <= size_hi)
    )


def _predicate(brand1, qty1, brand2, qty2, brand3, qty3):
    common = col("l_shipmode").isin(["AIR", "REG AIR"]) & (
        col("l_shipinstruct") == "DELIVER IN PERSON"
    )
    return common & (
        _branch(brand1, _CONTAINERS_1, qty1, 5)
        | _branch(brand2, _CONTAINERS_2, qty2, 10)
        | _branch(brand3, _CONTAINERS_3, qty3, 15)
    )


def build(ctx, brand1, qty1, brand2, qty2, brand3, qty3):
    lp = ctx.table("lineitem").join(
        ctx.table("part"), on=[("l_partkey", "p_partkey")]
    )
    kept = lp.filter(_predicate(brand1, qty1, brand2, qty2, brand3,
                                qty3))
    enriched = kept.select(rev=revenue_expr())
    return enriched.agg(F.sum("rev").alias("revenue"))


def reference(tables, brand1, qty1, brand2, qty2, brand3, qty3):
    lp = hash_join(tables["lineitem"], tables["part"], ["l_partkey"],
                   ["p_partkey"])
    kept = mask(lp, _predicate(brand1, qty1, brand2, qty2, brand3, qty3))
    kept = add(kept, "rev", revenue_expr())
    return global_aggregate(kept, [AggSpec("sum", "rev", "revenue")])
