"""TPC-H Q22: global sales opportunity (scalar-subquery threshold plus an
anti join on orders).  Category "mape".
"""

from __future__ import annotations

from repro.dataframe import (
    AggSpec,
    col,
    global_aggregate,
    group_aggregate,
    hash_join,
    sort_frame,
)
from repro.api import F
from repro.tpch.queries._helpers import add, mask

NAME = "q22"
CATEGORY = "mape"
DEFAULTS = {"codes": ("13", "31", "23", "29", "30", "18", "17")}


def build(ctx, codes):
    cust = ctx.table("customer").select(
        c_custkey="c_custkey",
        c_acctbal="c_acctbal",
        cntrycode=col("c_phone").substr(1, 2),
    ).filter(col("cntrycode").isin(list(codes)))
    avg_bal = cust.filter(col("c_acctbal") > 0.0).agg(
        F.avg("c_acctbal").alias("avg_bal")
    )
    rich = cust.cross_join(avg_bal).filter(
        col("c_acctbal") > col("avg_bal")
    )
    no_orders = rich.join(
        ctx.table("orders"), on=[("c_custkey", "o_custkey")], how="anti"
    )
    out = no_orders.agg(
        F.count().alias("numcust"),
        F.sum("c_acctbal").alias("totacctbal"),
        by=["cntrycode"],
    )
    return out.sort("cntrycode")


def reference(tables, codes):
    cust = add(tables["customer"], "cntrycode",
               col("c_phone").substr(1, 2))
    cust = mask(cust, col("cntrycode").isin(list(codes)))
    positive = mask(cust, col("c_acctbal") > 0.0)
    avg_bal = global_aggregate(
        positive, [AggSpec("avg", "c_acctbal", "avg_bal")]
    ).column("avg_bal")[0]
    rich = mask(cust, col("c_acctbal") > avg_bal)
    no_orders = hash_join(rich, tables["orders"], ["c_custkey"],
                          ["o_custkey"], how="anti")
    out = group_aggregate(
        no_orders, ["cntrycode"],
        [AggSpec("count", None, "numcust"),
         AggSpec("sum", "c_acctbal", "totacctbal")],
    )
    return sort_frame(out, ["cntrycode"])
