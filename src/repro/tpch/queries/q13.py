"""TPC-H Q13: customer distribution (count-of-counts; the paper's hard
case for the growth model, §8.3).  Category "mixed".

The '%special%requests%' LIKE is approximated as containing both words
(the generator injects the phrase in order, so the two coincide).
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import (
    AggSpec,
    col,
    group_aggregate,
    hash_join,
    sort_frame,
)
from repro.api import F
from repro.tpch.queries._helpers import mask

NAME = "q13"
CATEGORY = "mixed"
DEFAULTS = {"word1": "special", "word2": "requests"}


def build(ctx, word1, word2):
    orders_f = ctx.table("orders").filter(
        ~(col("o_comment").contains(word1)
          & col("o_comment").contains(word2))
    )
    co = ctx.table("customer").join(
        orders_f, on=[("c_custkey", "o_custkey")], how="left"
    )
    per_cust = co.agg(F.count("o_orderkey").alias("c_count"),
                      by=["c_custkey"])
    dist = per_cust.agg(F.count().alias("custdist"), by=["c_count"])
    return dist.sort(["custdist", "c_count"], desc=[True, True])


def reference(tables, word1, word2):
    orders_f = mask(
        tables["orders"],
        ~(col("o_comment").contains(word1)
          & col("o_comment").contains(word2)),
    )
    co = hash_join(tables["customer"], orders_f, ["c_custkey"],
                   ["o_custkey"], how="left")
    per_cust = group_aggregate(
        co, ["c_custkey"], [AggSpec("count", "o_orderkey", "c_count")]
    )
    per_cust = per_cust.with_column(
        "c_count", per_cust.column("c_count").astype(np.float64)
    )
    dist = group_aggregate(per_cust, ["c_count"],
                           [AggSpec("count", None, "custdist")])
    return sort_frame(dist, ["custdist", "c_count"],
                      ascending=[False, False])
