"""The 22 TPC-H queries, each as (a) a Wake dataflow plan over the fluent
API and (b) an exact reference implementation over the DataFrame kernels.

Every module ``qNN`` exposes::

    NAME        -- "qNN"
    CATEGORY    -- Fig-8 error-curve category:
                   "mape"   (non-clustered low-cardinality group-by),
                   "recall" (clustered group-by keys: exact values,
                             growing recall),
                   "mixed"  (both effects)
    DEFAULTS    -- query parameters (spec defaults; a few relaxed for
                   laptop-scale SFs, noted per query)
    build(ctx, **params)       -> EdfFrame (the Wake plan)
    reference(tables, **params) -> DataFrame (exact answer)

``QUERIES`` maps query number → :class:`QueryDef`.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class QueryDef:
    """Registry entry for one TPC-H query."""

    number: int
    name: str
    category: str
    defaults: dict
    build: Callable
    reference: Callable

    def run_reference(self, tables, **overrides):
        params = {**self.defaults, **overrides}
        return self.reference(tables, **params)

    def build_plan(self, ctx, **overrides):
        params = {**self.defaults, **overrides}
        return self.build(ctx, **params)


def _load() -> dict[int, QueryDef]:
    queries: dict[int, QueryDef] = {}
    for number in range(1, 23):
        module = importlib.import_module(
            f"repro.tpch.queries.q{number:02d}"
        )
        queries[number] = QueryDef(
            number=number,
            name=module.NAME,
            category=module.CATEGORY,
            defaults=dict(module.DEFAULTS),
            build=module.build,
            reference=module.reference,
        )
    return queries


QUERIES: dict[int, QueryDef] = _load()

__all__ = ["QUERIES", "QueryDef"]
