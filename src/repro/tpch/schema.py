"""TPC-H table schemas, keys, and clustering (paper §8.1).

Tables are clustered exactly as the paper's setup implies: the fact tables
``lineitem`` and ``orders`` are clustered on their order keys (enabling
Wake's progressive merge join and local aggregation paths, Fig 6), and
every other table on its primary key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataframe import DType, Field, Schema


@dataclass(frozen=True)
class TableSpec:
    """Static description of one TPC-H table."""

    name: str
    schema: Schema
    primary_key: tuple[str, ...]
    clustering_key: tuple[str, ...]
    #: Rows per unit scale factor (None = fixed-size table).
    rows_per_sf: int | None


def _s(name: str) -> Field:
    return Field(name, DType.STRING)


def _i(name: str) -> Field:
    return Field(name, DType.INT64)


def _f(name: str) -> Field:
    return Field(name, DType.FLOAT64)


def _d(name: str) -> Field:
    return Field(name, DType.DATE)


REGION = TableSpec(
    "region",
    Schema([_i("r_regionkey"), _s("r_name"), _s("r_comment")]),
    primary_key=("r_regionkey",),
    clustering_key=("r_regionkey",),
    rows_per_sf=None,
)

NATION = TableSpec(
    "nation",
    Schema([_i("n_nationkey"), _s("n_name"), _i("n_regionkey"),
            _s("n_comment")]),
    primary_key=("n_nationkey",),
    clustering_key=("n_nationkey",),
    rows_per_sf=None,
)

SUPPLIER = TableSpec(
    "supplier",
    Schema([_i("s_suppkey"), _s("s_name"), _s("s_address"),
            _i("s_nationkey"), _s("s_phone"), _f("s_acctbal"),
            _s("s_comment")]),
    primary_key=("s_suppkey",),
    clustering_key=("s_suppkey",),
    rows_per_sf=10_000,
)

CUSTOMER = TableSpec(
    "customer",
    Schema([_i("c_custkey"), _s("c_name"), _s("c_address"),
            _i("c_nationkey"), _s("c_phone"), _f("c_acctbal"),
            _s("c_mktsegment"), _s("c_comment")]),
    primary_key=("c_custkey",),
    clustering_key=("c_custkey",),
    rows_per_sf=150_000,
)

PART = TableSpec(
    "part",
    Schema([_i("p_partkey"), _s("p_name"), _s("p_mfgr"), _s("p_brand"),
            _s("p_type"), _i("p_size"), _s("p_container"),
            _f("p_retailprice"), _s("p_comment")]),
    primary_key=("p_partkey",),
    clustering_key=("p_partkey",),
    rows_per_sf=200_000,
)

PARTSUPP = TableSpec(
    "partsupp",
    Schema([_i("ps_partkey"), _i("ps_suppkey"), _i("ps_availqty"),
            _f("ps_supplycost"), _s("ps_comment")]),
    primary_key=("ps_partkey", "ps_suppkey"),
    clustering_key=("ps_partkey",),
    rows_per_sf=800_000,
)

ORDERS = TableSpec(
    "orders",
    Schema([_i("o_orderkey"), _i("o_custkey"), _s("o_orderstatus"),
            _f("o_totalprice"), _d("o_orderdate"), _s("o_orderpriority"),
            _s("o_clerk"), _i("o_shippriority"), _s("o_comment")]),
    primary_key=("o_orderkey",),
    clustering_key=("o_orderkey",),
    rows_per_sf=1_500_000,
)

LINEITEM = TableSpec(
    "lineitem",
    Schema([_i("l_orderkey"), _i("l_partkey"), _i("l_suppkey"),
            _i("l_linenumber"), _f("l_quantity"), _f("l_extendedprice"),
            _f("l_discount"), _f("l_tax"), _s("l_returnflag"),
            _s("l_linestatus"), _d("l_shipdate"), _d("l_commitdate"),
            _d("l_receiptdate"), _s("l_shipinstruct"), _s("l_shipmode"),
            _s("l_comment")]),
    primary_key=("l_orderkey", "l_linenumber"),
    clustering_key=("l_orderkey",),
    rows_per_sf=None,  # ~4x orders, derived from order line counts
)

TABLES: dict[str, TableSpec] = {
    spec.name: spec
    for spec in (REGION, NATION, SUPPLIER, CUSTOMER, PART, PARTSUPP,
                 ORDERS, LINEITEM)
}

#: The 25 nations (key, name, regionkey) and 5 regions from the TPC-H spec
#: — queries Q2/Q5/Q7/Q8/Q9/Q21 filter on these exact names.
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

MKT_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                "MACHINERY")

ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                    "5-LOW")

SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")

SHIP_INSTRUCTIONS = ("DELIVER IN PERSON", "COLLECT COD", "NONE",
                     "TAKE BACK RETURN")

TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                   "PROMO")
TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                   "BRUSHED")
TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")

CONTAINER_SYLLABLE_1 = ("SM", "LG", "MED", "JUMBO", "WRAP")
CONTAINER_SYLLABLE_2 = ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                        "CAN", "DRUM")

#: Color vocabulary for p_name (Q9 matches '%green%').
PART_COLORS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque",
    "black", "blanched", "blue", "blush", "brown", "burlywood",
    "chartreuse", "chocolate", "coral", "cornflower", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral",
    "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green",
    "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace",
    "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
    "maroon", "medium", "metallic", "midnight", "mint", "misty",
    "moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale",
    "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
    "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow",
    "spring", "steel", "tan", "thistle", "tomato", "turquoise",
    "violet", "wheat", "white", "yellow",
)

#: Filler vocabulary for comments.
COMMENT_WORDS = (
    "carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
    "packages", "accounts", "requests", "instructions", "foxes",
    "pinto", "beans", "theodolites", "dependencies", "platelets",
    "ideas", "asymptotes", "somas", "dugouts", "sauternes", "warhorses",
    "sheaves", "sleep", "nag", "haggle", "bold", "final", "express",
    "regular", "even", "ironic", "pending", "unusual", "silent",
)
