"""TPC-H substrate: schemas, dbgen, loader, and the 22 benchmark queries."""

from repro.tpch.dbgen import TpchTables, generate
from repro.tpch.loader import (
    generate_and_load,
    load_or_generate,
    load_tables,
)
from repro.tpch.schema import TABLES, TableSpec

__all__ = [
    "TABLES",
    "TableSpec",
    "TpchTables",
    "generate",
    "generate_and_load",
    "load_or_generate",
    "load_tables",
]
