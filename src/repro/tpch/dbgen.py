"""TPC-H data generator (the ``dbgen`` substrate, paper §8.1).

A numpy re-implementation of the TPC-H population rules, faithful where
query behaviour depends on it:

* referential integrity (lineitem (partkey, suppkey) pairs always exist in
  partsupp; every o_orderkey has 1–7 lineitems; FKs valid);
* the real nation/region names and phone country codes (= 10 + nationkey,
  which Q22 slices out of c_phone);
* date arithmetic (l_shipdate = o_orderdate + 1..121 days, commit/receipt
  offsets, returnflag/linestatus derived from the 1995-06-17 current date);
* value vocabularies (brands, types, containers, segments, priorities,
  ship modes) with uniform draws, plus rare comment phrases for Q13
  ("special ... requests") and Q16 ("Customer ... Complaints").

Text columns use compact word-sampled comments rather than the spec's
grammar — none of the 22 queries depend on comment internals beyond the
two LIKE patterns above.  Everything is deterministic per (scale_factor,
seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataframe import DataFrame, date
from repro.tpch import schema as spec

#: TPC-H "current date" used to derive returnflag / linestatus.
_CURRENT_DATE = date("1995-06-17")
_ORDER_DATE_LO = date("1992-01-01")
_ORDER_DATE_HI = date("1998-08-02")

#: Suppliers listed per part in partsupp.
_SUPPLIERS_PER_PART = 4


@dataclass
class TpchTables:
    """All eight generated tables, keyed by TPC-H table name."""

    tables: dict[str, DataFrame] = field(default_factory=dict)

    def __getitem__(self, name: str) -> DataFrame:
        return self.tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def names(self) -> tuple[str, ...]:
        return tuple(self.tables)


def _comments(rng: np.random.Generator, n: int, words: int = 4,
              inject: str | None = None,
              inject_rate: float = 0.0) -> np.ndarray:
    """Random word-salad comments with an optional rare injected phrase."""
    vocab = np.array(spec.COMMENT_WORDS)
    picks = rng.integers(0, len(vocab), size=(n, words))
    parts = vocab[picks]
    out = np.array([" ".join(row) for row in parts])
    if inject and inject_rate > 0 and n > 0:
        hit = rng.random(n) < inject_rate
        out = out.copy()
        out[hit] = np.char.add(out[hit], " " + inject)
    return out


def _money(rng: np.random.Generator, n: int, lo: float,
           hi: float) -> np.ndarray:
    return np.round(rng.uniform(lo, hi, size=n), 2)


def _phone(rng: np.random.Generator, nationkeys: np.ndarray) -> np.ndarray:
    """Phone numbers 'CC-LLL-LLL-LLLL' with country code 10+nationkey."""
    n = len(nationkeys)
    local = rng.integers(100, 999, size=(n, 2))
    last = rng.integers(1000, 9999, size=n)
    codes = nationkeys + 10
    return np.array(
        [
            f"{c}-{a}-{b}-{d}"
            for c, (a, b), d in zip(codes.tolist(), local.tolist(),
                                    last.tolist())
        ]
    )


def generate_region() -> DataFrame:
    rng = np.random.default_rng(7001)
    n = len(spec.REGIONS)
    return DataFrame(
        {
            "r_regionkey": np.arange(n, dtype=np.int64),
            "r_name": np.array(spec.REGIONS),
            "r_comment": _comments(rng, n),
        },
        schema=spec.REGION.schema,
    )


def generate_nation() -> DataFrame:
    rng = np.random.default_rng(7002)
    names = np.array([name for name, _ in spec.NATIONS])
    regions = np.array([region for _, region in spec.NATIONS],
                       dtype=np.int64)
    return DataFrame(
        {
            "n_nationkey": np.arange(len(names), dtype=np.int64),
            "n_name": names,
            "n_regionkey": regions,
            "n_comment": _comments(rng, len(names)),
        },
        schema=spec.NATION.schema,
    )


def _balanced_nationkeys(n: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform nation assignment with guaranteed coverage: at small scale
    factors a plain uniform draw can leave whole nations unpopulated,
    which degenerates the nation-filtered queries (Q2/Q5/Q7/Q8/Q21)."""
    return rng.permutation(
        np.arange(n, dtype=np.int64) % len(spec.NATIONS)
    )


def generate_supplier(n: int, rng: np.random.Generator) -> DataFrame:
    keys = np.arange(1, n + 1, dtype=np.int64)
    nationkeys = _balanced_nationkeys(n, rng)
    return DataFrame(
        {
            "s_suppkey": keys,
            "s_name": np.array([f"Supplier#{k:09d}" for k in keys]),
            "s_address": _comments(rng, n, words=2),
            "s_nationkey": nationkeys.astype(np.int64),
            "s_phone": _phone(rng, nationkeys),
            "s_acctbal": _money(rng, n, -999.99, 9999.99),
            "s_comment": _comments(
                rng, n, words=5,
                inject="Customer stuff Complaints",
                inject_rate=0.01,
            ),
        },
        schema=spec.SUPPLIER.schema,
    )


def generate_customer(n: int, rng: np.random.Generator) -> DataFrame:
    keys = np.arange(1, n + 1, dtype=np.int64)
    nationkeys = _balanced_nationkeys(n, rng)
    segments = np.array(spec.MKT_SEGMENTS)[
        rng.integers(0, len(spec.MKT_SEGMENTS), size=n)
    ]
    return DataFrame(
        {
            "c_custkey": keys,
            "c_name": np.array([f"Customer#{k:09d}" for k in keys]),
            "c_address": _comments(rng, n, words=2),
            "c_nationkey": nationkeys.astype(np.int64),
            "c_phone": _phone(rng, nationkeys),
            "c_acctbal": _money(rng, n, -999.99, 9999.99),
            "c_mktsegment": segments,
            "c_comment": _comments(rng, n, words=5),
        },
        schema=spec.CUSTOMER.schema,
    )


def generate_part(n: int, rng: np.random.Generator) -> DataFrame:
    keys = np.arange(1, n + 1, dtype=np.int64)
    colors = np.array(spec.PART_COLORS)
    name_picks = colors[rng.integers(0, len(colors), size=(n, 3))]
    names = np.array([" ".join(row) for row in name_picks])
    mfgr_ids = rng.integers(1, 6, size=n)
    brand_ids = mfgr_ids * 10 + rng.integers(1, 6, size=n)
    types = np.array(
        [
            f"{t1} {t2} {t3}"
            for t1, t2, t3 in zip(
                np.array(spec.TYPE_SYLLABLE_1)[
                    rng.integers(0, 6, size=n)],
                np.array(spec.TYPE_SYLLABLE_2)[
                    rng.integers(0, 5, size=n)],
                np.array(spec.TYPE_SYLLABLE_3)[
                    rng.integers(0, 5, size=n)],
            )
        ]
    )
    containers = np.array(
        [
            f"{c1} {c2}"
            for c1, c2 in zip(
                np.array(spec.CONTAINER_SYLLABLE_1)[
                    rng.integers(0, 5, size=n)],
                np.array(spec.CONTAINER_SYLLABLE_2)[
                    rng.integers(0, 8, size=n)],
            )
        ]
    )
    retail = 900.0 + (keys % 1000) / 10.0 + 100.0 * (keys % 10)
    return DataFrame(
        {
            "p_partkey": keys,
            "p_name": names,
            "p_mfgr": np.array(
                [f"Manufacturer#{m}" for m in mfgr_ids.tolist()]
            ),
            "p_brand": np.array(
                [f"Brand#{b}" for b in brand_ids.tolist()]
            ),
            "p_type": types,
            "p_size": rng.integers(1, 51, size=n).astype(np.int64),
            "p_container": containers,
            "p_retailprice": retail.astype(np.float64),
            "p_comment": _comments(rng, n, words=2),
        },
        schema=spec.PART.schema,
    )


def _part_suppliers(partkeys: np.ndarray, n_suppliers: int) -> np.ndarray:
    """The (deterministic) supplier slots for each part — column ``i`` is
    the i-th supplier of the part (TPC-H-style spreading formula)."""
    slots = []
    for i in range(_SUPPLIERS_PER_PART):
        slots.append(
            (partkeys - 1 + i * (n_suppliers // _SUPPLIERS_PER_PART + 1))
            % n_suppliers + 1
        )
    return np.stack(slots, axis=1)


def generate_partsupp(n_parts: int, n_suppliers: int,
                      rng: np.random.Generator) -> DataFrame:
    partkeys = np.arange(1, n_parts + 1, dtype=np.int64)
    slots = _part_suppliers(partkeys, n_suppliers)
    ps_partkey = np.repeat(partkeys, _SUPPLIERS_PER_PART)
    ps_suppkey = slots.reshape(-1)
    n = len(ps_partkey)
    return DataFrame(
        {
            "ps_partkey": ps_partkey,
            "ps_suppkey": ps_suppkey.astype(np.int64),
            "ps_availqty": rng.integers(1, 10_000, size=n).astype(
                np.int64),
            "ps_supplycost": _money(rng, n, 1.0, 1000.0),
            "ps_comment": _comments(rng, n, words=3),
        },
        schema=spec.PARTSUPP.schema,
    )


def generate_orders_and_lineitem(
    n_orders: int,
    n_customers: int,
    part_frame: DataFrame,
    n_suppliers: int,
    rng: np.random.Generator,
) -> tuple[DataFrame, DataFrame]:
    orderkeys = np.arange(1, n_orders + 1, dtype=np.int64)
    # TPC-H rule: customers with custkey % 3 == 0 place no orders (one
    # third of customers are order-less — Q13's zero bucket, Q22's
    # anti-join population).
    eligible = np.arange(1, n_customers + 1, dtype=np.int64)
    eligible = eligible[eligible % 3 != 0]
    custkeys = rng.choice(eligible, size=n_orders).astype(np.int64)
    orderdates = rng.integers(_ORDER_DATE_LO, _ORDER_DATE_HI,
                              size=n_orders).astype(np.int64)
    priorities = np.array(spec.ORDER_PRIORITIES)[
        rng.integers(0, len(spec.ORDER_PRIORITIES), size=n_orders)
    ]
    clerks = np.array(
        [f"Clerk#{c:09d}" for c in
         rng.integers(1, max(2, n_orders // 100), size=n_orders).tolist()]
    )

    # lineitems: 1..7 per order
    lines_per_order = rng.integers(1, 8, size=n_orders)
    l_orderkey = np.repeat(orderkeys, lines_per_order)
    n_lines = len(l_orderkey)
    l_linenumber = (
        np.arange(n_lines, dtype=np.int64)
        - np.repeat(np.cumsum(lines_per_order) - lines_per_order,
                    lines_per_order)
        + 1
    )
    n_parts = part_frame.n_rows
    l_partkey = rng.integers(1, n_parts + 1, size=n_lines).astype(
        np.int64)
    slot = rng.integers(0, _SUPPLIERS_PER_PART, size=n_lines)
    slots = _part_suppliers(l_partkey, n_suppliers)
    l_suppkey = slots[np.arange(n_lines), slot].astype(np.int64)

    quantity = rng.integers(1, 51, size=n_lines).astype(np.float64)
    retail = part_frame.column("p_retailprice")[l_partkey - 1]
    extendedprice = np.round(retail * quantity / 10.0, 2)
    discount = np.round(rng.integers(0, 11, size=n_lines) / 100.0, 2)
    tax = np.round(rng.integers(0, 9, size=n_lines) / 100.0, 2)

    order_date_per_line = np.repeat(orderdates, lines_per_order)
    shipdate = order_date_per_line + rng.integers(1, 122, size=n_lines)
    commitdate = order_date_per_line + rng.integers(30, 91, size=n_lines)
    receiptdate = shipdate + rng.integers(1, 31, size=n_lines)

    returnflag = np.where(
        receiptdate <= _CURRENT_DATE,
        np.where(rng.random(n_lines) < 0.5, "R", "A"),
        "N",
    )
    linestatus = np.where(shipdate > _CURRENT_DATE, "O", "F")
    shipinstruct = np.array(spec.SHIP_INSTRUCTIONS)[
        rng.integers(0, len(spec.SHIP_INSTRUCTIONS), size=n_lines)
    ]
    shipmode = np.array(spec.SHIP_MODES)[
        rng.integers(0, len(spec.SHIP_MODES), size=n_lines)
    ]

    lineitem = DataFrame(
        {
            "l_orderkey": l_orderkey,
            "l_partkey": l_partkey,
            "l_suppkey": l_suppkey,
            "l_linenumber": l_linenumber,
            "l_quantity": quantity,
            "l_extendedprice": extendedprice,
            "l_discount": discount,
            "l_tax": tax,
            "l_returnflag": returnflag,
            "l_linestatus": linestatus,
            "l_shipdate": shipdate.astype(np.int64),
            "l_commitdate": commitdate.astype(np.int64),
            "l_receiptdate": receiptdate.astype(np.int64),
            "l_shipinstruct": shipinstruct,
            "l_shipmode": shipmode,
            "l_comment": _comments(rng, n_lines, words=3),
        },
        schema=spec.LINEITEM.schema,
    )

    # order totals / status derived from their lines
    line_charge = extendedprice * (1 + tax) * (1 - discount)
    totalprice = np.round(
        np.bincount(
            np.repeat(np.arange(n_orders), lines_per_order),
            weights=line_charge, minlength=n_orders,
        ),
        2,
    )
    open_lines = np.bincount(
        np.repeat(np.arange(n_orders), lines_per_order),
        weights=(linestatus == "O").astype(np.float64),
        minlength=n_orders,
    )
    status = np.where(
        open_lines == lines_per_order, "O",
        np.where(open_lines == 0, "F", "P"),
    )
    orders = DataFrame(
        {
            "o_orderkey": orderkeys,
            "o_custkey": custkeys,
            "o_orderstatus": status,
            "o_totalprice": totalprice,
            "o_orderdate": orderdates,
            "o_orderpriority": priorities,
            "o_clerk": clerks,
            "o_shippriority": np.zeros(n_orders, dtype=np.int64),
            "o_comment": _comments(
                rng, n_orders, words=4,
                inject="special packages requests",
                inject_rate=0.02,
            ),
        },
        schema=spec.ORDERS.schema,
    )
    return orders, lineitem


def generate(scale_factor: float = 0.01, seed: int = 42) -> TpchTables:
    """Generate all eight tables at the given scale factor.

    Row counts follow the spec bases (orders = 1.5M·SF, etc.) with floors
    so that tiny scale factors still produce non-degenerate tables.
    """
    if scale_factor <= 0:
        raise ValueError(f"scale_factor must be positive: {scale_factor}")
    rng = np.random.default_rng(seed)
    n_suppliers = max(10, int(spec.SUPPLIER.rows_per_sf * scale_factor))
    n_parts = max(40, int(spec.PART.rows_per_sf * scale_factor))
    n_customers = max(30, int(spec.CUSTOMER.rows_per_sf * scale_factor))
    n_orders = max(150, int(spec.ORDERS.rows_per_sf * scale_factor))

    part = generate_part(n_parts, rng)
    orders, lineitem = generate_orders_and_lineitem(
        n_orders, n_customers, part, n_suppliers, rng
    )
    return TpchTables(
        {
            "region": generate_region(),
            "nation": generate_nation(),
            "supplier": generate_supplier(n_suppliers, rng),
            "customer": generate_customer(n_customers, rng),
            "part": part,
            "partsupp": generate_partsupp(n_parts, n_suppliers, rng),
            "orders": orders,
            "lineitem": lineitem,
        }
    )
