"""Cardinality growth model (paper §5.2).

Wake models the expected group cardinality as a monomial ``E[X_i(t)] =
c_i * t^w`` with one shared power ``w`` per aggregate node, fitted by a
streaming ordinary-least-squares regression of ``log(mean cardinality)``
on ``log t`` with O(1) time/space per observation.

Shortcuts mirror the paper's Fig 4 taxonomy:

* grouping by (a superset of) the input clustering key → ``w`` pinned to 0
  (groups are complete once observed; values exact);
* base-table DELTA streams → prior ``w = 1`` until two observations exist;
* REPLACE (snapshot) inputs → prior ``w = 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InferenceError


class StreamingLogLogRegression:
    """Incremental OLS of ``log y`` on ``log x`` (O(1) per observation).

    Tracks sufficient statistics (n, Σu, Σv, Σu², Σuv, Σv²) where
    ``u = log x`` and ``v = log y``.  Exposes the fitted slope, intercept,
    and the OLS slope-variance estimate used by the CI machinery
    (paper §6: Var(w) via the ordinary-least-squares parameter variance).
    """

    def __init__(self) -> None:
        self._n = 0
        self._su = 0.0
        self._sv = 0.0
        self._suu = 0.0
        self._suv = 0.0
        self._svv = 0.0

    def observe(self, x: float, y: float) -> None:
        """Add one (x, y) pair; both must be positive."""
        if x <= 0 or y <= 0:
            raise InferenceError(
                f"log-log regression requires positive values, got "
                f"({x}, {y})"
            )
        u, v = math.log(x), math.log(y)
        self._n += 1
        self._su += u
        self._sv += v
        self._suu += u * u
        self._suv += u * v
        self._svv += v * v

    @property
    def n(self) -> int:
        return self._n

    @property
    def _sxx(self) -> float:
        return self._suu - self._su * self._su / self._n

    def can_fit(self) -> bool:
        """At least two observations with distinct x values."""
        return self._n >= 2 and self._sxx > 1e-12

    @property
    def slope(self) -> float:
        if not self.can_fit():
            raise InferenceError(
                "slope is undefined with fewer than two distinct observations"
            )
        sxy = self._suv - self._su * self._sv / self._n
        return sxy / self._sxx

    @property
    def intercept(self) -> float:
        """Intercept of the log-log fit (``log c`` in the monomial)."""
        return (self._sv - self.slope * self._su) / self._n

    @property
    def slope_variance(self) -> float:
        """OLS estimate of Var(slope); 0 with < 3 observations."""
        if self._n < 3 or not self.can_fit():
            return 0.0
        slope = self.slope
        sxy = self._suv - self._su * self._sv / self._n
        syy = self._svv - self._sv * self._sv / self._n
        ss_res = max(0.0, syy - slope * sxy)
        sigma2 = ss_res / (self._n - 2)
        return sigma2 / self._sxx


@dataclass(frozen=True)
class GrowthSnapshot:
    """The growth state used for one inference pass."""

    w: float
    var_w: float
    n_observations: int

    def scale(self, t: float) -> float:
        """Growth-based scale factor ``t^{-w}`` (1 at t=1; never < 1)."""
        if not 0.0 < t <= 1.0:
            raise InferenceError(f"progress t must be in (0, 1], got {t}")
        return t ** (-self.w)


class GrowthModel:
    """Per-node monomial growth ``c · t^w`` with priors and clamping.

    ``fixed_w`` pins the power analytically (the clustering-key shortcut).
    Otherwise ``prior_w`` is reported until the regression has two distinct
    observations, after which the fitted slope (clamped to ``bounds``) wins.
    """

    #: Allowed range for fitted powers.  Cross joins can reach w≈2; anything
    #: above 3 is treated as a mis-fit and clamped (paper §5.5 motivates the
    #: restriction to simple monomials).
    DEFAULT_BOUNDS = (0.0, 3.0)

    def __init__(
        self,
        prior_w: float = 1.0,
        fixed_w: float | None = None,
        bounds: tuple[float, float] = DEFAULT_BOUNDS,
    ) -> None:
        if fixed_w is not None and not (
            bounds[0] <= fixed_w <= bounds[1]
        ):
            raise InferenceError(
                f"fixed_w {fixed_w} outside bounds {bounds}"
            )
        self._prior_w = prior_w
        self._fixed_w = fixed_w
        self._bounds = bounds
        self._regression = StreamingLogLogRegression()

    @classmethod
    def pinned(cls, w: float) -> "GrowthModel":
        """A growth model with an analytically known power."""
        return cls(fixed_w=w)

    @property
    def is_pinned(self) -> bool:
        return self._fixed_w is not None

    def observe(self, t: float, mean_cardinality: float) -> None:
        """Record the mean group cardinality observed at progress ``t``."""
        if self._fixed_w is not None:
            return  # nothing to fit
        if t >= 1.0 or mean_cardinality <= 0:
            # t == 1 carries no information about growth (scale is 1) and
            # zero cardinality would break the log transform.
            return
        self._regression.observe(t, mean_cardinality)

    def snapshot(self) -> GrowthSnapshot:
        """Current (w, Var(w)) to use for inference."""
        if self._fixed_w is not None:
            return GrowthSnapshot(self._fixed_w, 0.0, 0)
        if not self._regression.can_fit():
            return GrowthSnapshot(self._prior_w, 0.0, self._regression.n)
        lo, hi = self._bounds
        w = min(hi, max(lo, self._regression.slope))
        return GrowthSnapshot(
            w, self._regression.slope_variance, self._regression.n
        )
