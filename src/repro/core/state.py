"""Intrinsic state maintenance: versions × partials (paper §4.2, Fig 5).

Two structures live here:

* :class:`IntrinsicStore` — the generic versions-and-partials bookkeeping an
  edf exposes.  Appending a partial is an incremental update; beginning a
  new version is a complete refresh.
* :class:`GroupedAggregateState` — the aggregate operator's intrinsic
  state: one accumulated per-group frame of mergeable columns (see
  ``repro.core.mergeable``) plus exact distinct-value pair frames for
  count-distinct.  It supports both update styles: ``consume_delta``
  merges a partial in (Case 2 input), ``begin_version`` resets for a full
  snapshot (Case 3 / REPLACE input).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe.groupby import (
    AggSpec,
    distinct_rows,
    group_codes,
    group_count,
    group_max,
    group_min,
    group_sum,
)
from repro.core.mergeable import (
    CARDINALITY_COLUMN,
    MergeableAggregate,
    StateColumn,
)

#: Synthetic key column injected for global (ungrouped) aggregates.
SYNTHETIC_KEY = "__group__"


class Version:
    """One version: a list of key-disjoint partials (paper Fig 5)."""

    def __init__(self) -> None:
        self.partials: list[DataFrame] = []

    @property
    def n_partials(self) -> int:
        return len(self.partials)

    def append(self, partial: DataFrame) -> None:
        self.partials.append(partial)

    def frame(self) -> DataFrame:
        if not self.partials:
            raise QueryError("version holds no partials yet")
        return DataFrame.concat(self.partials)


class IntrinsicStore:
    """Versions-and-partials container for a generic edf."""

    def __init__(self) -> None:
        self._versions: list[Version] = []

    @property
    def n_versions(self) -> int:
        return len(self._versions)

    @property
    def latest(self) -> Version:
        if not self._versions:
            raise QueryError("no versions exist yet")
        return self._versions[-1]

    def append_partial(self, partial: DataFrame) -> None:
        """Incremental update: extend the latest version (creating the
        first version if none exists)."""
        if not self._versions:
            self._versions.append(Version())
        self._versions[-1].append(partial)

    def new_version(self, snapshot: DataFrame | None = None) -> None:
        """Complete refresh: start a new version (optionally seeded)."""
        version = Version()
        if snapshot is not None:
            version.append(snapshot)
        self._versions.append(version)

    def latest_frame(self) -> DataFrame:
        return self.latest.frame()


def _merge_kernel(column: StateColumn, codes: np.ndarray, n_groups: int,
                  values: np.ndarray) -> np.ndarray:
    if column.merge == "sum":
        return group_sum(codes, n_groups, values)
    if column.merge == "min":
        return group_min(codes, n_groups, values)
    return group_max(codes, n_groups, values)


class GroupedAggregateState:
    """The aggregate operator's intrinsic state (paper §4.2–§4.3).

    Maintains, per group key:

    * ``__card__`` — the group input cardinality x_i(t),
    * the mergeable state columns of every :class:`AggSpec`, and
    * for count-distinct specs, a distinct (key, value)-pairs frame.

    ``version`` counts complete refreshes; ``rows_consumed`` counts input
    tuples folded into the *current* version (the basis of growth fitting).
    """

    def __init__(
        self,
        by: Sequence[str],
        specs: Sequence[AggSpec],
        track_moments: bool = False,
    ) -> None:
        if not specs:
            raise QueryError("aggregate state requires at least one AggSpec")
        self.by = tuple(by)
        self.specs = tuple(specs)
        self._synthetic_key = not self.by
        self._keys = self.by if self.by else (SYNTHETIC_KEY,)
        self.mergeables = tuple(
            MergeableAggregate(spec, track_moments) for spec in specs
        )
        self._acc: DataFrame | None = None
        self._pairs: dict[str, DataFrame] = {}
        self._values: dict[str, DataFrame] = {}
        self.rows_consumed = 0
        self.version = 1

    # -- bookkeeping -----------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return 0 if self._acc is None else self._acc.n_rows

    @property
    def mean_cardinality(self) -> float:
        if self.n_groups == 0:
            return 0.0
        return self.rows_consumed / self.n_groups

    def begin_version(self) -> None:
        """Complete refresh: drop accumulated state, bump version counter."""
        self._acc = None
        self._pairs = {}
        self._values = {}
        self.rows_consumed = 0
        self.version += 1

    # -- updates ----------------------------------------------------------------
    def _with_key(self, frame: DataFrame) -> DataFrame:
        if not self._synthetic_key:
            return frame
        return frame.with_column(
            SYNTHETIC_KEY, np.zeros(frame.n_rows, dtype=np.int64)
        )

    def consume_delta(self, frame: DataFrame) -> None:
        """Fold one partial into the current version (incremental merge)."""
        if frame.n_rows == 0:
            return
        frame = self._with_key(frame)
        codes, key_frame, n_groups = group_codes(frame, list(self._keys))
        data: dict[str, np.ndarray] = {
            name: key_frame.column(name)
            for name in key_frame.column_names
        }
        data[CARDINALITY_COLUMN] = group_count(codes, n_groups).astype(
            np.float64
        )
        for mergeable in self.mergeables:
            data.update(mergeable.partial_state(frame, codes, n_groups))
        partial_state = DataFrame(data)
        self._acc = (
            partial_state
            if self._acc is None
            else self._merge(self._acc, partial_state)
        )
        for mergeable in self.mergeables:
            if mergeable.needs_distinct_pairs:
                self._consume_pairs(mergeable.spec, frame)
            if mergeable.needs_value_buffer:
                self._consume_values(mergeable.spec, frame)
        self.rows_consumed += frame.n_rows

    def consume_snapshot(self, frame: DataFrame) -> None:
        """Complete refresh from a full snapshot (REPLACE input)."""
        self.begin_version()
        self.consume_delta(frame)

    def _consume_pairs(self, spec: AggSpec, frame: DataFrame) -> None:
        assert spec.column is not None
        pair_cols = [*self._keys, spec.column]
        incoming = distinct_rows(frame.select(pair_cols))
        existing = self._pairs.get(spec.alias)
        merged = (
            incoming
            if existing is None
            else distinct_rows(DataFrame.concat([existing, incoming]))
        )
        self._pairs[spec.alias] = merged

    def _consume_values(self, spec: AggSpec, frame: DataFrame) -> None:
        """Multiset union for quantile buffers (concat, no dedup)."""
        assert spec.column is not None
        incoming = frame.select([*self._keys, spec.column])
        existing = self._values.get(spec.alias)
        self._values[spec.alias] = (
            incoming if existing is None
            else DataFrame.concat([existing, incoming])
        )

    def _merge(self, acc: DataFrame, partial: DataFrame) -> DataFrame:
        combined = DataFrame.concat([acc, partial])
        codes, key_frame, n_groups = group_codes(combined, list(self._keys))
        data: dict[str, np.ndarray] = {
            name: key_frame.column(name)
            for name in key_frame.column_names
        }
        data[CARDINALITY_COLUMN] = group_sum(
            codes, n_groups, combined.column(CARDINALITY_COLUMN)
        )
        for mergeable in self.mergeables:
            for column in mergeable.state_columns:
                data[column.name] = _merge_kernel(
                    column, codes, n_groups, combined.column(column.name)
                )
        return DataFrame(data)

    # -- readers ----------------------------------------------------------------
    def state_frame(self) -> DataFrame:
        """Keys + cardinality + mergeable state columns (current version)."""
        if self._acc is None:
            raise QueryError("aggregate state is empty; nothing consumed yet")
        return self._acc

    def distinct_counts(self, spec: AggSpec) -> np.ndarray:
        """Observed per-group distinct counts for a count_distinct spec,
        aligned with :meth:`state_frame` row order."""
        state = self.state_frame()
        pairs = self._pairs.get(spec.alias)
        if pairs is None or pairs.n_rows == 0:
            return np.zeros(state.n_rows, dtype=np.float64)
        pair_codes, pair_keys, n_pair_groups = group_codes(
            pairs, list(self._keys)
        )
        counts = group_count(pair_codes, n_pair_groups).astype(np.float64)
        # Align pair-derived groups with the accumulated state's rows by a
        # shared factorization over the key columns.
        from repro.dataframe.join import shared_codes, inner_join_indices

        state_codes, key_codes = shared_codes(
            [state.column(k) for k in self._keys],
            [pair_keys.column(k) for k in self._keys],
        )
        li, ri = inner_join_indices(state_codes, key_codes)
        out = np.zeros(state.n_rows, dtype=np.float64)
        out[li] = counts[ri]
        return out

    def sample_quantiles(self, spec: AggSpec) -> np.ndarray:
        """Per-group sample quantiles from the value buffer, aligned with
        :meth:`state_frame` row order (the paper's f_order: the latest
        observed order statistic)."""
        from repro.dataframe.groupby import group_quantile
        from repro.dataframe.join import inner_join_indices, shared_codes

        state = self.state_frame()
        buffer = self._values.get(spec.alias)
        if buffer is None or buffer.n_rows == 0:
            return np.full(state.n_rows, np.nan)
        buf_codes, buf_keys, n_buf_groups = group_codes(
            buffer, list(self._keys)
        )
        assert spec.column is not None
        quantiles = group_quantile(
            buf_codes, n_buf_groups, buffer.column(spec.column),
            spec.quantile_fraction,
        )
        state_codes, key_codes = shared_codes(
            [state.column(k) for k in self._keys],
            [buf_keys.column(k) for k in self._keys],
        )
        li, ri = inner_join_indices(state_codes, key_codes)
        out = np.full(state.n_rows, np.nan)
        out[li] = quantiles[ri]
        return out

    def output_keys(self) -> tuple[str, ...]:
        """Key columns that appear in user-facing output frames."""
        return self.by
