"""Intrinsic state maintenance: versions × partials (paper §4.2, Fig 5).

Two structures live here:

* :class:`IntrinsicStore` — the generic versions-and-partials bookkeeping an
  edf exposes.  Appending a partial is an incremental update; beginning a
  new version is a complete refresh.
* :class:`GroupedAggregateState` — the aggregate operator's intrinsic
  state: fixed-slot numpy arrays of mergeable columns keyed by a
  persistent :class:`~repro.dataframe.groupby.Grouper` slot mapping, plus
  exact distinct-pair counters for count-distinct and slot-aligned
  :class:`~repro.core.orderstat.OrderStatState` for order statistics.
  It supports both update styles: ``consume_delta`` merges a partial in
  (Case 2 input), ``begin_version`` resets for a full snapshot (Case 3 /
  REPLACE input).

``consume_delta`` is deliberately O(|partial| + new groups): incoming rows
are slot-encoded once, per-slot partial aggregates are computed with dense
bincount/segment kernels, and the accumulator arrays are updated in place
(extending only when new groups appear).  The previous implementation
concatenated the accumulated state with every partial and re-ran
``np.unique`` over all groups per message, making per-message cost grow
with total data consumed — exactly the failure mode online aggregation
exists to avoid (arXiv:2303.04103 §7.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe.groupby import AggSpec, Grouper
from repro.core.mergeable import (
    CARDINALITY_COLUMN,
    MergeableAggregate,
    StateColumn,
)
from repro.core.orderstat import DEFAULT_SKETCH_SIZE, OrderStatState

#: Synthetic key column injected for global (ungrouped) aggregates.
SYNTHETIC_KEY = "__group__"


class Version:
    """One version: a list of key-disjoint partials (paper Fig 5)."""

    def __init__(self) -> None:
        self.partials: list[DataFrame] = []

    @property
    def n_partials(self) -> int:
        return len(self.partials)

    def append(self, partial: DataFrame) -> None:
        self.partials.append(partial)

    def frame(self) -> DataFrame:
        if not self.partials:
            raise QueryError("version holds no partials yet")
        return DataFrame.concat(self.partials)


class IntrinsicStore:
    """Versions-and-partials container for a generic edf."""

    def __init__(self) -> None:
        self._versions: list[Version] = []

    @property
    def n_versions(self) -> int:
        return len(self._versions)

    @property
    def latest(self) -> Version:
        if not self._versions:
            raise QueryError("no versions exist yet")
        return self._versions[-1]

    def append_partial(self, partial: DataFrame) -> None:
        """Incremental update: extend the latest version (creating the
        first version if none exists)."""
        if not self._versions:
            self._versions.append(Version())
        self._versions[-1].append(partial)

    def new_version(self, snapshot: DataFrame | None = None) -> None:
        """Complete refresh: start a new version (optionally seeded)."""
        version = Version()
        if snapshot is not None:
            version.append(snapshot)
        self._versions.append(version)

    def latest_frame(self) -> DataFrame:
        return self.latest.frame()


def _identity_fill(merge: str, n: int) -> np.ndarray:
    """Merge-identity values for freshly-allocated state slots."""
    if merge == "sum":
        return np.zeros(n)
    if merge == "prod":
        return np.ones(n)
    return np.full(n, np.nan)  # min/max/first/last: no value seen yet


class GroupedAggregateState:
    """The aggregate operator's intrinsic state (paper §4.2–§4.3).

    Maintains, per group slot:

    * ``__card__`` — the group input cardinality x_i(t),
    * the mergeable state columns of every :class:`AggSpec`,
    * for count-distinct specs, an incrementally-maintained distinct
      (key, value)-pair counter, and
    * for order-statistic specs, a per-slot
      :class:`~repro.core.orderstat.OrderStatState` — the exact value
      multiset as incrementally-merged sorted runs (``quantile_mode
      ="exact"``, the default), or a bounded-memory reservoir sketch
      (``"sketch"``).

    ``version`` counts complete refreshes; ``rows_consumed`` counts input
    tuples folded into the *current* version (the basis of growth fitting).
    """

    def __init__(
        self,
        by: Sequence[str],
        specs: Sequence[AggSpec],
        track_moments: bool = False,
        quantile_mode: str = "exact",
        sketch_size: int = DEFAULT_SKETCH_SIZE,
    ) -> None:
        if not specs:
            raise QueryError("aggregate state requires at least one AggSpec")
        # quantile_mode validation is owned by OrderStatState (built in
        # _reset_slots whenever an order-statistic spec is present).
        self.by = tuple(by)
        self.specs = tuple(specs)
        self.quantile_mode = quantile_mode
        self.sketch_size = sketch_size
        self._synthetic_key = not self.by
        self._keys = self.by if self.by else (SYNTHETIC_KEY,)
        self.mergeables = tuple(
            MergeableAggregate(spec, track_moments) for spec in specs
        )
        self._reset_slots()
        self.rows_consumed = 0
        self.version = 1

    def _reset_slots(self) -> None:
        self._grouper = Grouper(self._keys)
        self._card = np.empty(0, dtype=np.float64)
        self._state: dict[str, np.ndarray] = {}
        self._merge_of: dict[str, str] = {}
        for mergeable in self.mergeables:
            for column in mergeable.state_columns:
                self._state[column.name] = np.empty(0, dtype=np.float64)
                self._merge_of[column.name] = column.merge
        # count_distinct: one pair Grouper (dedup index) + per-slot counts.
        self._pairs: dict[str, Grouper] = {}
        self._distinct_counts: dict[str, np.ndarray] = {
            m.spec.alias: np.empty(0, dtype=np.float64)
            for m in self.mergeables
            if m.needs_distinct_pairs
        }
        # median/quantile: per-spec incremental order-statistic state,
        # slot-aligned with the main Grouper (no key re-encoding on read).
        self._orderstats: dict[str, OrderStatState] = {}
        for mergeable in self.mergeables:
            stats = mergeable.make_order_stat(
                self.quantile_mode, self.sketch_size
            )
            if stats is not None:
                self._orderstats[mergeable.spec.alias] = stats
        self._frame_cache: DataFrame | None = None
        self._perm: np.ndarray | None = None

    # -- bookkeeping -----------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return self._grouper.n_groups

    @property
    def mean_cardinality(self) -> float:
        if self.n_groups == 0:
            return 0.0
        return self.rows_consumed / self.n_groups

    def begin_version(self) -> None:
        """Complete refresh: drop accumulated state, bump version counter."""
        self._reset_slots()
        self.rows_consumed = 0
        self.version += 1

    # -- updates ----------------------------------------------------------------
    def _with_key(self, frame: DataFrame) -> DataFrame:
        if not self._synthetic_key:
            return frame
        return frame.with_column(
            SYNTHETIC_KEY, np.zeros(frame.n_rows, dtype=np.int64)
        )

    def consume_delta(self, frame: DataFrame) -> None:
        """Fold one partial into the current version (incremental merge).

        Cost is O(|partial| + new groups): existing slots are updated in
        place; only previously-unseen group keys allocate new slots.
        """
        if frame.n_rows == 0:
            return
        frame = self._with_key(frame)
        codes = self._grouper.encode(frame)
        n_slots = self._grouper.n_groups
        old_n = len(self._card)
        if n_slots > old_n:
            grow = n_slots - old_n
            self._card = np.concatenate([self._card, np.zeros(grow)])
            for name, acc in self._state.items():
                self._state[name] = np.concatenate(
                    [acc, _identity_fill(self._merge_of[name], grow)]
                )
            for alias, counts in self._distinct_counts.items():
                self._distinct_counts[alias] = np.concatenate(
                    [counts, np.zeros(grow)]
                )
            self._perm = None
        partial_card = np.bincount(codes, minlength=n_slots).astype(
            np.float64
        )
        self._card += partial_card
        present = partial_card[:old_n] > 0
        for mergeable in self.mergeables:
            partial = mergeable.partial_state(frame, codes, n_slots)
            for column in mergeable.state_columns:
                self._merge_column(column, partial[column.name], old_n,
                                   present)
        for mergeable in self.mergeables:
            if mergeable.needs_distinct_pairs:
                self._consume_pairs(mergeable.spec, frame)
            if mergeable.needs_order_stats:
                assert mergeable.spec.column is not None
                self._orderstats[mergeable.spec.alias].consume(
                    codes, frame.column(mergeable.spec.column)
                )
        self.rows_consumed += frame.n_rows
        self._frame_cache = None

    def _merge_column(
        self,
        column: StateColumn,
        part: np.ndarray,
        old_n: int,
        present: np.ndarray,
    ) -> None:
        """Fold one per-slot partial array into the accumulator in place.

        ``sum``/``prod`` columns combine elementwise (absent slots carry
        the identity 0 / 1); ``min``/``max`` columns reduce only over
        slots present in this partial (NaN from genuine NaN input values
        still propagates, as the concat-and-regroup strategy did);
        ``first`` keeps the accumulator once it holds a non-NaN value,
        ``last`` overwrites with the partial's value wherever the partial
        saw one — both in message-arrival order, matching pandas
        first/last over rows in encounter order."""
        acc = self._state[column.name]
        if column.merge == "sum":
            acc += part
            return
        if column.merge == "prod":
            acc *= part
            return
        acc[old_n:] = part[old_n:]  # new slots: first observation wins
        head = acc[:old_n]
        if column.merge == "first":
            take = np.isnan(head) & ~np.isnan(part[:old_n])
            head[take] = part[:old_n][take]
            return
        if column.merge == "last":
            take = ~np.isnan(part[:old_n])
            head[take] = part[:old_n][take]
            return
        reducer = np.minimum if column.merge == "min" else np.maximum
        head[present] = reducer(head[present], part[:old_n][present])

    def consume_snapshot(self, frame: DataFrame) -> None:
        """Complete refresh from a full snapshot (REPLACE input)."""
        self.begin_version()
        self.consume_delta(frame)

    def _consume_pairs(self, spec: AggSpec, frame: DataFrame) -> None:
        """Register this partial's (key, value) pairs, counting only pairs
        never seen before — incoming rows are deduplicated against the
        pair Grouper's persistent index, not the full pair history."""
        assert spec.column is not None
        grouper = self._pairs.get(spec.alias)
        if grouper is None:
            grouper = Grouper((*self._keys, spec.column))
            self._pairs[spec.alias] = grouper
        before = grouper.n_groups
        grouper.encode(frame)
        after = grouper.n_groups
        if after == before:
            return
        new_pairs = grouper.key_frame().slice(before, after)
        # Every key of a new pair was registered with the main grouper when
        # this partial was encoded, so this lookup allocates no slots.
        slots = self._grouper.encode(new_pairs)
        np.add.at(self._distinct_counts[spec.alias], slots, 1.0)

    # -- readers ----------------------------------------------------------------
    def _sort_perm(self) -> np.ndarray:
        """Slot permutation yielding key-sorted output rows (matching the
        ordering the np.unique-based merge used to produce)."""
        if self._perm is None or len(self._perm) != self.n_groups:
            keys = self._grouper.key_frame()
            self._perm = np.lexsort(
                [keys.column(k) for k in reversed(self._keys)]
            )
        return self._perm

    def state_frame(self) -> DataFrame:
        """Keys + cardinality + mergeable state columns (current version),
        one row per group in key-sorted order."""
        if self.n_groups == 0:
            raise QueryError("aggregate state is empty; nothing consumed yet")
        if self._frame_cache is None:
            perm = self._sort_perm()
            keys = self._grouper.key_frame().take(perm)
            data: dict[str, np.ndarray] = {
                name: keys.column(name) for name in keys.column_names
            }
            data[CARDINALITY_COLUMN] = self._card[perm]
            for mergeable in self.mergeables:
                for column in mergeable.state_columns:
                    data[column.name] = self._state[column.name][perm]
            self._frame_cache = DataFrame(data)
        return self._frame_cache

    def distinct_counts(self, spec: AggSpec) -> np.ndarray:
        """Observed per-group distinct counts for a count_distinct spec,
        aligned with :meth:`state_frame` row order."""
        state = self.state_frame()
        grouper = self._pairs.get(spec.alias)
        counts = self._distinct_counts.get(spec.alias)
        if grouper is None or counts is None or grouper.n_groups == 0:
            return np.zeros(state.n_rows, dtype=np.float64)
        return counts[self._sort_perm()]

    def sample_quantiles(self, spec: AggSpec) -> np.ndarray:
        """Per-group sample quantiles from the incremental order-statistic
        state, aligned with :meth:`state_frame` row order (the paper's
        f_order: the latest observed order statistic).

        Slots are shared with the main :class:`Grouper`, so the read is a
        direct slot gather — O(groups + new values since the last read),
        never a re-group of the full history."""
        state = self.state_frame()
        stats = self._orderstats.get(spec.alias)
        if stats is None or stats.n_values == 0:
            return np.full(state.n_rows, np.nan)
        per_slot = stats.quantiles(spec.quantile_fraction, self.n_groups)
        return per_slot[self._sort_perm()]

    def output_keys(self) -> tuple[str, ...]:
        """Key columns that appear in user-facing output frames."""
        return self.by
