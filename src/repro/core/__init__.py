"""edf core: data model, growth-based inference, confidence intervals.

This package is the paper's primary contribution (§3–§6): the evolving
data frame model (properties + states), the monomial cardinality growth
model, aggregate-aware estimators, and the confidence-interval extension.
"""

from repro.core.ci import (
    CIConfig,
    SIGMA_SUFFIX,
    chebyshev_k,
    interval,
    propagate_map_variance,
    sigma_column,
)
from repro.core.edf import EdfSnapshot, EvolvingDataFrame
from repro.core.estimators import (
    estimate_avg,
    estimate_count,
    estimate_count_distinct,
    estimate_order_statistic,
    estimate_sum,
    estimate_variance,
)
from repro.core.growth import (
    GrowthModel,
    GrowthSnapshot,
    StreamingLogLogRegression,
)
from repro.core.inference import AggregateInference
from repro.core.mergeable import (
    CARDINALITY_COLUMN,
    MergeableAggregate,
    StateColumn,
)
from repro.core.orderstat import (
    DEFAULT_SKETCH_SIZE,
    OrderStatState,
    QUANTILE_MODES,
)
from repro.core.properties import Delivery, Progress, StreamInfo
from repro.core.state import (
    GroupedAggregateState,
    IntrinsicStore,
    SYNTHETIC_KEY,
    Version,
)

__all__ = [
    "AggregateInference",
    "CARDINALITY_COLUMN",
    "CIConfig",
    "DEFAULT_SKETCH_SIZE",
    "Delivery",
    "EdfSnapshot",
    "EvolvingDataFrame",
    "GroupedAggregateState",
    "GrowthModel",
    "GrowthSnapshot",
    "IntrinsicStore",
    "MergeableAggregate",
    "OrderStatState",
    "Progress",
    "QUANTILE_MODES",
    "SIGMA_SUFFIX",
    "StateColumn",
    "StreamInfo",
    "StreamingLogLogRegression",
    "SYNTHETIC_KEY",
    "Version",
    "chebyshev_k",
    "estimate_avg",
    "estimate_count",
    "estimate_count_distinct",
    "estimate_order_statistic",
    "estimate_sum",
    "estimate_variance",
    "interval",
    "propagate_map_variance",
    "sigma_column",
]
