"""Mergeable intrinsic representations per aggregate (paper Table 2).

Every aggregate ``op`` admits a state representation and a merge operation
⊎ such that ``op(δ1 ∪ δ2) = op(δ1) ⊎ op(δ2)``:

==================  ===========================  =================
aggregate           intrinsic representation      merge
==================  ===========================  =================
count               count by key                  sum by key
sum                 sum by key                    sum by key
avg                 (sum, count) by key           sum by key
min / max           min / max by key              min / max by key
var / stddev / sem  (count, sum, sumsq) by key    sum by key
prod                product by key                product by key
first / last        first/last non-NaN by key     keep/replace
count_distinct      exact value set by key        set union by key
median / quantile   exact value multiset by key   multiset union
==================  ===========================  =================

Variance keeps raw sums-of-squares (rather than centered m2) so that *all*
numeric merges reduce to elementwise sum/min/max after a key-based
re-group, and count-distinct keeps exact per-group value sets (paper
footnote 3 — never sketches), represented as a distinct (key, value) pairs
frame whose union is concat + distinct.

Order statistics (``median``/``quantile``) carry no flat state columns;
their intrinsic representation is a per-slot
:class:`~repro.core.orderstat.OrderStatState` — the exact multiset as
incrementally-merged sorted runs by default, or an opt-in bounded-memory
reservoir sketch (``quantile_mode="sketch"``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe.groupby import (
    AggSpec,
    group_count,
    group_first_valid,
    group_last_valid,
    group_max,
    group_min,
    group_prod,
    group_sum,
)
from repro.core.orderstat import DEFAULT_SKETCH_SIZE, OrderStatState

#: Name of the synthetic per-group input-cardinality column x_i(t).
CARDINALITY_COLUMN = "__card__"


@dataclass(frozen=True)
class StateColumn:
    """One physical intrinsic-state column and its merge function."""

    name: str
    merge: str  # "sum" | "min" | "max" | "prod" | "first" | "last"

    def __post_init__(self) -> None:
        if self.merge not in ("sum", "min", "max", "prod", "first",
                              "last"):
            raise QueryError(f"unknown merge function {self.merge!r}")


class MergeableAggregate:
    """Intrinsic state layout + partial evaluation for one :class:`AggSpec`.

    ``track_moments`` additionally maintains per-group count/sum-of-squares
    for ``sum``/``avg`` so the CI extension (§6) can derive initial
    variances via the CLT.
    """

    def __init__(self, spec: AggSpec, track_moments: bool = False) -> None:
        self.spec = spec
        self.track_moments = track_moments
        self._columns = self._layout()

    @property
    def needs_distinct_pairs(self) -> bool:
        return self.spec.agg == "count_distinct"

    @property
    def needs_order_stats(self) -> bool:
        """Order statistics beyond min/max keep per-group value state —
        the exact multiset (the quantile analogue of footnote 3's exact
        sets) or an opt-in bounded-memory sketch."""
        return self.spec.agg in ("median", "quantile")

    def make_order_stat(
        self,
        mode: str = "exact",
        sketch_size: int = DEFAULT_SKETCH_SIZE,
    ) -> OrderStatState | None:
        """Fresh per-slot order-statistic state for this spec (None for
        non-quantile aggregates).  Sketch randomness is seeded from the
        alias so repeated runs are reproducible."""
        if not self.needs_order_stats:
            return None
        return OrderStatState(
            mode=mode,
            sketch_size=sketch_size,
            seed=zlib.crc32(self.spec.alias.encode()),
        )

    @property
    def state_columns(self) -> tuple[StateColumn, ...]:
        return self._columns

    def _name(self, part: str) -> str:
        return f"__{self.spec.alias}__{part}"

    def _layout(self) -> tuple[StateColumn, ...]:
        agg = self.spec.agg
        if agg == "count":
            return (StateColumn(self._name("count"), "sum"),)
        if agg == "sum":
            cols = [StateColumn(self._name("sum"), "sum")]
            if self.track_moments:
                cols.append(StateColumn(self._name("count"), "sum"))
                cols.append(StateColumn(self._name("sumsq"), "sum"))
            return tuple(cols)
        if agg == "avg":
            cols = [
                StateColumn(self._name("sum"), "sum"),
                StateColumn(self._name("count"), "sum"),
            ]
            if self.track_moments:
                cols.append(StateColumn(self._name("sumsq"), "sum"))
            return tuple(cols)
        if agg == "min":
            return (StateColumn(self._name("min"), "min"),)
        if agg == "max":
            return (StateColumn(self._name("max"), "max"),)
        if agg in ("var", "stddev", "sem"):
            return (
                StateColumn(self._name("count"), "sum"),
                StateColumn(self._name("sum"), "sum"),
                StateColumn(self._name("sumsq"), "sum"),
            )
        if agg == "prod":
            return (StateColumn(self._name("prod"), "prod"),)
        if agg == "first":
            return (StateColumn(self._name("first"), "first"),)
        if agg == "last":
            return (StateColumn(self._name("last"), "last"),)
        if agg == "count_distinct":
            return ()  # state lives in the distinct-pairs frame
        if agg in ("median", "quantile"):
            return ()  # state lives in the value-buffer frame
        raise QueryError(f"unsupported aggregate {agg!r}")

    def partial_state(
        self, frame: DataFrame, codes: np.ndarray, n_groups: int
    ) -> dict[str, np.ndarray]:
        """Evaluate this aggregate's intrinsic columns over one partial."""
        agg = self.spec.agg
        out: dict[str, np.ndarray] = {}
        if agg in ("count_distinct", "median", "quantile"):
            return out
        if agg == "count":
            if self.spec.column is None:
                out[self._name("count")] = group_count(
                    codes, n_groups
                ).astype(np.float64)
            else:
                values = frame.column(self.spec.column).astype(
                    np.float64, copy=False
                )
                out[self._name("count")] = group_count(
                    codes, n_groups, valid=~np.isnan(values)
                ).astype(np.float64)
            return out
        values = frame.column(self.spec.column)  # type: ignore[arg-type]
        as_float = values.astype(np.float64, copy=False)
        if agg == "sum":
            out[self._name("sum")] = group_sum(codes, n_groups, as_float)
            if self.track_moments:
                out[self._name("count")] = group_count(
                    codes, n_groups, valid=~np.isnan(as_float)
                ).astype(np.float64)
                out[self._name("sumsq")] = group_sum(
                    codes, n_groups, as_float * as_float
                )
        elif agg == "avg":
            out[self._name("sum")] = group_sum(codes, n_groups, as_float)
            out[self._name("count")] = group_count(
                codes, n_groups, valid=~np.isnan(as_float)
            ).astype(np.float64)
            if self.track_moments:
                out[self._name("sumsq")] = group_sum(
                    codes, n_groups, as_float * as_float
                )
        elif agg == "min":
            out[self._name("min")] = group_min(codes, n_groups, as_float)
        elif agg == "max":
            out[self._name("max")] = group_max(codes, n_groups, as_float)
        elif agg in ("var", "stddev", "sem"):
            out[self._name("count")] = group_count(
                codes, n_groups, valid=~np.isnan(as_float)
            ).astype(np.float64)
            out[self._name("sum")] = group_sum(codes, n_groups, as_float)
            out[self._name("sumsq")] = group_sum(
                codes, n_groups, as_float * as_float
            )
        elif agg == "prod":
            out[self._name("prod")] = group_prod(codes, n_groups, as_float)
        elif agg == "first":
            out[self._name("first")] = group_first_valid(
                codes, n_groups, as_float
            )
        elif agg == "last":
            out[self._name("last")] = group_last_valid(
                codes, n_groups, as_float
            )
        else:
            raise QueryError(f"unsupported aggregate {agg!r}")
        return out

    # -- readers used by inference ------------------------------------------
    def read(self, state: DataFrame, part: str) -> np.ndarray:
        return state.column(self._name(part))
