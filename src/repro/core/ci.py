"""Confidence intervals for Deep OLA (paper §6 + Appendix B).

The pipeline is: (1) estimate initial variances of mutable attributes when
they first appear (aggregation-specific estimators), (2) propagate variance
through downstream differentiable operations with the delta method
(first-order Taylor / "propagation of uncertainty"), and (3) derive
distribution-free intervals from variances via Chebyshev's inequality.

Substitutions relative to the paper (documented in DESIGN.md):

* map/projection propagation uses central finite differences instead of
  automatic differentiation (identical first-order result, no AD library);
* cross-covariances between distinct mutable attributes are not tracked
  (Σ is kept diagonal) — TPC-H pipelines propagate few interacting
  attributes, and the paper itself notes only "a small number of
  covariances are relevant";
* min/max initial variances (GEV fitting in the paper) are reported as NaN
  ("unstable" CI in the paper's terminology).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import InferenceError
from repro.dataframe.expr import Expr
from repro.dataframe.frame import DataFrame

#: Suffix appended to an estimate column to hold its standard deviation.
SIGMA_SUFFIX = "__sigma"


def sigma_column(alias: str) -> str:
    """Name of the uncertainty column paired with estimate column
    ``alias``."""
    return alias + SIGMA_SUFFIX


def chebyshev_k(confidence: float) -> float:
    """Chebyshev multiplier k with P(|X−μ| ≥ kσ) ≤ 1 − confidence.

    k = sqrt(1 / (1 − confidence)); k ≈ 4.47 for a 95% interval, matching
    the paper's "k ≈ 4.5 for 95% CI".
    """
    if not 0.0 < confidence < 1.0:
        raise InferenceError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    return math.sqrt(1.0 / (1.0 - confidence))


@dataclass(frozen=True)
class CIConfig:
    """Confidence-interval settings for an aggregation node."""

    confidence: float = 0.95

    @property
    def k(self) -> float:
        return chebyshev_k(self.confidence)


def interval(estimate: np.ndarray, sigma: np.ndarray,
             k: float) -> tuple[np.ndarray, np.ndarray]:
    """Chebyshev interval [est − kσ, est + kσ] (NaN σ → NaN bounds)."""
    estimate = np.asarray(estimate, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    return estimate - k * sigma, estimate + k * sigma


# ---------------------------------------------------------------------------
# Initial variances (paper §6 "Initial Variance", Appendix B)
# ---------------------------------------------------------------------------

def var_count(x_hat: np.ndarray, t: float, var_w: float) -> np.ndarray:
    """Var(f_count) = (x̂ · ln(1/t))² · Var(w)   (Eq. 10/12)."""
    x_hat = np.asarray(x_hat, dtype=np.float64)
    if t >= 1.0:
        return np.zeros_like(x_hat)
    log_term = math.log(1.0 / t)
    return (x_hat * log_term) ** 2 * var_w


def value_variance(count: np.ndarray, total: np.ndarray,
                   sumsq: np.ndarray) -> np.ndarray:
    """Per-group sample variance s² of the underlying values from the
    mergeable (count, sum, sumsq) representation."""
    count = np.asarray(count, dtype=np.float64)
    total = np.asarray(total, dtype=np.float64)
    sumsq = np.asarray(sumsq, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        m2 = sumsq - np.where(
            count > 0, total * total / np.maximum(count, 1.0), 0.0
        )
        s2 = np.where(count > 1, np.maximum(m2, 0.0) /
                      np.maximum(count - 1.0, 1.0), 0.0)
    return s2


def var_partial_sum(count: np.ndarray, s2: np.ndarray) -> np.ndarray:
    """CLT variance of a partial sum of ``count`` i.i.d. samples: x · s²."""
    return np.asarray(count, dtype=np.float64) * np.asarray(
        s2, dtype=np.float64
    )


def var_sum(
    y: np.ndarray,
    x: np.ndarray,
    x_hat: np.ndarray,
    var_y: np.ndarray,
    var_x_hat: np.ndarray,
) -> np.ndarray:
    """Var(f_sum) = (1/x²)·[Var(y)·x̂² + Var(x̂)·y²]   (Eq. 11/13)."""
    y = np.asarray(y, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    x_hat = np.asarray(x_hat, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(
            x > 0,
            (var_y * x_hat**2 + var_x_hat * y**2) / np.maximum(x, 1.0) ** 2,
            0.0,
        )
    return out


def var_avg(s2: np.ndarray, count: np.ndarray) -> np.ndarray:
    """CLT variance of a sample mean: s² / x (paper §6 initial variance)."""
    count = np.asarray(count, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(count > 0, s2 / np.maximum(count, 1.0), 0.0)


def var_count_distinct(
    y: np.ndarray,
    x: np.ndarray,
    x_hat: np.ndarray,
    solution: np.ndarray,
    var_y: np.ndarray,
    var_x_hat: np.ndarray,
) -> np.ndarray:
    """Var(f_cd) via implicit differentiation of Eq. (6) (Eq. 15–19).

    ``solution`` is the Newton–Raphson answer Y; ``x`` is the observed
    group cardinality and ``x_hat`` its estimated final value.  Uses the
    same h(z) kernel as the estimator and the digamma identity
    h'(z) = h(z)·(ψ(X−x−z+1) − ψ(X−z+1)).
    """
    # Deferred so the CI module imports without scipy (estimators pulls
    # scipy at module scope); count_distinct CI is the only caller.
    from scipy.special import digamma  # lint: allow(local-import)

    from repro.core.estimators import _log_h  # lint: allow(local-import)

    y = np.asarray(y, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    x_hat = np.asarray(x_hat, dtype=np.float64)
    solution = np.asarray(solution, dtype=np.float64)
    var_y = np.asarray(var_y, dtype=np.float64)
    var_x_hat = np.asarray(var_x_hat, dtype=np.float64)

    out = np.zeros_like(solution)
    # Valid only where estimation actually ran: a non-degenerate sample and
    # z = X/Y strictly inside the h() domain (z < X − x + 1).
    z_all = np.divide(
        x_hat, solution, out=np.full_like(solution, np.inf),
        where=solution > 0,
    )
    ok = (solution > 0) & (x > 0) & (y > 0) & (z_all < x_hat - x + 1.0)
    if not ok.any():
        return out
    big_x, sol, xx = x_hat[ok], solution[ok], x[ok]
    z = big_x / sol
    h = np.exp(_log_h(z, xx, big_x))
    h_prime = h * (
        digamma(big_x - xx - z + 1.0) - digamma(big_x - z + 1.0)
    )
    denom = (1.0 - h) + z * h_prime
    with np.errstate(invalid="ignore", divide="ignore"):
        var = (var_y[ok] + var_x_hat[ok] * h_prime**2) / np.maximum(
            denom**2, 1e-18
        )
    out[ok] = np.where(np.isfinite(var), np.maximum(var, 0.0), 0.0)
    return out


def proxy_var_distinct_count(y: np.ndarray,
                             solution: np.ndarray) -> np.ndarray:
    """Occupancy-model proxy for Var(y): y(1 − y/Y) (paper cites the
    Poissonized occupied-boxes variance [16]; this is its binomial
    moment-matched form)."""
    y = np.asarray(y, dtype=np.float64)
    solution = np.asarray(solution, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.maximum(y * (1.0 - y / np.maximum(solution, 1.0)), 0.0)


# ---------------------------------------------------------------------------
# Variance propagation through maps (Appendix B "Mapping and Projection")
# ---------------------------------------------------------------------------

#: Relative step used by the central finite-difference Jacobian.
_FD_RELATIVE_STEP = 1e-6


def propagate_map_variance(
    frame: DataFrame,
    expr: Expr,
    input_variances: Mapping[str, np.ndarray],
) -> np.ndarray:
    """First-order (delta-method) variance of ``expr`` over ``frame``.

    ``input_variances`` maps mutable input column names to per-row variance
    arrays.  Derivatives are taken by central finite differences; columns
    absent from ``input_variances`` are treated as exact.  Covariances are
    not tracked (diagonal Σ — see module docstring).
    """
    referenced = expr.columns()
    variance = np.zeros(frame.n_rows, dtype=np.float64)
    for name, var in input_variances.items():
        if name not in referenced:
            continue
        base = frame.column(name).astype(np.float64, copy=False)
        step = _FD_RELATIVE_STEP * np.maximum(np.abs(base), 1.0)
        plus = np.asarray(
            expr.evaluate(frame.with_column(name, base + step)),
            dtype=np.float64,
        )
        minus = np.asarray(
            expr.evaluate(frame.with_column(name, base - step)),
            dtype=np.float64,
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            derivative = (plus - minus) / (2.0 * step)
        derivative = np.where(np.isfinite(derivative), derivative, 0.0)
        variance = variance + derivative**2 * np.asarray(var,
                                                         dtype=np.float64)
    return variance
