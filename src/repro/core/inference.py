"""Growth-based aggregate inference: intrinsic → extrinsic states (§5.1).

``AggregateInference`` owns one :class:`GrowthModel` per aggregate node.
On each emission it (1) observes the node's mean group cardinality at the
current progress, (2) estimates per-group final cardinalities
``x̂ = x / t^w`` (Eq. 4), and (3) applies the aggregate-aware estimator of
every requested aggregate (§5.3).  With a :class:`CIConfig` it additionally
emits per-estimate standard deviations (``<alias>__sigma`` columns) from
the §6 variance rules.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.frame import DataFrame
from repro.dataframe.groupby import AggSpec
from repro.dataframe.schema import AttributeKind, Field, Schema, dtype_of
from repro.core import ci as ci_mod
from repro.core.ci import CIConfig
from repro.core.estimators import (
    estimate_avg,
    estimate_count,
    estimate_count_distinct,
    estimate_order_statistic,
    estimate_sem,
    estimate_sum,
    estimate_variance,
)
from repro.core.growth import GrowthModel, GrowthSnapshot
from repro.core.mergeable import CARDINALITY_COLUMN, MergeableAggregate
from repro.core.state import GroupedAggregateState


class AggregateInference:
    """Produces extrinsic (estimate) frames from an aggregate's intrinsic
    state."""

    def __init__(
        self,
        growth: GrowthModel,
        ci: CIConfig | None = None,
    ) -> None:
        self.growth = growth
        self.ci = ci

    # -- growth bookkeeping ---------------------------------------------------
    def observe(self, state: GroupedAggregateState, t: float) -> None:
        """Record (t, mean group cardinality) into the growth model."""
        if 0.0 < t < 1.0 and state.n_groups > 0:
            self.growth.observe(t, state.mean_cardinality)

    # -- estimation --------------------------------------------------------------
    def infer(self, state: GroupedAggregateState, t: float) -> DataFrame:
        """Extrinsic snapshot: keys + one estimate column per AggSpec."""
        intrinsic = state.state_frame()
        snap = self.growth.snapshot()
        card = intrinsic.column(CARDINALITY_COLUMN).astype(np.float64)
        scale = 1.0 if t >= 1.0 else snap.scale(t)
        x_hat = card * scale

        keys = state.output_keys()
        data: dict[str, np.ndarray] = {
            name: intrinsic.column(name) for name in keys
        }
        fields = [
            Field(name, dtype_of(intrinsic.column(name)),
                  AttributeKind.CONSTANT)
            for name in keys
        ]

        var_x_hat = (
            ci_mod.var_count(x_hat, t, snap.var_w)
            if self.ci is not None
            else None
        )
        for mergeable in state.mergeables:
            estimate, sigma = self._estimate_one(
                mergeable, state, intrinsic, card, x_hat, t, snap, var_x_hat
            )
            alias = mergeable.spec.alias
            data[alias] = estimate
            fields.append(Field(alias, dtype_of(estimate),
                                AttributeKind.MUTABLE))
            if sigma is not None:
                name = ci_mod.sigma_column(alias)
                data[name] = sigma
                fields.append(Field(name, dtype_of(sigma),
                                    AttributeKind.MUTABLE))
        return DataFrame(data, schema=Schema(fields))

    def _estimate_one(
        self,
        mergeable: MergeableAggregate,
        state: GroupedAggregateState,
        intrinsic: DataFrame,
        card: np.ndarray,
        x_hat: np.ndarray,
        t: float,
        snap: GrowthSnapshot,
        var_x_hat: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """(estimate, sigma-or-None) for one aggregate spec."""
        spec: AggSpec = mergeable.spec
        agg = spec.agg
        want_ci = self.ci is not None

        if agg == "count":
            raw = mergeable.read(intrinsic, "count")
            if spec.column is None:
                estimate = estimate_count(x_hat)
            else:
                estimate = estimate_sum(raw, card, x_hat)
            sigma = np.sqrt(var_x_hat) if want_ci else None
            return estimate, sigma

        # Finite-population correction: the observed rows are a sample
        # *without replacement* of the final data, so sampling variance
        # shrinks by (1 − t) and vanishes at completion (Fig 10a: the CI
        # converges onto the exact answer).
        fpc = max(0.0, 1.0 - t)

        if agg == "sum":
            raw = mergeable.read(intrinsic, "sum")
            estimate = estimate_sum(raw, card, x_hat)
            if not want_ci:
                return estimate, None
            if mergeable.track_moments:
                s2 = ci_mod.value_variance(
                    mergeable.read(intrinsic, "count"),
                    raw,
                    mergeable.read(intrinsic, "sumsq"),
                )
                var_y = ci_mod.var_partial_sum(card, s2) * fpc
            else:
                var_y = np.zeros_like(estimate)
            sigma = np.sqrt(
                ci_mod.var_sum(raw, card, x_hat, var_y, var_x_hat)
            )
            return estimate, sigma

        if agg == "avg":
            total = mergeable.read(intrinsic, "sum")
            count = mergeable.read(intrinsic, "count")
            estimate = estimate_avg(total, count)
            if not want_ci:
                return estimate, None
            if mergeable.track_moments:
                s2 = ci_mod.value_variance(
                    count, total, mergeable.read(intrinsic, "sumsq")
                )
            else:
                s2 = np.zeros_like(estimate)
            sigma = np.sqrt(ci_mod.var_avg(s2, count) * fpc)
            return estimate, sigma

        if agg in ("min", "max"):
            raw = mergeable.read(intrinsic, agg)
            estimate = estimate_order_statistic(raw)
            # GEV-based initial variance is out of scope (see ci module
            # docstring); CIs for extreme order statistics are "unstable".
            sigma = np.full_like(estimate, np.nan) if want_ci else None
            return estimate, sigma

        if agg in ("var", "stddev"):
            count = mergeable.read(intrinsic, "count")
            total = mergeable.read(intrinsic, "sum")
            sumsq = mergeable.read(intrinsic, "sumsq")
            estimate = estimate_variance(count, total, sumsq)
            if agg == "stddev":
                with np.errstate(invalid="ignore"):
                    estimate = np.sqrt(estimate)
            sigma = np.full_like(estimate, np.nan) if want_ci else None
            return estimate, sigma

        if agg == "sem":
            count = mergeable.read(intrinsic, "count")
            total = mergeable.read(intrinsic, "sum")
            sumsq = mergeable.read(intrinsic, "sumsq")
            estimate = estimate_sem(count, total, sumsq)
            # Interval estimation for a dispersion statistic is out of
            # scope (same stance as var/stddev).
            sigma = np.full_like(estimate, np.nan) if want_ci else None
            return estimate, sigma

        if agg in ("prod", "first", "last"):
            # Raw merged values, no growth scaling: scaling a running
            # product by a cardinality ratio has no unbiasedness story
            # (the estimate would grow exponentially in group size), and
            # first/last are point observations that only settle/track —
            # all three converge to the exact answer at t = 1.
            raw = mergeable.read(intrinsic, agg)
            estimate = np.asarray(raw, dtype=np.float64)
            sigma = np.full_like(estimate, np.nan) if want_ci else None
            return estimate, sigma

        if agg in ("median", "quantile"):
            # Incremental read: the state answers from slot-aligned merged
            # runs (exact mode) or a bounded reservoir (sketch mode) —
            # never by re-grouping the consumed history.
            estimate = state.sample_quantiles(spec)
            # Sample quantiles are asymptotically unbiased (§5.4, van der
            # Vaart 21.2); interval estimation (bootstrap) is out of
            # scope, like min/max.
            sigma = np.full_like(estimate, np.nan) if want_ci else None
            return estimate, sigma

        if agg == "count_distinct":
            observed = state.distinct_counts(spec)
            estimate = estimate_count_distinct(observed, card, x_hat)
            if not want_ci:
                return estimate, None
            var_y = ci_mod.proxy_var_distinct_count(observed, estimate)
            sigma = np.sqrt(
                ci_mod.var_count_distinct(
                    observed, card, x_hat, estimate, var_y, var_x_hat
                )
            )
            return estimate, sigma

        raise AssertionError(f"unhandled aggregate {agg!r}")
