"""User-visible evolving data frame handle (paper §3.1).

An edf is a map from progress ``t ∈ (0, 1]`` to data frames, realized here
as an ordered series of :class:`EdfSnapshot` states.  ``get()`` returns the
latest state; ``get_final()`` returns the t = 1 state and raises if the
stream has not completed (engines deliver completion synchronously in this
reproduction, so there is nothing to block on — see ``WakeContext.run``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ExecutionError
from repro.dataframe.frame import DataFrame
from repro.core.properties import Progress


@dataclass(frozen=True)
class EdfSnapshot:
    """One state of an evolving data frame."""

    frame: DataFrame
    progress: Progress
    sequence: int
    wall_time: float  # seconds since query start
    rows_processed: int  # cumulative source tuples consumed ("work")

    @property
    def t(self) -> float:
        return self.progress.fraction

    @property
    def is_final(self) -> bool:
        return self.progress.is_complete


class EvolvingDataFrame:
    """An ordered series of converging snapshots (closed under edf ops).

    The 2C properties (§3.1) hold by construction: every snapshot shares
    one schema (consistency) and the last snapshot of a completed stream
    is the exact answer (convergence; enforced end-to-end by the test
    suite against reference implementations).
    """

    def __init__(self, name: str = "edf") -> None:
        self.name = name
        self._snapshots: list[EdfSnapshot] = []

    # -- engine-side ----------------------------------------------------------
    def append(self, snapshot: EdfSnapshot) -> None:
        if self._snapshots:
            previous = self._snapshots[-1]
            if not previous.frame.schema.same_layout(snapshot.frame.schema):
                raise ExecutionError(
                    f"edf {self.name!r} violated consistency: schema changed "
                    f"between snapshots {previous.sequence} and "
                    f"{snapshot.sequence}"
                )
        self._snapshots.append(snapshot)

    # -- user-side ----------------------------------------------------------
    @property
    def snapshots(self) -> tuple[EdfSnapshot, ...]:
        return tuple(self._snapshots)

    def snapshot(self, index: int) -> EdfSnapshot:
        """O(1) positional access (``snapshots`` copies the whole
        history per call — incremental consumers like the service's
        snapshot pump should index instead)."""
        return self._snapshots[index]

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[EdfSnapshot]:
        return iter(self._snapshots)

    @property
    def is_final(self) -> bool:
        return bool(self._snapshots) and self._snapshots[-1].is_final

    def get(self) -> DataFrame:
        """Latest (most accurate, in expectation) estimate frame."""
        if not self._snapshots:
            raise ExecutionError(f"edf {self.name!r} has no snapshots yet")
        return self._snapshots[-1].frame

    def get_final(self) -> DataFrame:
        """The exact t = 1 answer."""
        if not self.is_final:
            raise ExecutionError(
                f"edf {self.name!r} has not reached t=1 "
                f"(have {len(self._snapshots)} snapshots)"
            )
        return self._snapshots[-1].frame

    def first(self) -> EdfSnapshot:
        """The first estimate (the OLA interactivity headline, §8.2)."""
        if not self._snapshots:
            raise ExecutionError(f"edf {self.name!r} has no snapshots yet")
        return self._snapshots[0]

    def describe(self) -> DataFrame:
        """One row per snapshot: sequence, t, wall time, rows read,
        result rows — the refinement trace as a frame."""
        snaps = self._snapshots
        return DataFrame(
            {
                "sequence": np.array(
                    [s.sequence for s in snaps], dtype=np.int64),
                "t": np.array([s.t for s in snaps]),
                "wall_time": np.array([s.wall_time for s in snaps]),
                "rows_processed": np.array(
                    [s.rows_processed for s in snaps], dtype=np.int64),
                "result_rows": np.array(
                    [s.frame.n_rows for s in snaps], dtype=np.int64),
            }
        )
