"""edf evolution properties: progress and delivery semantics (paper §4.1).

*Progress* ``t`` is the ratio of original input tuples processed so far to
the total that must be processed (known from catalog metadata, §4.4).  With
multiple sources (joins), each message tracks per-source counters and the
scalar ``t`` is the minimum per-source fraction among still-incomplete
sources — the "driving" stream.  Completed sources (e.g. hash-join build
tables) contribute 1 and therefore never dilute the driver's fraction.

*Delivery* captures how a stream communicates change (paper §4.2, Fig 5):
``DELTA`` messages append partials to the current version (Case 1 ops),
while ``REPLACE`` messages begin a new version holding a full snapshot
(Cases 2–3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.errors import ExecutionError


class Delivery(enum.Enum):
    """How a stream's messages must be interpreted by consumers."""

    DELTA = "delta"  # append-only partials; prior output remains valid
    REPLACE = "replace"  # full snapshots; prior output is superseded


@dataclass(frozen=True)
class Progress:
    """Immutable per-source progress counters.

    ``done`` and ``total`` map source names to tuple counts.  Sources are
    the base tables feeding the query (paper §4.1: progress is defined over
    *original input* tuples, and "every operation simply propagates the
    progress value").
    """

    done: Mapping[str, int] = field(default_factory=dict)
    total: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "done", MappingProxyType(dict(self.done)))
        object.__setattr__(self, "total", MappingProxyType(dict(self.total)))
        for source, count in self.done.items():
            if source not in self.total:
                raise ExecutionError(
                    f"progress for {source!r} has done={count} but no total"
                )
            if count > self.total[source]:
                raise ExecutionError(
                    f"progress for {source!r} exceeds total: "
                    f"{count} > {self.total[source]}"
                )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def start(cls, source: str, total: int) -> "Progress":
        return cls(done={source: 0}, total={source: total})

    def advanced(self, source: str, rows: int) -> "Progress":
        """A copy with ``rows`` more tuples consumed from ``source``."""
        done = dict(self.done)
        done[source] = done.get(source, 0) + rows
        return Progress(done=done, total=dict(self.total))

    def merged(self, other: "Progress") -> "Progress":
        """Combine progress from two streams (per-source max of done)."""
        done = dict(self.done)
        total = dict(self.total)
        for source, count in other.done.items():
            done[source] = max(done.get(source, 0), count)
        for source, count in other.total.items():
            if source in total and total[source] != count:
                raise ExecutionError(
                    f"conflicting totals for source {source!r}: "
                    f"{total[source]} vs {count}"
                )
            total[source] = count
        return Progress(done=done, total=total)

    # -- scalar views ----------------------------------------------------------
    @property
    def fraction(self) -> float:
        """Scalar progress t ∈ (0, 1]: the minimum per-source fraction
        among incomplete sources (completed sources count as 1)."""
        fractions = []
        for source, total in self.total.items():
            if total <= 0:
                continue
            fractions.append(min(1.0, self.done.get(source, 0) / total))
        if not fractions:
            return 1.0
        incomplete = [f for f in fractions if f < 1.0]
        return min(incomplete) if incomplete else 1.0

    @property
    def weighted_fraction(self) -> float:
        """Tuple-weighted overall fraction (reported alongside ``fraction``)."""
        total = sum(self.total.values())
        if total <= 0:
            return 1.0
        done = sum(
            min(self.done.get(s, 0), t) for s, t in self.total.items()
        )
        return min(1.0, done / total)

    @property
    def is_complete(self) -> bool:
        return all(
            self.done.get(source, 0) >= total
            for source, total in self.total.items()
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{s}:{self.done.get(s, 0)}/{t}" for s, t in sorted(
                self.total.items())
        )
        return f"Progress(t={self.fraction:.3f}; {parts})"


@dataclass(frozen=True)
class StreamInfo:
    """Plan-time description of an edf stream flowing along a graph edge.

    Mirrors the paper's edf properties (§3.1, §4.1): the schema (with
    constant/mutable attribute kinds), the primary key, the physical
    clustering key (if any), and the delivery semantics.  Operators use
    this to pick execution strategies (e.g. merge vs hash join, local vs
    shuffle aggregation) at graph-build time.
    """

    schema: object  # repro.dataframe.Schema (kept loose to avoid cycles)
    primary_key: tuple[str, ...] = ()
    clustering_key: tuple[str, ...] = ()
    delivery: Delivery = Delivery.DELTA

    def clustered_on(self, keys: tuple[str, ...]) -> bool:
        """True when this stream's clustering key is a subset of ``keys``.

        If every clustering column is among the grouping/join keys, rows of
        one cluster can never spread across partitions, enabling local
        (Case 1) processing.
        """
        return bool(self.clustering_key) and set(
            self.clustering_key
        ).issubset(set(keys))
