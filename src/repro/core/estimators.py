"""Aggregate-aware estimators f(y, x, x̂) (paper §5.3).

Each estimator maps the raw (intrinsic) aggregate value ``y`` observed over
``x`` tuples of a group, together with the estimated final group
cardinality ``x̂``, to an unbiased estimate of the final aggregate:

* count       →  x̂
* sum         →  (y / x) · x̂
* weighted avg → identity (the scale factors cancel, Eq. 5)
* count-distinct → finite-population method-of-moments (Haas et al. [36]),
  solved by bracketed Newton–Raphson on Eq. (6) with log-gamma terms
* order statistics (min/max/median/quantiles) → identity (latest value)

All functions are vectorized over numpy arrays of groups.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma, gammaln

#: Newton–Raphson controls for the count-distinct solver.
_CD_TOLERANCE = 1e-9
_CD_MAX_STEPS = 60


def estimate_count(x_hat: np.ndarray) -> np.ndarray:
    """f_count: the estimated final cardinality itself."""
    return np.asarray(x_hat, dtype=np.float64)


def estimate_sum(y: np.ndarray, x: np.ndarray,
                 x_hat: np.ndarray) -> np.ndarray:
    """f_sum: scale the raw sum by the projected cardinality ratio."""
    y = np.asarray(y, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    x_hat = np.asarray(x_hat, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        scaled = np.where(x > 0, y / np.maximum(x, 1.0) * x_hat, 0.0)
    return scaled


def estimate_avg(sum_y: np.ndarray, count_y: np.ndarray) -> np.ndarray:
    """f_avg: ratio of sums — scaling cancels (Eq. 5), so identity."""
    sum_y = np.asarray(sum_y, dtype=np.float64)
    count_y = np.asarray(count_y, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(count_y > 0, sum_y / np.maximum(count_y, 1.0),
                        np.nan)


def estimate_order_statistic(y: np.ndarray) -> np.ndarray:
    """f_order: latest observed value (min/max/quantiles), §5.3."""
    return np.asarray(y, dtype=np.float64)


def estimate_variance(count: np.ndarray, total: np.ndarray,
                      sumsq: np.ndarray) -> np.ndarray:
    """Sample variance from mergeable (count, sum, sum-of-squares).

    Weighted-average-like aggregates need no growth scaling (§5.3); the
    estimate converges to the exact sample variance at t = 1.
    """
    count = np.asarray(count, dtype=np.float64)
    total = np.asarray(total, dtype=np.float64)
    sumsq = np.asarray(sumsq, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        m2 = sumsq - np.where(count > 0, total * total / np.maximum(count, 1),
                              0.0)
        var = np.where(count > 1, np.maximum(m2, 0.0) /
                       np.maximum(count - 1, 1), np.nan)
    return var


def estimate_sem(count: np.ndarray, total: np.ndarray,
                 sumsq: np.ndarray) -> np.ndarray:
    """Standard error of the mean from the variance triple.

    ``sqrt(s² / n)`` with the ddof-1 sample variance — pandas ``sem``
    semantics.  Like variance, a weighted-average-like aggregate: no
    growth scaling, converges to the exact value at t = 1.
    """
    count = np.asarray(count, dtype=np.float64)
    var = estimate_variance(count, total, sumsq)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.sqrt(var / np.maximum(count, 1.0))


# ---------------------------------------------------------------------------
# Count-distinct: finite-population method-of-moments (Eq. 6-7)
# ---------------------------------------------------------------------------

def _log_h(z: np.ndarray, x: np.ndarray, big_x: np.ndarray) -> np.ndarray:
    """log h(z) with h from Eq. (7), evaluated via log-gamma for stability.

    h(z) = Γ(X−z+1)Γ(X−x+1) / (Γ(X−x−z+1)Γ(X+1)) — the probability that a
    particular value (occurring X/Y times) is absent from a uniform sample
    of x tuples out of X.
    """
    return (
        gammaln(big_x - z + 1.0)
        + gammaln(big_x - x + 1.0)
        - gammaln(big_x - x - z + 1.0)
        - gammaln(big_x + 1.0)
    )


def _g(candidate_y: np.ndarray, y: np.ndarray, x: np.ndarray,
       big_x: np.ndarray) -> np.ndarray:
    """Residual of Eq. (6): Y·(1 − h(X/Y)) − y."""
    z = big_x / candidate_y
    return candidate_y * (1.0 - np.exp(_log_h(z, x, big_x))) - y


def _g_prime(candidate_y: np.ndarray, y: np.ndarray, x: np.ndarray,
             big_x: np.ndarray) -> np.ndarray:
    """d/dY of Eq. (6) residual via digamma (h'(z) in log form)."""
    z = big_x / candidate_y
    h = np.exp(_log_h(z, x, big_x))
    # dh/dz = h(z) * (ψ(X−x−z+1) − ψ(X−z+1))
    dh_dz = h * (digamma(big_x - x - z + 1.0) - digamma(big_x - z + 1.0))
    # dz/dY = −X / Y²
    dz_dy = -big_x / (candidate_y * candidate_y)
    return (1.0 - h) - candidate_y * dh_dz * dz_dy


def estimate_count_distinct(
    y: np.ndarray, x: np.ndarray, x_hat: np.ndarray
) -> np.ndarray:
    """f_cd: final distinct-count estimates for every group (vectorized).

    Solves Eq. (6) per group with Newton–Raphson, falling back to bisection
    steps whenever Newton would leave the valid bracket
    ``[max(y, X/(X−x+1)), X]``.  Degenerate groups (already-complete, or
    fully-distinct samples) short-circuit to their known answers.
    """
    y = np.asarray(y, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    big_x = np.asarray(x_hat, dtype=np.float64)
    out = y.astype(np.float64).copy()

    # Groups where estimation applies: strictly more data expected and a
    # non-degenerate sample.  If x >= X the sample is the population.
    active = (big_x > x + 0.5) & (x > 0) & (y > 0)
    # Fully-distinct samples (y == x) extrapolate to fully-distinct finals.
    all_distinct = active & (y >= x)
    out[all_distinct] = big_x[all_distinct]
    active &= ~all_distinct
    if not active.any():
        return out

    ya, xa, bxa = y[active], x[active], big_x[active]
    # Bracket: Y must keep z = X/Y inside the h() domain (z < X − x + 1)
    # and can never be below the observed distinct count or above X.
    lo = np.maximum(ya, bxa / (bxa - xa + 1.0) + 1e-9)
    hi = bxa.copy()
    current = np.clip(ya * bxa / xa, lo, hi)  # linear-scaling warm start

    g_lo = _g(lo, ya, xa, bxa)
    # If even the lower bracket over-shoots, the observed y is already
    # consistent with the minimum possible Y: keep lo.
    for _ in range(_CD_MAX_STEPS):
        residual = _g(current, ya, xa, bxa)
        done = np.abs(residual) <= _CD_TOLERANCE * np.maximum(ya, 1.0)
        if done.all():
            break
        # maintain bisection bracket: g is increasing in Y
        increase = residual < 0
        lo = np.where(increase & ~done, current, lo)
        hi = np.where(~increase & ~done, current, hi)
        slope = _g_prime(current, ya, xa, bxa)
        with np.errstate(invalid="ignore", divide="ignore"):
            newton = current - residual / slope
        bad = (
            ~np.isfinite(newton) | (newton <= lo) | (newton >= hi)
        )
        nxt = np.where(bad, 0.5 * (lo + hi), newton)
        current = np.where(done, current, nxt)

    # Where the bracket was degenerate (g(lo) > 0), fall back to lo.
    current = np.where(g_lo > 0, np.maximum(ya, lo), current)
    out[active] = np.maximum(current, ya)
    return out
