"""Incremental per-group order-statistic state (paper §5.3–§5.4).

The paper's estimator for ``median``/``quantile`` is the *sample* order
statistic over everything observed so far (the quantile analogue of
footnote 3's exact multisets).  The seed implementation kept the raw
(key, value) rows and re-ran ``group_codes`` + ``group_quantile`` over the
entire concatenated history on every snapshot read — the one remaining
O(total-consumed) read path (arXiv:2303.04103 §7.2 names per-message cost
tracking *partition* size as the invariant online aggregation must keep).

:class:`OrderStatState` replaces that buffer with per-slot sorted runs
keyed by the aggregate state's persistent
:class:`~repro.dataframe.groupby.Grouper` slot mapping:

* ``consume`` is O(|partial|): the incoming slot codes and values are
  recorded as a pending run — no touch of history, no key re-encoding.
* reads merge pending runs into a cached slot-sorted buffer.  Each pending
  run is sorted once — O(|partial| log |partial|) — and folded in with a
  per-touched-slot ``searchsorted`` + one linear gather, so the only term
  that grows with history is a memcpy-speed copy of the merged buffer.
  Between snapshots with no new data the read is O(groups).
* quantiles come straight from the merged buffer through
  :func:`~repro.dataframe.groupby.slot_quantile` (the same interpolation
  the one-shot kernel uses), so exact mode is bit-identical to a
  from-scratch ``group_quantile`` over the full history.

Two modes:

* ``"exact"`` (default) — the full multiset, preserving footnote-3
  semantics; memory grows with consumed rows.
* ``"sketch"`` (opt-in) — a per-slot reservoir sample of bounded size
  (deterministically seeded), for bounded-memory operation at scale.
  Estimates become approximate, including the t = 1 final snapshot.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import QueryError
from repro.dataframe.groupby import slot_quantile

#: Accepted order-statistic maintenance modes.
QUANTILE_MODES = ("exact", "sketch")

#: Default per-slot reservoir capacity in sketch mode.
DEFAULT_SKETCH_SIZE = 1024


def _slot_segments(slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(starts, ends) of the contiguous slot segments of a slot-sorted
    code array."""
    starts = np.flatnonzero(np.r_[True, np.diff(slots) != 0])
    ends = np.r_[starts[1:], len(slots)]
    return starts, ends


class OrderStatState:
    """Per-slot value multiset (or sketch) answering quantile reads.

    Values are float64 and may contain NaN; NaN sorts last and counts
    toward the multiset size, matching the one-shot kernel.  Slots are
    dense ids handed out by the owning state's ``Grouper`` — arrays here
    only ever extend, mirroring the slot arrays in
    :class:`~repro.core.state.GroupedAggregateState`.
    """

    def __init__(
        self,
        mode: str = "exact",
        sketch_size: int = DEFAULT_SKETCH_SIZE,
        seed: int = 0,
    ) -> None:
        if mode not in QUANTILE_MODES:
            raise QueryError(
                f"unknown quantile_mode {mode!r}; expected one of "
                f"{QUANTILE_MODES}"
            )
        if mode == "sketch" and sketch_size < 2:
            raise QueryError("sketch_size must be >= 2")
        self.mode = mode
        self.sketch_size = int(sketch_size)
        self._rows_consumed = 0
        # exact mode: merged buffer sorted by (slot, value) + pending runs
        self._merged = np.empty(0, dtype=np.float64)
        self._counts = np.empty(0, dtype=np.int64)
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []
        # sketch mode: fixed-width reservoir matrix + per-slot counters
        self._rng = np.random.default_rng(zlib.crc32(b"orderstat") + seed)
        self._reservoir = np.empty((0, self.sketch_size), dtype=np.float64)
        self._fill = np.empty(0, dtype=np.int64)
        self._seen = np.empty(0, dtype=np.int64)
        self._sketch_sorted: np.ndarray | None = None  # read cache

    @property
    def n_values(self) -> int:
        """Rows folded in so far (multiset size across all slots)."""
        return self._rows_consumed

    def nbytes(self) -> int:
        """Buffer bytes held, including per-slot bookkeeping and read
        caches (peak-memory accounting)."""
        exact = self._merged.nbytes + self._counts.nbytes + sum(
            s.nbytes + v.nbytes for s, v in self._pending
        )
        sketch = (self._reservoir.nbytes + self._fill.nbytes
                  + self._seen.nbytes)
        if self._sketch_sorted is not None:
            sketch += self._sketch_sorted.nbytes
        return exact + sketch

    # -- updates ---------------------------------------------------------------
    def consume(self, slots: np.ndarray, values: np.ndarray) -> None:
        """Fold one partial in: ``slots`` are dense Grouper codes aligned
        with ``values``.  O(|partial|) — exact mode just records the run;
        sketch mode updates the touched reservoirs."""
        if len(slots) == 0:
            return
        values = values.astype(np.float64, copy=False)
        self._rows_consumed += len(slots)
        if self.mode == "exact":
            self._pending.append((slots, values))
            return
        self._consume_sketch(slots, values)

    # -- exact mode ------------------------------------------------------------
    def _consolidate(self) -> None:
        """Merge pending runs into the slot-sorted buffer (amortized on
        read; a no-op between snapshots with no new data)."""
        if not self._pending:
            return
        if len(self._pending) == 1:
            p_slots, p_vals = self._pending[0]
        else:
            p_slots = np.concatenate([s for s, _ in self._pending])
            p_vals = np.concatenate([v for _, v in self._pending])
        self._pending = []
        order = np.lexsort((p_vals, p_slots))
        p_slots = p_slots[order]
        p_vals = p_vals[order]

        n_slots = max(len(self._counts), int(p_slots[-1]) + 1)
        old_counts = self._counts
        if len(old_counts) < n_slots:
            old_counts = np.concatenate(
                [old_counts,
                 np.zeros(n_slots - len(old_counts), dtype=np.int64)]
            )
        if self._merged.size == 0:
            self._merged = p_vals
        else:
            offsets = np.concatenate(
                ([0], np.cumsum(old_counts))
            )
            positions = np.empty(len(p_vals), dtype=np.int64)
            starts, ends = _slot_segments(p_slots)
            merged = self._merged
            for s0, e0 in zip(starts.tolist(), ends.tolist()):
                slot = int(p_slots[s0])
                lo, hi = offsets[slot], offsets[slot + 1]
                positions[s0:e0] = lo + np.searchsorted(
                    merged[lo:hi], p_vals[s0:e0], side="left"
                )
            # Linear two-way merge: scatter the new run into its gap
            # positions, fill the rest with the old buffer in order.
            target = positions + np.arange(len(p_vals), dtype=np.int64)
            out = np.empty(len(merged) + len(p_vals), dtype=np.float64)
            out[target] = p_vals
            keep = np.ones(len(out), dtype=bool)
            keep[target] = False
            out[keep] = merged
            self._merged = out
        self._counts = old_counts + np.bincount(
            p_slots, minlength=n_slots
        ).astype(np.int64)

    # -- sketch mode -----------------------------------------------------------
    def _grow_sketch(self, n_slots: int) -> None:
        grow = n_slots - len(self._fill)
        if grow <= 0:
            return
        self._reservoir = np.concatenate(
            [self._reservoir,
             np.empty((grow, self.sketch_size), dtype=np.float64)]
        )
        self._fill = np.concatenate(
            [self._fill, np.zeros(grow, dtype=np.int64)]
        )
        self._seen = np.concatenate(
            [self._seen, np.zeros(grow, dtype=np.int64)]
        )

    def _consume_sketch(self, slots: np.ndarray, values: np.ndarray) -> None:
        """Algorithm-R reservoir update per touched slot (stream order
        preserved by the stable sort)."""
        self._sketch_sorted = None
        self._grow_sketch(int(slots.max()) + 1)
        order = np.argsort(slots, kind="stable")
        slots = slots[order]
        values = values[order]
        k = self.sketch_size
        starts, ends = _slot_segments(slots)
        for s0, e0 in zip(starts.tolist(), ends.tolist()):
            slot = int(slots[s0])
            vals = values[s0:e0]
            fill = int(self._fill[slot])
            seen = int(self._seen[slot])
            take = min(k - fill, len(vals))
            if take:
                self._reservoir[slot, fill:fill + take] = vals[:take]
                fill += take
            rest = vals[take:]
            if len(rest):
                # 1-based stream index of each remaining element
                t = seen + take + 1 + np.arange(len(rest))
                accept = np.flatnonzero(self._rng.random(len(rest)) * t < k)
                if len(accept):
                    cells = self._rng.integers(0, k, size=len(accept))
                    self._reservoir[slot, cells] = rest[accept]
            self._fill[slot] = fill
            self._seen[slot] = seen + len(vals)

    # -- reads -----------------------------------------------------------------
    def quantiles(self, q: float, n_slots: int) -> np.ndarray:
        """Per-slot sample quantile, NaN for slots with no values.  The
        result is indexed by dense slot id (length ``n_slots``)."""
        if self.mode == "exact":
            self._consolidate()
            counts = self._counts
            if len(counts) < n_slots:
                counts = np.concatenate(
                    [counts,
                     np.zeros(n_slots - len(counts), dtype=np.int64)]
                )
            offsets = np.concatenate(([0], np.cumsum(counts[:n_slots])))
            return slot_quantile(self._merged, offsets, q)
        return self._sketch_quantiles(q, n_slots)

    def _sketch_quantiles(self, q: float, n_slots: int) -> np.ndarray:
        if self._sketch_sorted is None:
            # Gather exactly the filled cells (a segmented arange into
            # the flat reservoir — never touching empty capacity), sort
            # them with one lexsort, and cache until the next consume so
            # repeated reads are O(groups).
            fill = self._fill
            total = int(fill.sum())
            offsets = np.concatenate(([0], np.cumsum(fill)))
            intra = (np.arange(total, dtype=np.int64)
                     - np.repeat(offsets[:-1], fill))
            rows = np.repeat(
                np.arange(len(fill), dtype=np.int64), fill
            )
            vals = self._reservoir.ravel()[
                rows * self.sketch_size + intra
            ]
            order = np.lexsort((vals, rows))
            self._sketch_sorted = vals[order]
        fills = np.zeros(n_slots, dtype=np.int64)
        known = min(n_slots, len(self._fill))
        fills[:known] = self._fill[:known]
        offsets = np.concatenate(([0], np.cumsum(fills)))
        return slot_quantile(self._sketch_sorted, offsets, q)
