"""ExecutionOptions: one validated bundle for every tuning knob.

Before this module the tuning surface lived as nine loose keyword
arguments on :class:`~repro.api.context.WakeContext` (plus copy-pasted
per-run overrides on ``run``/``stream``/``explain``/``executor_for``),
each with its own validation snippet.  :class:`ExecutionOptions`
consolidates them into one frozen dataclass with a single validation
path; the legacy kwargs keep working everywhere (they are merged *over*
an ``options=`` bundle), so no call site has to change.

Layering note: everything here is plan/execution configuration — the
service layer (:mod:`repro.service`) threads the same object through
``QueryService.submit`` and ``repro serve``, where the two knobs new in
this bundle come alive: ``scan_share`` (one physical partition read
fans out to every concurrent query scanning the same table) and
``result_cache`` (a submit whose canonical plan hash matches an
in-flight or retained session attaches to it instead of re-executing).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.errors import QueryError
from repro.core.orderstat import DEFAULT_SKETCH_SIZE, QUANTILE_MODES


@dataclass(frozen=True)
class ExecutionOptions:
    """Every execution-tuning knob, validated once.

    The fields mirror the historical ``WakeContext`` kwargs (same names,
    same defaults, same error messages) plus the multi-query sharing
    knobs ``scan_share`` and ``result_cache``:

    * ``parallelism`` — shard count for stateful shuffle subplans
      (1 = unsharded, byte-identical plans).
    * ``pushdown`` — scan projection + zone-map partition pruning.
    * ``optimize`` / ``optimizer_disable`` — plan-rewrite master switch
      and per-rule escape hatch (rule names validated eagerly).
    * ``validate`` — static schema/type checking at submit.
    * ``quantile_mode`` / ``sketch_size`` — exact vs reservoir-sketch
      order statistics.
    * ``scan_share`` — service-level shared scans: one partition read
      per (table, partition, column-superset) fans out to every
      subscribed query (semantically invisible; snapshot sequences stay
      byte-identical).
    * ``result_cache`` — service-level plan-hash result cache: an
      identical submit attaches to the in-flight (or retained) session,
      replaying its snapshot prefix, instead of re-executing.
    * ``telemetry`` — service-level observability (metrics registry +
      query-lifecycle tracing, exposed via the ``metrics``/``trace``
      wire ops and ``GET /metrics``).  Observational only: snapshot
      sequences are byte-identical either way, so it is deliberately
      *not* part of :meth:`cache_fingerprint`.
    """

    parallelism: int = 1
    pushdown: bool = True
    optimize: bool = True
    optimizer_disable: frozenset[str] = field(default_factory=frozenset)
    validate: bool = True
    quantile_mode: str = "exact"
    sketch_size: int = DEFAULT_SKETCH_SIZE
    scan_share: bool = False
    result_cache: bool = False
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise QueryError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.quantile_mode not in QUANTILE_MODES:
            raise QueryError(
                f"unknown quantile_mode {self.quantile_mode!r}; expected "
                f"one of {QUANTILE_MODES}"
            )
        if self.sketch_size < 2:
            raise QueryError(
                f"sketch_size must be >= 2, got {self.sketch_size}"
            )
        # Rule names fail eagerly (typos surface at construction, not
        # at the first submit); import deferred to dodge the
        # api -> engine -> api cycle at module-import time.
        from repro.engine.optimizer import validate_rule_names

        object.__setattr__(
            self, "optimizer_disable",
            validate_rule_names(self.optimizer_disable),
        )

    def merged(self, **overrides) -> "ExecutionOptions":
        """A copy with the non-``None`` overrides applied (and the whole
        bundle re-validated).  This is the one merge path all legacy
        kwargs flow through — ``WakeContext(parallelism=4)``,
        ``run(pushdown=False)``, and ``QueryService.submit``'s per-call
        fields all land here."""
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise QueryError(
                f"unknown execution option(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        effective = {k: v for k, v in overrides.items() if v is not None}
        if not effective:
            return self
        if "optimizer_disable" in effective:
            effective["optimizer_disable"] = frozenset(
                effective["optimizer_disable"]
            )
        return replace(self, **effective)

    def cache_fingerprint(self) -> tuple:
        """The option values that can change *result bytes* (everything
        the plan hash does not already capture).  Used as part of the
        result-cache key: two submits may only share a session when
        their fingerprints match."""
        return (self.quantile_mode, self.sketch_size)


def resolve_options(
    options: "ExecutionOptions | None", **overrides
) -> ExecutionOptions:
    """The canonical ``options=`` + legacy-kwargs resolution: start from
    ``options`` (or the defaults), then apply the explicitly-passed
    (non-``None``) keyword overrides."""
    base = options if options is not None else ExecutionOptions()
    return base.merged(**overrides)
