"""Aggregate expression builders: the ``F`` namespace.

Mirrors the paper's §3.1 grammar::

    agg := sum | count | avg | count_distinct | min | max | var | stddev

Usage: ``frame.agg(F.sum("l_quantity").alias("sum_qty"), by=["l_orderkey"])``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dataframe.groupby import AggSpec


@dataclass(frozen=True)
class AggExpr:
    """A pending aggregate: function + column + optional alias (+ the
    quantile fraction for ``quantile``)."""

    agg: str
    column: str | None = None
    name: str | None = None
    param: float | None = None

    def alias(self, name: str) -> "AggExpr":
        return replace(self, name=name)

    def to_spec(self) -> AggSpec:
        alias = self.name
        if alias is None:
            alias = (
                self.agg if self.column is None
                else f"{self.agg}_{self.column}"
            )
        return AggSpec(self.agg, self.column, alias, param=self.param)


class F:
    """Factory namespace for aggregate expressions."""

    @staticmethod
    def sum(column: str) -> AggExpr:
        return AggExpr("sum", column)

    @staticmethod
    def count(column: str | None = None) -> AggExpr:
        return AggExpr("count", column)

    @staticmethod
    def avg(column: str) -> AggExpr:
        return AggExpr("avg", column)

    @staticmethod
    def min(column: str) -> AggExpr:
        return AggExpr("min", column)

    @staticmethod
    def max(column: str) -> AggExpr:
        return AggExpr("max", column)

    @staticmethod
    def count_distinct(column: str) -> AggExpr:
        return AggExpr("count_distinct", column)

    @staticmethod
    def var(column: str) -> AggExpr:
        return AggExpr("var", column)

    @staticmethod
    def stddev(column: str) -> AggExpr:
        return AggExpr("stddev", column)

    @staticmethod
    def median(column: str) -> AggExpr:
        return AggExpr("median", column)

    @staticmethod
    def quantile(column: str, q: float) -> AggExpr:
        return AggExpr("quantile", column, param=q)
