"""Aggregate expression builders: the ``F`` namespace.

Mirrors the paper's §3.1 grammar, extended with the mergeable
sem/prod/first/last family::

    agg := sum | count | avg | count_distinct | min | max
         | var | stddev | sem | prod | first | last
         | median | quantile

pandas-style synonyms (``std``, ``mean``, ``nunique``) are accepted and
normalize to the canonical names at spec construction.

Usage: ``frame.agg(F.sum("l_quantity").alias("sum_qty"), by=["l_orderkey"])``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dataframe.groupby import AggSpec


@dataclass(frozen=True)
class AggExpr:
    """A pending aggregate: function + column + optional alias (+ the
    quantile fraction for ``quantile``)."""

    agg: str
    column: str | None = None
    name: str | None = None
    param: float | None = None

    def alias(self, name: str) -> "AggExpr":
        return replace(self, name=name)

    def to_spec(self) -> AggSpec:
        alias = self.name
        if alias is None:
            alias = (
                self.agg if self.column is None
                else f"{self.agg}_{self.column}"
            )
        return AggSpec(self.agg, self.column, alias, param=self.param)


class F:
    """Factory namespace for aggregate expressions."""

    @staticmethod
    def sum(column: str) -> AggExpr:
        return AggExpr("sum", column)

    @staticmethod
    def count(column: str | None = None) -> AggExpr:
        return AggExpr("count", column)

    @staticmethod
    def avg(column: str) -> AggExpr:
        return AggExpr("avg", column)

    @staticmethod
    def min(column: str) -> AggExpr:
        return AggExpr("min", column)

    @staticmethod
    def max(column: str) -> AggExpr:
        return AggExpr("max", column)

    @staticmethod
    def count_distinct(column: str) -> AggExpr:
        return AggExpr("count_distinct", column)

    @staticmethod
    def var(column: str) -> AggExpr:
        return AggExpr("var", column)

    @staticmethod
    def stddev(column: str) -> AggExpr:
        return AggExpr("stddev", column)

    # pandas-style synonyms: the raw name is kept for the default alias
    # (``std_x``), then normalized to the canonical aggregate in AggSpec.
    @staticmethod
    def std(column: str) -> AggExpr:
        return AggExpr("std", column)

    @staticmethod
    def mean(column: str) -> AggExpr:
        return AggExpr("mean", column)

    @staticmethod
    def nunique(column: str) -> AggExpr:
        return AggExpr("nunique", column)

    @staticmethod
    def sem(column: str) -> AggExpr:
        return AggExpr("sem", column)

    @staticmethod
    def prod(column: str) -> AggExpr:
        return AggExpr("prod", column)

    @staticmethod
    def first(column: str) -> AggExpr:
        return AggExpr("first", column)

    @staticmethod
    def last(column: str) -> AggExpr:
        return AggExpr("last", column)

    @staticmethod
    def median(column: str) -> AggExpr:
        return AggExpr("median", column)

    @staticmethod
    def quantile(column: str, q: float) -> AggExpr:
        return AggExpr("quantile", column, param=q)
