"""Fluent user API: WakeContext + EdfFrame + aggregate builders."""

from repro.api.context import WakeContext
from repro.api.frame_api import EdfFrame, PlanNode
from repro.api.functions import AggExpr, F
from repro.api.options import ExecutionOptions, resolve_options

__all__ = [
    "AggExpr",
    "EdfFrame",
    "ExecutionOptions",
    "F",
    "PlanNode",
    "WakeContext",
    "resolve_options",
]
