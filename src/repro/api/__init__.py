"""Fluent user API: WakeContext + EdfFrame + aggregate builders."""

from repro.api.context import WakeContext
from repro.api.frame_api import EdfFrame, PlanNode
from repro.api.functions import AggExpr, F

__all__ = ["AggExpr", "EdfFrame", "F", "PlanNode", "WakeContext"]
