"""The fluent edf frame API (the paper's user-facing surface, §1/§3.2).

An :class:`EdfFrame` is a *declarative plan node*: a factory for an
operator plus references to its input plans.  Nothing executes until
``WakeContext.run``; each run materializes a fresh operator graph, so the
same plan can be executed repeatedly (different executors, shuffled
partition orders, partition-size sweeps) without state leakage.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import QueryError
from repro.dataframe.expr import Expr, col as col_
from repro.dataframe.frame import DataFrame
from repro.dataframe.schema import Schema
from repro.core.ci import CIConfig
from repro.core.properties import Delivery, StreamInfo
from repro.engine.graph import QueryGraph
from repro.engine.ops import (
    AggregateOperator,
    CrossJoinOperator,
    DistinctOperator,
    FilterOperator,
    HashJoinOperator,
    MapPartitionsOperator,
    MergeJoinOperator,
    Operator,
    SelectOperator,
    SortLimitOperator,
)
from repro.api.functions import AggExpr

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.context import WakeContext

_plan_ids = itertools.count()


@dataclass(frozen=True)
class PlanNode:
    """One declarative node: builds a fresh Operator when materialized."""

    factory: Callable[[], Operator]
    inputs: tuple["PlanNode", ...] = ()
    plan_id: int = field(default_factory=lambda: next(_plan_ids))

    def materialize(
        self, graph: QueryGraph, memo: dict[int, int]
    ) -> int:
        """Instantiate this plan (and its ancestors) into ``graph``."""
        if self.plan_id in memo:
            return memo[self.plan_id]
        input_ids = tuple(
            child.materialize(graph, memo) for child in self.inputs
        )
        node_id = graph.add(self.factory(), input_ids)
        memo[self.plan_id] = node_id
        return node_id


def _as_exprs(
    positional: Sequence[tuple[str, Expr]] | None,
    named: dict[str, Expr | str],
) -> list[tuple[str, Expr]]:
    out: list[tuple[str, Expr]] = list(positional or [])
    for name, expr in named.items():
        if isinstance(expr, str):
            expr = col_(expr)
        out.append((name, expr))
    if not out:
        raise QueryError("select requires at least one output column")
    return out


class EdfFrame:
    """A lazily-evaluated evolving data frame (closed under these ops)."""

    def __init__(self, context: "WakeContext", plan: PlanNode) -> None:
        self._context = context
        self._plan = plan

    # -- plumbing ----------------------------------------------------------------
    @property
    def plan(self) -> PlanNode:
        return self._plan

    @property
    def context(self) -> "WakeContext":
        return self._context

    def _wrap(self, factory: Callable[[], Operator],
              inputs: tuple[PlanNode, ...]) -> "EdfFrame":
        return EdfFrame(self._context, PlanNode(factory, inputs))

    def _name(self, op: str) -> str:
        return f"{op}#{next(_plan_ids)}"

    def stream_info(self) -> StreamInfo:
        """Plan-time stream description (schema, keys, delivery)."""
        graph = QueryGraph()
        node_id = self._plan.materialize(graph, {})
        return graph.resolve()[node_id]

    @property
    def schema(self) -> Schema:
        return self.stream_info().schema

    # -- relational ops (paper §3.2) ------------------------------------------
    def select(self, *positional: tuple[str, Expr],
               **named: Expr | str) -> "EdfFrame":
        """Project to the given expressions.

        ``frame.select(revenue=col("price") * (1 - col("disc")))`` or
        positionally as ``frame.select(("okey", col("okey")))``.  String
        values are shorthand for column references.
        """
        exprs = _as_exprs(positional, named)
        name = self._name("select")
        ci = self._context.ci is not None
        return self._wrap(
            lambda: SelectOperator(name, exprs, propagate_ci=ci),
            (self._plan,),
        )

    def project(self, *columns: str) -> "EdfFrame":
        """Keep only the named columns (order preserved)."""
        if not columns:
            raise QueryError("project requires at least one column")
        exprs = [(c, col_(c)) for c in columns]
        name = self._name("project")
        return self._wrap(
            lambda: SelectOperator(name, exprs), (self._plan,)
        )

    def with_columns(self, **named: Expr) -> "EdfFrame":
        """Add (or replace) derived columns, keeping everything else."""
        if not named:
            raise QueryError("with_columns requires at least one column")
        current = self.schema.names
        exprs: list[tuple[str, Expr]] = [
            (c, named.pop(c) if c in named else col_(c)) for c in current
        ]
        exprs.extend(named.items())
        name = self._name("with_columns")
        ci = self._context.ci is not None
        return self._wrap(
            lambda: SelectOperator(name, exprs, propagate_ci=ci),
            (self._plan,),
        )

    def filter(self, predicate: Expr) -> "EdfFrame":
        name = self._name("filter")
        return self._wrap(
            lambda: FilterOperator(name, predicate), (self._plan,)
        )

    def map_partitions(
        self,
        fn: Callable[[DataFrame], DataFrame],
        schema: Schema | None = None,
        preserves_clustering: bool = False,
    ) -> "EdfFrame":
        """Apply an arbitrary local frame→frame function (paper's map)."""
        name = self._name("map")
        return self._wrap(
            lambda: MapPartitionsOperator(
                name, fn, schema=schema,
                preserves_clustering=preserves_clustering,
            ),
            (self._plan,),
        )

    def join(
        self,
        other: "EdfFrame",
        on: Sequence[tuple[str, str]] | str,
        how: str = "inner",
        method: str = "auto",
        suffix: str = "_right",
    ) -> "EdfFrame":
        """Equi-join with ``other`` (the build/right side).

        ``on`` is a list of (left, right) column pairs, or one column name
        shared by both sides.  ``method`` is ``auto`` (merge join when both
        sides stream clustered on a single numeric key, else hash),
        ``hash``, or ``merge``.
        """
        if isinstance(on, str):
            pairs = [(on, on)]
        else:
            pairs = list(on)
        if not pairs:
            raise QueryError("join requires at least one key pair")
        left_on = [l for l, _ in pairs]
        right_on = [r for _, r in pairs]
        if method == "auto":
            method = self._pick_join_method(other, pairs, how)
        name = self._name(f"{method}_join")
        if method == "merge":
            if how != "inner":
                raise QueryError("merge join supports inner joins only")
            if len(pairs) != 1:
                raise QueryError("merge join requires a single key pair")
            return self._wrap(
                lambda: MergeJoinOperator(
                    name, left_on[0], right_on[0], suffix=suffix
                ),
                (self._plan, other._plan),
            )
        if method != "hash":
            raise QueryError(f"unknown join method {method!r}")
        return self._wrap(
            lambda: HashJoinOperator(
                name, left_on, right_on, how=how, suffix=suffix
            ),
            (self._plan, other._plan),
        )

    def _pick_join_method(
        self,
        other: "EdfFrame",
        pairs: list[tuple[str, str]],
        how: str,
    ) -> str:
        """Merge join when both sides are DELTA streams clustered on the
        (single) join key — the paper's physical-plan rule (§3.2)."""
        if how != "inner" or len(pairs) != 1:
            return "hash"
        left_info = self.stream_info()
        right_info = other.stream_info()
        left_key, right_key = pairs[0]
        if (
            left_info.delivery == Delivery.DELTA
            and right_info.delivery == Delivery.DELTA
            and left_info.clustered_on((left_key,))
            and right_info.clustered_on((right_key,))
        ):
            return "merge"
        return "hash"

    def cross_join(self, other: "EdfFrame",
                   suffix: str = "_right") -> "EdfFrame":
        """Cartesian product (for scalar/decorrelated subqueries)."""
        name = self._name("cross_join")
        return self._wrap(
            lambda: CrossJoinOperator(name, suffix=suffix),
            (self._plan, other._plan),
        )

    def agg(self, *aggs: "AggExpr | dict", by: Sequence[str] = (),
            ci: bool | None = None,
            growth: str = "fitted",
            quantile_mode: str | None = None,
            sketch_size: int | None = None) -> "EdfFrame":
        """Aggregate (optionally grouped).

        Each positional argument is an :class:`AggExpr` (the ``F``
        namespace) or a pandas-style multi-spec dict mapping column →
        aggregate name or list of names::

            frame.agg({"qty": ["sum", "mean"], "price": "max"},
                      by=["region"])

        Dict entries get the default ``<agg>_<column>`` aliases; synonym
        names (``std``, ``mean``, ``nunique``) are accepted.

        ``ci=True`` attaches §6 confidence-interval sigma columns
        (defaults to the context's CI setting).  ``growth`` selects the
        scaling strategy (§5.2 ablation): ``fitted`` (the paper's
        growth-based inference), ``uniform`` (classic 1/t OLA scaling),
        or ``none`` (raw merged values).  ``quantile_mode`` selects how
        median/quantile state is maintained — ``"exact"`` (per-group
        multiset, footnote-3 semantics) or ``"sketch"`` (bounded-memory
        reservoir of ``sketch_size`` values per group, approximate);
        defaults to the context's setting.
        """
        exprs: list[AggExpr] = []
        for item in aggs:
            if isinstance(item, dict):
                for column, fns in item.items():
                    names = [fns] if isinstance(fns, str) else list(fns)
                    if not names:
                        raise QueryError(
                            f"agg dict entry {column!r} names no "
                            f"aggregates"
                        )
                    exprs.extend(AggExpr(fn, column) for fn in names)
            else:
                exprs.append(item)
        if not exprs:
            raise QueryError("agg requires at least one aggregate")
        specs = [a.to_spec() for a in exprs]
        name = self._name("agg")
        if ci is None:
            config = self._context.ci
        elif ci:
            config = self._context.ci or CIConfig()
        else:
            config = None
        by = tuple(by)
        mode = (self._context.quantile_mode if quantile_mode is None
                else quantile_mode)
        size = (self._context.sketch_size if sketch_size is None
                else sketch_size)
        return self._wrap(
            lambda: AggregateOperator(name, specs, by=by, ci=config,
                                      growth_mode=growth,
                                      quantile_mode=mode,
                                      sketch_size=size),
            (self._plan,),
        )

    # sugar mirroring the paper's example (lineitem.sum(qty, by=orderkey))
    def sum(self, column: str, by: Sequence[str] = (),
            alias: str | None = None) -> "EdfFrame":
        spec = AggExpr("sum", column, alias or f"sum_{column}")
        return self.agg(spec, by=by)

    def count(self, by: Sequence[str] = (),
              alias: str = "count") -> "EdfFrame":
        return self.agg(AggExpr("count", None, alias), by=by)

    def avg(self, column: str, by: Sequence[str] = (),
            alias: str | None = None) -> "EdfFrame":
        spec = AggExpr("avg", column, alias or f"avg_{column}")
        return self.agg(spec, by=by)

    def min(self, column: str, by: Sequence[str] = (),
            alias: str | None = None) -> "EdfFrame":
        return self.agg(AggExpr("min", column, alias or f"min_{column}"),
                        by=by)

    def max(self, column: str, by: Sequence[str] = (),
            alias: str | None = None) -> "EdfFrame":
        return self.agg(AggExpr("max", column, alias or f"max_{column}"),
                        by=by)

    def count_distinct(self, column: str, by: Sequence[str] = (),
                       alias: str | None = None) -> "EdfFrame":
        spec = AggExpr("count_distinct", column,
                       alias or f"distinct_{column}")
        return self.agg(spec, by=by)

    def var(self, column: str, by: Sequence[str] = (),
            alias: str | None = None) -> "EdfFrame":
        return self.agg(AggExpr("var", column, alias or f"var_{column}"),
                        by=by)

    def stddev(self, column: str, by: Sequence[str] = (),
               alias: str | None = None) -> "EdfFrame":
        spec = AggExpr("stddev", column, alias or f"stddev_{column}")
        return self.agg(spec, by=by)

    def sem(self, column: str, by: Sequence[str] = (),
            alias: str | None = None) -> "EdfFrame":
        return self.agg(AggExpr("sem", column, alias or f"sem_{column}"),
                        by=by)

    def prod(self, column: str, by: Sequence[str] = (),
             alias: str | None = None) -> "EdfFrame":
        spec = AggExpr("prod", column, alias or f"prod_{column}")
        return self.agg(spec, by=by)

    def first(self, column: str, by: Sequence[str] = (),
              alias: str | None = None) -> "EdfFrame":
        spec = AggExpr("first", column, alias or f"first_{column}")
        return self.agg(spec, by=by)

    def last(self, column: str, by: Sequence[str] = (),
             alias: str | None = None) -> "EdfFrame":
        spec = AggExpr("last", column, alias or f"last_{column}")
        return self.agg(spec, by=by)

    def median(self, column: str, by: Sequence[str] = (),
               alias: str | None = None,
               quantile_mode: str | None = None,
               sketch_size: int | None = None) -> "EdfFrame":
        spec = AggExpr("median", column, alias or f"median_{column}")
        return self.agg(spec, by=by, quantile_mode=quantile_mode,
                        sketch_size=sketch_size)

    def quantile(self, column: str, q: float, by: Sequence[str] = (),
                 alias: str | None = None,
                 quantile_mode: str | None = None,
                 sketch_size: int | None = None) -> "EdfFrame":
        # Lossless default alias: rounding q to a percentile would
        # collide e.g. quantile(x, 0.995) with quantile(x, 1.0).
        spec = AggExpr("quantile", column,
                       alias or f"q{q:g}_{column}", param=q)
        return self.agg(spec, by=by, quantile_mode=quantile_mode,
                        sketch_size=sketch_size)

    def sort(self, by: Sequence[str] | str,
             desc: bool | Sequence[bool] = False) -> "EdfFrame":
        keys = [by] if isinstance(by, str) else list(by)
        if isinstance(desc, bool):
            ascending: Sequence[bool] | bool = not desc
        else:
            ascending = [not d for d in desc]
        name = self._name("sort")
        return self._wrap(
            lambda: SortLimitOperator(name, by=keys, ascending=ascending),
            (self._plan,),
        )

    def limit(self, n: int) -> "EdfFrame":
        name = self._name("limit")
        return self._wrap(
            lambda: SortLimitOperator(name, limit=n), (self._plan,)
        )

    def top_k(self, by: Sequence[str] | str, k: int,
              desc: bool | Sequence[bool] = True) -> "EdfFrame":
        """Sort + limit in one node (avoids two Case-3 recomputes)."""
        keys = [by] if isinstance(by, str) else list(by)
        if isinstance(desc, bool):
            ascending: Sequence[bool] | bool = not desc
        else:
            ascending = [not d for d in desc]
        name = self._name("top_k")
        return self._wrap(
            lambda: SortLimitOperator(name, by=keys, ascending=ascending,
                                      limit=k),
            (self._plan,),
        )

    def distinct(self, *subset: str) -> "EdfFrame":
        name = self._name("distinct")
        cols = tuple(subset)
        return self._wrap(
            lambda: DistinctOperator(name, subset=cols), (self._plan,)
        )

    # -- execution sugar -----------------------------------------------------------
    def run(self, **kwargs):
        """Execute via the owning context (see ``WakeContext.run``)."""
        return self._context.run(self, **kwargs)

    def final(self, **kwargs) -> DataFrame:
        """Convenience: run to completion, return the exact answer.

        Keyword arguments (e.g. ``parallelism=4``, ``executor``) are
        forwarded to :meth:`WakeContext.run`.
        """
        return self._context.run(
            self, capture_all=False, **kwargs
        ).get_final()
