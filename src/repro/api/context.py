"""WakeContext: session entry point tying catalogs to executors.

A context knows (1) where base tables live (a :class:`Catalog`), (2) which
executor drives queries (sync or threaded), and (3) whether confidence
intervals are propagated.  Frames built from a context are declarative
plans; ``run`` materializes a fresh operator graph per execution.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.analysis.schema_check import infer_plan, validate_plan
from repro.core.ci import CIConfig
from repro.core.edf import EvolvingDataFrame
from repro.core.orderstat import DEFAULT_SKETCH_SIZE, QUANTILE_MODES
from repro.engine.executor import (
    StepExecutor,
    SyncExecutor,
    ThreadedExecutor,
)
from repro.engine.graph import QueryGraph
from repro.engine.ops import ReadOperator
from repro.engine.optimizer import (
    OptimizerTrace,
    build_optimizer,
    validate_rule_names,
)
from repro.storage.catalog import Catalog, TableMeta
from repro.api.frame_api import EdfFrame, PlanNode

_EXECUTORS = ("sync", "threads")


class WakeContext:
    """A Deep OLA session (paper §7)."""

    def __init__(
        self,
        catalog: Catalog | None = None,
        executor: str = "sync",
        capture_all: bool = True,
        ci: CIConfig | None = None,
        partition_shuffle_seed: int | None = None,
        quantile_mode: str = "exact",
        sketch_size: int = DEFAULT_SKETCH_SIZE,
        parallelism: int = 1,
        pushdown: bool = True,
        optimize: bool = True,
        optimizer_disable: Sequence[str] = (),
        validate: bool = True,
    ) -> None:
        if executor not in _EXECUTORS:
            raise QueryError(
                f"unknown executor {executor!r}; expected one of "
                f"{_EXECUTORS}"
            )
        if parallelism < 1:
            raise QueryError(
                f"parallelism must be >= 1, got {parallelism}"
            )
        if quantile_mode not in QUANTILE_MODES:
            raise QueryError(
                f"unknown quantile_mode {quantile_mode!r}; expected one "
                f"of {QUANTILE_MODES}"
            )
        if sketch_size < 2:
            raise QueryError(
                f"sketch_size must be >= 2, got {sketch_size}"
            )
        self.catalog = catalog or Catalog()
        self.executor = executor
        self.capture_all = capture_all
        self.ci = ci
        #: Session defaults for median/quantile state maintenance:
        #: ``"exact"`` keeps the full per-group multiset (footnote-3
        #: semantics, exact finals); ``"sketch"`` bounds memory with a
        #: per-group reservoir sample of ``sketch_size`` values
        #: (approximate, including finals).
        self.quantile_mode = quantile_mode
        self.sketch_size = sketch_size
        #: Session default shard count for stateful shuffle subplans.
        #: 1 (default) keeps plans and snapshot sequences byte-identical
        #: to the unsharded engine; K > 1 rewrites shuffle aggregates
        #: (and aligned hash-join subplans) into K hash-partitioned
        #: replicas combined by a union (see repro.engine.planner).
        self.parallelism = parallelism
        #: Scan-layer pushdown (default on): projection (scans load only
        #: downstream-referenced columns) and zone-map partition pruning
        #: (sargable filter conjuncts skip partitions they cannot match).
        #: Both are semantically invisible — finals and snapshot ``t``
        #: sequences are byte-identical with pushdown off.
        self.pushdown = pushdown
        #: Master switch for the plan-rewrite optimizer (default on).
        #: ``False`` submits plans exactly as written — every rewrite
        #: rule is off; the exchange rewrite still honors an explicit
        #: ``parallelism`` (a resource request, not an optimization).
        self.optimize = optimize
        #: Individual rule names to disable (see
        #: ``repro.engine.optimizer.RULE_NAMES``) — the per-rule escape
        #: hatch; validated eagerly so typos fail at session setup.
        self.optimizer_disable = validate_rule_names(optimizer_disable)
        #: Static plan validation at submit (default on): every
        #: materialized plan is schema/type checked before the optimizer
        #: or any partition read, so malformed plans raise a structured
        #: :class:`~repro.errors.PlanValidationError` instead of failing
        #: mid-stream (see :mod:`repro.analysis.schema_check`).
        self.validate = validate
        #: When set, every table is read in a seed-derived shuffled
        #: partition order (the §8.5 out-of-order-input experiment).
        self.partition_shuffle_seed = partition_shuffle_seed
        self.last_executor: SyncExecutor | ThreadedExecutor | None = None
        #: Trace of the most recent submit's optimization (rule → nodes
        #: rewritten, pass count, plan hash).
        self.last_trace: OptimizerTrace | None = None
        self._scan_counts: dict[str, int] = {}

    @classmethod
    def from_catalog(cls, path: str | Path, **kwargs) -> "WakeContext":
        """Open a context over a saved catalog JSON file."""
        return cls(Catalog.load(path), **kwargs)

    # -- sources ------------------------------------------------------------------
    def table(
        self,
        name: str,
        order: Sequence[int] | None = None,
        source_name: str | None = None,
    ) -> EdfFrame:
        """An edf streaming a partitioned base table.

        ``order`` permutes partition read order (CI experiment §8.5).
        ``source_name`` disambiguates progress counters when the same
        table is read twice in one query (self-joins, subqueries).
        """
        meta: TableMeta = self.catalog.table(name)
        if order is None and self.partition_shuffle_seed is not None:
            rng = np.random.default_rng(
                self.partition_shuffle_seed
                + sum(ord(c) for c in name)
            )
            order = rng.permutation(meta.n_partitions).tolist()
        frozen_order = tuple(order) if order is not None else None
        if source_name is None:
            # Each scan of the same table is an independent source with
            # its own progress counters: a shared label would let the
            # faster of two scans mark the source complete prematurely.
            count = self._scan_counts.get(name, 0)
            self._scan_counts[name] = count + 1
            label = name if count == 0 else f"{name}@{count + 1}"
        else:
            label = source_name

        def factory() -> ReadOperator:
            return ReadOperator(
                meta,
                name=f"read({label})",
                order=frozen_order,
                source_name=label,
            )

        return EdfFrame(self, PlanNode(factory))

    # -- execution -----------------------------------------------------------------
    def _materialize(
        self,
        frame: EdfFrame,
        parallelism: int | None,
        pushdown: bool | None = None,
        optimize: bool | None = None,
    ) -> tuple[QueryGraph, int]:
        """Instantiate the plan, statically validate it, and run the
        rule optimizer over it (logical rules to fixed point, then
        pushdowns and the shard rewrite).  The per-submit trace lands in
        :attr:`last_trace`."""
        graph = QueryGraph()
        output = frame.plan.materialize(graph, {})
        if self.validate:
            # Submit-time chokepoint: run/stream/executor_for/explain
            # (and the service on top of them) all reject malformed
            # plans here, before any partition is read.
            validate_plan(graph, output)
        shards = self.parallelism if parallelism is None else parallelism
        if shards < 1:
            raise QueryError(
                f"parallelism must be >= 1, got {shards}"
            )
        optimizer = build_optimizer(
            parallelism=shards,
            pushdown=self.pushdown if pushdown is None else pushdown,
            optimize=self.optimize if optimize is None else optimize,
            disable=self.optimizer_disable,
        )
        graph, output, self.last_trace = optimizer.optimize(graph, output)
        return graph, output

    def run(
        self,
        frame: EdfFrame,
        capture_all: bool | None = None,
        record_timeline: bool = False,
        executor: str | None = None,
        source_delay: float = 0.0,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        optimize: bool | None = None,
    ) -> EvolvingDataFrame:
        """Execute a plan, returning its evolving output.

        The returned :class:`EvolvingDataFrame` holds every intermediate
        snapshot (``capture_all=True``) or just the first estimate and the
        exact final answer (``capture_all=False``).  ``parallelism``
        overrides the session shard count for this run (K > 1 shards
        stateful shuffle subplans into K hash-partitioned replicas);
        ``pushdown`` overrides the session's scan-pushdown setting and
        ``optimize`` the session's optimizer switch.
        """
        graph, output = self._materialize(
            frame, parallelism, pushdown, optimize
        )
        which = executor or self.executor
        capture = self.capture_all if capture_all is None else capture_all
        if which == "sync":
            if source_delay:
                raise QueryError(
                    "source_delay requires the threaded executor"
                )
            engine: SyncExecutor | ThreadedExecutor = SyncExecutor(
                graph, output, capture_all=capture,
                record_timeline=record_timeline,
            )
        elif which == "threads":
            engine = ThreadedExecutor(
                graph, output, capture_all=capture,
                record_timeline=record_timeline,
                source_delay=source_delay,
            )
        else:
            raise QueryError(f"unknown executor {which!r}")
        self.last_executor = engine
        return engine.run()

    def stream(
        self,
        frame: EdfFrame,
        record_timeline: bool = False,
        source_delay: float = 0.0,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        optimize: bool | None = None,
    ):
        """Execute on the threaded engine, *yielding* snapshots live.

        This is the paper's downstream-application mode (§7.1: "the query
        output ... can be consumed by downstream applications (e.g.,
        progressive visualization)").  The generator ends with the exact
        final snapshot.
        """
        graph, output = self._materialize(
            frame, parallelism, pushdown, optimize
        )
        engine = ThreadedExecutor(
            graph, output, capture_all=True,
            record_timeline=record_timeline,
            source_delay=source_delay,
        )
        self.last_executor = engine
        return engine.stream()

    def executor_for(
        self,
        frame: EdfFrame,
        capture_all: bool | None = None,
        record_timeline: bool = False,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        optimize: bool | None = None,
    ) -> StepExecutor:
        """A resumable :class:`StepExecutor` over the materialized plan
        (after pushdown and the shard rewrite) — the unit the
        multi-query service schedules (see :mod:`repro.service`).  Each
        ``step()`` consumes one source partition; stepping to
        completion yields snapshot sequences byte-identical to
        :meth:`run` on the sync executor."""
        graph, output = self._materialize(
            frame, parallelism, pushdown, optimize
        )
        capture = self.capture_all if capture_all is None else capture_all
        return StepExecutor(
            graph, output, capture_all=capture,
            record_timeline=record_timeline,
        )

    def explain(self, frame: EdfFrame,
                parallelism: int | None = None,
                pushdown: bool | None = None,
                optimize: bool | None = None,
                mode: str = "plan") -> str:
        """Human-readable plan: node names, deliveries, schemas (after
        the optimizer has run), followed by the optimizer trace —
        rule name → nodes rewritten — and the canonical plan hash.

        Scan nodes additionally render their pushed-down projection
        (``columns=[...]``), pushed predicates, and how many partitions
        the zone maps prune (``prune=k/n``).

        ``mode="types"`` renders each node's *statically inferred*
        schema (column → dtype, ``*`` marking mutable attributes)
        without binding or executing anything — the plan-debugging view
        of :mod:`repro.analysis.schema_check`."""
        if mode not in ("plan", "types"):
            raise QueryError(
                f"unknown explain mode {mode!r}; expected 'plan' or "
                f"'types'"
            )
        graph, output = self._materialize(
            frame, parallelism, pushdown, optimize
        )
        if mode == "types":
            return self._explain_types(graph, output)
        infos = graph.resolve()
        lines = []
        for nid in sorted(graph.nodes):
            node = graph.node(nid)
            info = infos[nid]
            marker = " <- output" if nid == output else ""
            inputs = (
                f" inputs={list(node.inputs)}" if node.inputs else ""
            )
            lines.append(
                f"[{nid}] {node.operator.name} "
                f"delivery={info.delivery.value} "
                f"cluster={list(info.clustering_key)}"
                f"{inputs}{marker}\n"
                f"      {info.schema!r}"
            )
            scan = node.operator
            if isinstance(scan, ReadOperator):
                details = []
                if scan.columns is not None:
                    details.append(f"columns={list(scan.columns)}")
                if scan.predicates:
                    preds = " AND ".join(map(repr, scan.predicates))
                    skipped = len(scan.pruned_partitions())
                    total = scan.meta.n_partitions
                    stats_note = (
                        "" if scan.meta.stats is not None
                        else " (no stats: pruning disabled)"
                    )
                    details.append(
                        f"pushed=[{preds}] "
                        f"prune={skipped}/{total}{stats_note}"
                    )
                if details:
                    lines.append("      scan " + " ".join(details))
        if self.last_trace is not None:
            lines.extend(self.last_trace.render())
        return "\n".join(lines)

    def _explain_types(self, graph: QueryGraph, output: int) -> str:
        """Render each node's inferred output schema (``explain``'s
        ``types`` mode) without resolving/binding the graph."""
        streams = infer_plan(graph, output)
        lines = []
        for nid in sorted(streams):
            node = graph.node(nid)
            stream = streams[nid]
            marker = " <- output" if nid == output else ""
            inputs = (
                f" inputs={list(node.inputs)}" if node.inputs else ""
            )
            if stream is None:
                lines.append(
                    f"[{nid}] {node.operator.name}{inputs}{marker}\n"
                    f"      (schema not statically inferable)"
                )
                continue
            cols = ", ".join(
                f"{f.name}: {f.dtype.value}"
                + ("*" if f.kind.value == "mutable" else "")
                for f in stream.schema.fields
            )
            cluster = (
                f" cluster={list(stream.clustering_key)}"
                if stream.clustering_key else ""
            )
            lines.append(
                f"[{nid}] {node.operator.name} "
                f"delivery={stream.delivery.value}{cluster}"
                f"{inputs}{marker}\n"
                f"      {cols}"
            )
        return "\n".join(lines)
