"""WakeContext: session entry point tying catalogs to executors.

A context knows (1) where base tables live (a :class:`Catalog`), (2) which
executor drives queries (sync or threaded), and (3) whether confidence
intervals are propagated.  Frames built from a context are declarative
plans; ``run`` materializes a fresh operator graph per execution.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.analysis.schema_check import infer_plan, validate_plan
from repro.core.ci import CIConfig
from repro.core.edf import EvolvingDataFrame
from repro.engine.executor import (
    StepExecutor,
    SyncExecutor,
    ThreadedExecutor,
)
from repro.engine.graph import QueryGraph
from repro.engine.ops import ReadOperator
from repro.engine.optimizer import OptimizerTrace, build_optimizer
from repro.obs import OperatorProfiler, maybe_span
from repro.storage.catalog import Catalog, TableMeta
from repro.api.frame_api import EdfFrame, PlanNode
from repro.api.options import ExecutionOptions, resolve_options

_EXECUTORS = ("sync", "threads")


class WakeContext:
    """A Deep OLA session (paper §7).

    Tuning knobs live in one validated
    :class:`~repro.api.options.ExecutionOptions` bundle (``options=``);
    every historical keyword argument (``parallelism``, ``pushdown``,
    ``optimize``, ``optimizer_disable``, ``validate``,
    ``quantile_mode``, ``sketch_size``) keeps working and overrides the
    bundle — one validation path, zero deprecated call sites.
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        executor: str = "sync",
        capture_all: bool = True,
        ci: CIConfig | None = None,
        partition_shuffle_seed: int | None = None,
        quantile_mode: str | None = None,
        sketch_size: int | None = None,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        optimize: bool | None = None,
        optimizer_disable: Sequence[str] | None = None,
        validate: bool | None = None,
        options: ExecutionOptions | None = None,
        scan_share: bool | None = None,
        result_cache: bool | None = None,
        telemetry: bool | None = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise QueryError(
                f"unknown executor {executor!r}; expected one of "
                f"{_EXECUTORS}"
            )
        #: Session execution options (see
        #: :class:`~repro.api.options.ExecutionOptions` for per-knob
        #: semantics).  Legacy kwargs are merged over ``options`` so
        #: both call styles resolve to this one bundle.
        self.options = resolve_options(
            options,
            quantile_mode=quantile_mode,
            sketch_size=sketch_size,
            parallelism=parallelism,
            pushdown=pushdown,
            optimize=optimize,
            optimizer_disable=optimizer_disable,
            validate=validate,
            scan_share=scan_share,
            result_cache=result_cache,
            telemetry=telemetry,
        )
        self.catalog = catalog or Catalog()
        self.executor = executor
        self.capture_all = capture_all
        self.ci = ci
        #: When set, every table is read in a seed-derived shuffled
        #: partition order (the §8.5 out-of-order-input experiment).
        self.partition_shuffle_seed = partition_shuffle_seed
        self.last_executor: SyncExecutor | ThreadedExecutor | None = None
        #: Trace of the most recent submit's optimization (rule → nodes
        #: rewritten, pass count, plan hash).
        self.last_trace: OptimizerTrace | None = None
        #: Per-operator profile of the most recent
        #: ``explain(mode="profile")`` run.
        self.last_profile: OperatorProfiler | None = None
        self._scan_counts: dict[str, int] = {}

    # -- legacy attribute views over the options bundle ----------------------------
    @property
    def quantile_mode(self) -> str:
        """Session default for median/quantile state maintenance
        (``"exact"`` keeps the full per-group multiset; ``"sketch"``
        bounds memory with a per-group reservoir)."""
        return self.options.quantile_mode

    @property
    def sketch_size(self) -> int:
        return self.options.sketch_size

    @property
    def parallelism(self) -> int:
        """Session default shard count for stateful shuffle subplans
        (1 = unsharded, byte-identical plans)."""
        return self.options.parallelism

    @property
    def pushdown(self) -> bool:
        """Scan-layer pushdown (projection + zone-map pruning)."""
        return self.options.pushdown

    @property
    def optimize(self) -> bool:
        """Master switch for the plan-rewrite optimizer."""
        return self.options.optimize

    @property
    def optimizer_disable(self) -> frozenset[str]:
        """Individual rule names disabled for this session."""
        return self.options.optimizer_disable

    @property
    def validate(self) -> bool:
        """Static plan validation at submit."""
        return self.options.validate

    @classmethod
    def from_catalog(cls, path: str | Path, **kwargs) -> "WakeContext":
        """Open a context over a saved catalog JSON file."""
        return cls(Catalog.load(path), **kwargs)

    # -- sources ------------------------------------------------------------------
    def table(
        self,
        name: str,
        order: Sequence[int] | None = None,
        source_name: str | None = None,
    ) -> EdfFrame:
        """An edf streaming a partitioned base table.

        ``order`` permutes partition read order (CI experiment §8.5).
        ``source_name`` disambiguates progress counters when the same
        table is read twice in one query (self-joins, subqueries).
        """
        meta: TableMeta = self.catalog.table(name)
        if order is None and self.partition_shuffle_seed is not None:
            rng = np.random.default_rng(
                self.partition_shuffle_seed
                + sum(ord(c) for c in name)
            )
            order = rng.permutation(meta.n_partitions).tolist()
        frozen_order = tuple(order) if order is not None else None
        if source_name is None:
            # Each scan of the same table is an independent source with
            # its own progress counters: a shared label would let the
            # faster of two scans mark the source complete prematurely.
            count = self._scan_counts.get(name, 0)
            self._scan_counts[name] = count + 1
            label = name if count == 0 else f"{name}@{count + 1}"
        else:
            label = source_name

        def factory() -> ReadOperator:
            return ReadOperator(
                meta,
                name=f"read({label})",
                order=frozen_order,
                source_name=label,
            )

        return EdfFrame(self, PlanNode(factory))

    # -- execution -----------------------------------------------------------------
    def _effective(
        self,
        options: ExecutionOptions | None,
        parallelism: int | None,
        pushdown: bool | None,
        optimize: bool | None,
    ) -> ExecutionOptions:
        """Per-run option resolution: an explicit ``options=`` replaces
        the session bundle wholesale, then the legacy per-run kwargs
        override field-wise (all re-validated in one place)."""
        base = options if options is not None else self.options
        return base.merged(
            parallelism=parallelism, pushdown=pushdown, optimize=optimize
        )

    def _materialize(
        self,
        frame: EdfFrame,
        opts: ExecutionOptions,
        trace=None,
    ) -> tuple[QueryGraph, int]:
        """Instantiate the plan, statically validate it, and run the
        rule optimizer over it (logical rules to fixed point, then
        pushdowns and the shard rewrite).  The per-submit trace lands in
        :attr:`last_trace`; ``trace`` (a
        :class:`~repro.obs.SessionTrace`, or ``None``) records the
        validate/optimize phases as lifecycle spans."""
        graph = QueryGraph()
        output = frame.plan.materialize(graph, {})
        if opts.validate:
            # Submit-time chokepoint: run/stream/executor_for/explain
            # (and the service on top of them) all reject malformed
            # plans here, before any partition is read.
            with maybe_span(trace, "validate"):
                validate_plan(graph, output)
        optimizer = build_optimizer(
            parallelism=opts.parallelism,
            pushdown=opts.pushdown,
            optimize=opts.optimize,
            disable=opts.optimizer_disable,
        )
        with maybe_span(trace, "optimize"):
            graph, output, self.last_trace = optimizer.optimize(
                graph, output
            )
        return graph, output

    def run(
        self,
        frame: EdfFrame,
        capture_all: bool | None = None,
        record_timeline: bool = False,
        executor: str | None = None,
        source_delay: float = 0.0,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        optimize: bool | None = None,
        options: ExecutionOptions | None = None,
    ) -> EvolvingDataFrame:
        """Execute a plan, returning its evolving output.

        The returned :class:`EvolvingDataFrame` holds every intermediate
        snapshot (``capture_all=True``) or just the first estimate and the
        exact final answer (``capture_all=False``).  ``options``
        replaces the session's :class:`ExecutionOptions` for this run;
        ``parallelism`` overrides the shard count (K > 1 shards
        stateful shuffle subplans into K hash-partitioned replicas);
        ``pushdown`` overrides the scan-pushdown setting and
        ``optimize`` the optimizer switch.
        """
        graph, output = self._materialize(
            frame,
            self._effective(options, parallelism, pushdown, optimize),
        )
        which = executor or self.executor
        capture = self.capture_all if capture_all is None else capture_all
        if which == "sync":
            if source_delay:
                raise QueryError(
                    "source_delay requires the threaded executor"
                )
            engine: SyncExecutor | ThreadedExecutor = SyncExecutor(
                graph, output, capture_all=capture,
                record_timeline=record_timeline,
            )
        elif which == "threads":
            engine = ThreadedExecutor(
                graph, output, capture_all=capture,
                record_timeline=record_timeline,
                source_delay=source_delay,
            )
        else:
            raise QueryError(f"unknown executor {which!r}")
        self.last_executor = engine
        return engine.run()

    def stream(
        self,
        frame: EdfFrame,
        record_timeline: bool = False,
        source_delay: float = 0.0,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        optimize: bool | None = None,
        options: ExecutionOptions | None = None,
    ):
        """Execute on the threaded engine, *yielding* snapshots live.

        This is the paper's downstream-application mode (§7.1: "the query
        output ... can be consumed by downstream applications (e.g.,
        progressive visualization)").  The generator ends with the exact
        final snapshot.
        """
        graph, output = self._materialize(
            frame,
            self._effective(options, parallelism, pushdown, optimize),
        )
        engine = ThreadedExecutor(
            graph, output, capture_all=True,
            record_timeline=record_timeline,
            source_delay=source_delay,
        )
        self.last_executor = engine
        return engine.stream()

    def executor_for(
        self,
        frame: EdfFrame,
        capture_all: bool | None = None,
        record_timeline: bool = False,
        parallelism: int | None = None,
        pushdown: bool | None = None,
        optimize: bool | None = None,
        options: ExecutionOptions | None = None,
        trace=None,
    ) -> StepExecutor:
        """A resumable :class:`StepExecutor` over the materialized plan
        (after pushdown and the shard rewrite) — the unit the
        multi-query service schedules (see :mod:`repro.service`).  Each
        ``step()`` consumes one source partition; stepping to
        completion yields snapshot sequences byte-identical to
        :meth:`run` on the sync executor.  ``trace`` (a
        :class:`~repro.obs.SessionTrace`) records the validate/optimize
        lifecycle spans when the service has telemetry enabled."""
        graph, output = self._materialize(
            frame,
            self._effective(options, parallelism, pushdown, optimize),
            trace=trace,
        )
        capture = self.capture_all if capture_all is None else capture_all
        return StepExecutor(
            graph, output, capture_all=capture,
            record_timeline=record_timeline,
        )

    def explain(self, frame: EdfFrame,
                parallelism: int | None = None,
                pushdown: bool | None = None,
                optimize: bool | None = None,
                options: ExecutionOptions | None = None,
                mode: str = "plan") -> str:
        """Human-readable plan: node names, deliveries, schemas (after
        the optimizer has run), followed by the optimizer trace —
        rule name → nodes rewritten — and the canonical plan hash.

        Scan nodes additionally render their pushed-down projection
        (``columns=[...]``), pushed predicates, and how many partitions
        the zone maps prune (``prune=k/n``).

        ``mode="types"`` renders each node's *statically inferred*
        schema (column → dtype, ``*`` marking mutable attributes)
        without binding or executing anything — the plan-debugging view
        of :mod:`repro.analysis.schema_check`.

        ``mode="profile"`` *executes* the plan to completion on a
        step executor with an :class:`~repro.obs.OperatorProfiler`
        attached and renders the per-operator time/rows breakdown
        (also retained on :attr:`last_profile`)."""
        if mode not in ("plan", "types", "profile"):
            raise QueryError(
                f"unknown explain mode {mode!r}; expected 'plan', "
                f"'types', or 'profile'"
            )
        graph, output = self._materialize(
            frame,
            self._effective(options, parallelism, pushdown, optimize),
        )
        if mode == "profile":
            return self._explain_profile(graph, output)
        if mode == "types":
            return self._explain_types(graph, output)
        infos = graph.resolve()
        lines = []
        for nid in sorted(graph.nodes):
            node = graph.node(nid)
            info = infos[nid]
            marker = " <- output" if nid == output else ""
            inputs = (
                f" inputs={list(node.inputs)}" if node.inputs else ""
            )
            lines.append(
                f"[{nid}] {node.operator.name} "
                f"delivery={info.delivery.value} "
                f"cluster={list(info.clustering_key)}"
                f"{inputs}{marker}\n"
                f"      {info.schema!r}"
            )
            scan = node.operator
            if isinstance(scan, ReadOperator):
                details = []
                if scan.columns is not None:
                    details.append(f"columns={list(scan.columns)}")
                if scan.predicates:
                    preds = " AND ".join(map(repr, scan.predicates))
                    skipped = len(scan.pruned_partitions())
                    total = scan.meta.n_partitions
                    stats_note = (
                        "" if scan.meta.stats is not None
                        else " (no stats: pruning disabled)"
                    )
                    details.append(
                        f"pushed=[{preds}] "
                        f"prune={skipped}/{total}{stats_note}"
                    )
                if details:
                    lines.append("      scan " + " ".join(details))
        if self.last_trace is not None:
            lines.extend(self.last_trace.render())
        return "\n".join(lines)

    def _explain_profile(self, graph: QueryGraph, output: int) -> str:
        """Execute the materialized plan on a step executor with an
        :class:`~repro.obs.OperatorProfiler` attached and render the
        per-operator breakdown (``explain``'s ``profile`` mode)."""
        executor = StepExecutor(graph, output, capture_all=False)
        profiler = OperatorProfiler()
        executor.profiler = profiler
        executor.run()
        self.last_profile = profiler
        return profiler.render()

    def _explain_types(self, graph: QueryGraph, output: int) -> str:
        """Render each node's inferred output schema (``explain``'s
        ``types`` mode) without resolving/binding the graph."""
        streams = infer_plan(graph, output)
        lines = []
        for nid in sorted(streams):
            node = graph.node(nid)
            stream = streams[nid]
            marker = " <- output" if nid == output else ""
            inputs = (
                f" inputs={list(node.inputs)}" if node.inputs else ""
            )
            if stream is None:
                lines.append(
                    f"[{nid}] {node.operator.name}{inputs}{marker}\n"
                    f"      (schema not statically inferable)"
                )
                continue
            cols = ", ".join(
                f"{f.name}: {f.dtype.value}"
                + ("*" if f.kind.value == "mutable" else "")
                for f in stream.schema.fields
            )
            cluster = (
                f" cluster={list(stream.clustering_key)}"
                if stream.clustering_key else ""
            )
            lines.append(
                f"[{nid}] {node.operator.name} "
                f"delivery={stream.delivery.value}{cluster}"
                f"{inputs}{marker}\n"
                f"      {cols}"
            )
        return "\n".join(lines)
