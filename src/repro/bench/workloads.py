"""Benchmark workloads: per-query metric columns, the modified queries of
the OLA comparisons (Fig 9), the synthetic deep-query generator (§8.6),
and the partition-size sweep (§8.7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.api import F, WakeContext
from repro.api.frame_api import EdfFrame
from repro.baselines.progressive import ProgressiveQuery
from repro.baselines.wanderjoin import WalkQuery, WalkStep
from repro.dataframe import (
    AggSpec,
    DataFrame,
    col,
    date,
    global_aggregate,
    group_aggregate,
    hash_join,
)
from repro.storage import Catalog, write_table
from repro.tpch.queries._helpers import add, mask, revenue_expr

#: (group keys, value columns) for scoring each TPC-H query's estimates.
METRIC_COLUMNS: dict[int, tuple[tuple[str, ...], tuple[str, ...]]] = {
    1: (("l_returnflag", "l_linestatus"),
        ("sum_qty", "sum_base_price", "sum_disc_price", "sum_charge",
         "avg_qty", "avg_price", "avg_disc", "count_order")),
    2: (("ps_partkey", "s_name"), ()),
    3: (("l_orderkey",), ("revenue",)),
    4: (("o_orderpriority",), ("order_count",)),
    5: (("n_name",), ("revenue",)),
    6: ((), ("revenue",)),
    7: (("supp_nation", "cust_nation", "l_year"), ("revenue",)),
    8: (("o_year",), ("mkt_share",)),
    9: (("nation", "o_year"), ("sum_profit",)),
    10: (("c_custkey",), ("revenue",)),
    11: (("ps_partkey",), ("value",)),
    12: (("l_shipmode",), ("high_line_count", "low_line_count")),
    13: (("c_count",), ("custdist",)),
    14: ((), ("promo_revenue",)),
    15: (("s_suppkey",), ("total_revenue",)),
    16: (("p_brand", "p_type", "p_size"), ("supplier_cnt",)),
    17: ((), ("avg_yearly",)),
    18: (("l_orderkey",), ("total_qty",)),
    19: ((), ("revenue",)),
    20: (("s_name",), ()),
    21: (("s_name",), ("numwait",)),
    22: (("cntrycode",), ("numcust", "totacctbal")),
}


# ---------------------------------------------------------------------------
# Modified single-table queries (ProgressiveDB comparison, Fig 9a)
# ---------------------------------------------------------------------------

def modified_q1_progressive() -> ProgressiveQuery:
    """Q1 reduced to ProgressiveDB's dialect: single-table grouped sums."""
    cutoff = date("1998-12-01") - 90
    return ProgressiveQuery(
        table="lineitem",
        aggregates=[
            AggSpec("sum", "l_quantity", "sum_qty"),
            AggSpec("sum", "l_extendedprice", "sum_base_price"),
            AggSpec("count", None, "count_order"),
        ],
        predicate=col("l_shipdate") <= cutoff,
        by=["l_returnflag", "l_linestatus"],
    )


def modified_q1_wake(ctx: WakeContext) -> EdfFrame:
    cutoff = date("1998-12-01") - 90
    li = ctx.table("lineitem").filter(col("l_shipdate") <= cutoff)
    from repro.api.functions import AggExpr

    return li.agg(
        AggExpr("sum", "l_quantity", "sum_qty"),
        AggExpr("sum", "l_extendedprice", "sum_base_price"),
        AggExpr("count", None, "count_order"),
        by=["l_returnflag", "l_linestatus"],
    )


def modified_q1_exact(tables: dict[str, DataFrame]) -> DataFrame:
    cutoff = date("1998-12-01") - 90
    li = mask(tables["lineitem"], col("l_shipdate") <= cutoff)
    return group_aggregate(
        li, ["l_returnflag", "l_linestatus"],
        [AggSpec("sum", "l_quantity", "sum_qty"),
         AggSpec("sum", "l_extendedprice", "sum_base_price"),
         AggSpec("count", None, "count_order")],
    )


MODIFIED_Q1_METRICS = (("l_returnflag", "l_linestatus"),
                       ("sum_qty", "sum_base_price", "count_order"))


def _q6_predicate():
    lo, hi = date("1994-01-01"), date("1995-01-01")
    return (
        col("l_shipdate").between(lo, hi)
        & (col("l_discount") >= 0.05 - 1e-9)
        & (col("l_discount") <= 0.07 + 1e-9)
        & (col("l_quantity") < 24)
    )


def modified_q6_progressive() -> ProgressiveQuery:
    return ProgressiveQuery(
        table="lineitem",
        aggregates=[AggSpec("sum", "gain", "revenue")],
        predicate=_q6_predicate(),
        derived={"gain": col("l_extendedprice") * col("l_discount")},
    )


def modified_q6_wake(ctx: WakeContext) -> EdfFrame:
    li = ctx.table("lineitem").filter(_q6_predicate())
    return li.select(
        gain=col("l_extendedprice") * col("l_discount")
    ).agg(F.sum("gain").alias("revenue"))


def modified_q6_exact(tables: dict[str, DataFrame]) -> DataFrame:
    li = mask(tables["lineitem"], _q6_predicate())
    li = add(li, "gain", col("l_extendedprice") * col("l_discount"))
    return global_aggregate(li, [AggSpec("sum", "gain", "revenue")])


MODIFIED_Q6_METRICS = ((), ("revenue",))


# ---------------------------------------------------------------------------
# Modified join queries (WanderJoin comparison, Fig 9b) — single SUM over a
# join chain, as in the WanderJoin paper's modified Q3/Q7/Q10.
# ---------------------------------------------------------------------------

def modified_q3_walk() -> WalkQuery:
    cut = date("1995-03-15")
    return WalkQuery(
        first_table="lineitem",
        first_predicate=col("l_shipdate") > cut,
        steps=(
            WalkStep("orders", "l_orderkey", "o_orderkey",
                     predicate=col("o_orderdate") < cut),
            WalkStep("customer", "o_custkey", "c_custkey",
                     predicate=col("c_mktsegment") == "BUILDING"),
        ),
        value=revenue_expr(),
    )


def modified_q3_wake(ctx: WakeContext) -> EdfFrame:
    cut = date("1995-03-15")
    cust = ctx.table("customer").filter(
        col("c_mktsegment") == "BUILDING")
    orders_f = ctx.table("orders").filter(col("o_orderdate") < cut)
    oc = orders_f.join(cust, on=[("o_custkey", "c_custkey")])
    li = ctx.table("lineitem").filter(col("l_shipdate") > cut)
    lo = li.join(oc, on=[("l_orderkey", "o_orderkey")])
    return lo.select(rev=revenue_expr()).agg(
        F.sum("rev").alias("revenue"))


def modified_q3_exact(tables: dict[str, DataFrame]) -> float:
    cut = date("1995-03-15")
    cust = mask(tables["customer"], col("c_mktsegment") == "BUILDING")
    orders_f = mask(tables["orders"], col("o_orderdate") < cut)
    oc = hash_join(orders_f, cust, ["o_custkey"], ["c_custkey"])
    li = mask(tables["lineitem"], col("l_shipdate") > cut)
    lo = hash_join(li, oc, ["l_orderkey"], ["o_orderkey"])
    lo = add(lo, "rev", revenue_expr())
    return float(lo.column("rev").sum())


def modified_q7_walk() -> WalkQuery:
    lo, hi = date("1995-01-01"), date("1996-12-31")
    return WalkQuery(
        first_table="lineitem",
        first_predicate=(col("l_shipdate") >= lo)
        & (col("l_shipdate") <= hi),
        steps=(
            WalkStep("supplier", "l_suppkey", "s_suppkey"),
            WalkStep("orders", "l_orderkey", "o_orderkey"),
            WalkStep("customer", "o_custkey", "c_custkey"),
        ),
        value=revenue_expr(),
    )


def modified_q7_wake(ctx: WakeContext) -> EdfFrame:
    lo_d, hi_d = date("1995-01-01"), date("1996-12-31")
    li = ctx.table("lineitem").filter(
        (col("l_shipdate") >= lo_d) & (col("l_shipdate") <= hi_d)
    )
    lo = li.join(ctx.table("orders"), on=[("l_orderkey", "o_orderkey")])
    loc = lo.join(ctx.table("customer"),
                  on=[("o_custkey", "c_custkey")])
    locs = loc.join(ctx.table("supplier"),
                    on=[("l_suppkey", "s_suppkey")])
    return locs.select(rev=revenue_expr()).agg(
        F.sum("rev").alias("revenue"))


def modified_q7_exact(tables: dict[str, DataFrame]) -> float:
    lo_d, hi_d = date("1995-01-01"), date("1996-12-31")
    li = mask(tables["lineitem"],
              (col("l_shipdate") >= lo_d) & (col("l_shipdate") <= hi_d))
    lo = hash_join(li, tables["orders"], ["l_orderkey"], ["o_orderkey"])
    loc = hash_join(lo, tables["customer"], ["o_custkey"], ["c_custkey"])
    locs = hash_join(loc, tables["supplier"], ["l_suppkey"],
                     ["s_suppkey"])
    locs = add(locs, "rev", revenue_expr())
    return float(locs.column("rev").sum())


def modified_q10_walk() -> WalkQuery:
    lo = date("1993-10-01")
    hi = date("1994-01-01")
    return WalkQuery(
        first_table="lineitem",
        first_predicate=col("l_returnflag") == "R",
        steps=(
            WalkStep("orders", "l_orderkey", "o_orderkey",
                     predicate=(col("o_orderdate") >= lo)
                     & (col("o_orderdate") < hi)),
            WalkStep("customer", "o_custkey", "c_custkey"),
        ),
        value=revenue_expr(),
    )


def modified_q10_wake(ctx: WakeContext) -> EdfFrame:
    lo_d, hi_d = date("1993-10-01"), date("1994-01-01")
    orders_f = ctx.table("orders").filter(
        col("o_orderdate").between(lo_d, hi_d)
    )
    oc = orders_f.join(ctx.table("customer"),
                       on=[("o_custkey", "c_custkey")])
    li = ctx.table("lineitem").filter(col("l_returnflag") == "R")
    lo = li.join(oc, on=[("l_orderkey", "o_orderkey")])
    return lo.select(rev=revenue_expr()).agg(
        F.sum("rev").alias("revenue"))


def modified_q10_exact(tables: dict[str, DataFrame]) -> float:
    lo_d, hi_d = date("1993-10-01"), date("1994-01-01")
    orders_f = mask(tables["orders"],
                    col("o_orderdate").between(lo_d, hi_d))
    oc = hash_join(orders_f, tables["customer"], ["o_custkey"],
                   ["c_custkey"])
    li = mask(tables["lineitem"], col("l_returnflag") == "R")
    lo = hash_join(li, oc, ["l_orderkey"], ["o_orderkey"])
    lo = add(lo, "rev", revenue_expr())
    return float(lo.column("rev").sum())


# ---------------------------------------------------------------------------
# Synthetic deep queries (§8.6, Fig 11)
# ---------------------------------------------------------------------------

#: Distinct values per synthetic group column.
DEEP_UNIQUES = 4
DEEP_GROUP_COLS = 10


@dataclass(frozen=True)
class DeepDataset:
    catalog: Catalog
    table: DataFrame


def generate_deep_dataset(
    directory: str | Path,
    n_rows: int = 100_000,
    n_partitions: int = 20,
    seed: int = 0,
) -> DeepDataset:
    """The §8.6 synthetic table: ``DEEP_GROUP_COLS`` group columns with
    ``DEEP_UNIQUES`` values each plus one value column ``x``."""
    rng = np.random.default_rng(seed)
    data = {
        f"c{i}": rng.integers(0, DEEP_UNIQUES, size=n_rows).astype(
            np.int64)
        for i in range(1, DEEP_GROUP_COLS + 1)
    }
    data["x"] = rng.uniform(0.0, 100.0, size=n_rows)
    frame = DataFrame(data)
    catalog = Catalog(root=str(directory))
    write_table(
        catalog, directory, "deep", frame,
        rows_per_partition=math.ceil(n_rows / n_partitions),
        primary_key=(),
    )
    return DeepDataset(catalog=catalog, table=frame)


def build_deep_query(ctx: WakeContext, depth: int) -> EdfFrame:
    """Alternating max/sum aggregation chain of the given depth.

    depth 0: global sum of x.  depth d: max(x) by (c1..cd), then
    sum by (c1..c_{d-1}), ... down to a global aggregate — exactly the
    paper's ``df.max(x, by=(ci,cii)).sum(max_x, by=ci).sum(...)`` shape.
    """
    if depth < 0 or depth > DEEP_GROUP_COLS:
        raise ValueError(
            f"depth must be within [0, {DEEP_GROUP_COLS}], got {depth}"
        )
    frame = ctx.table("deep")
    if depth == 0:
        return frame.agg(F.sum("x").alias("agg0"))
    current = frame.agg(
        F.max("x").alias("agg1"),
        by=[f"c{i}" for i in range(1, depth + 1)],
    )
    alias = "agg1"
    for level in range(1, depth + 1):
        remaining = [f"c{i}" for i in range(1, depth - level + 1)]
        next_alias = f"agg{level + 1}"
        use_max = level % 2 == 1  # alternate: sum after max after sum…
        agg_expr = (
            F.sum(alias).alias(next_alias)
            if use_max
            else F.max(alias).alias(next_alias)
        )
        current = current.agg(agg_expr, by=remaining)
        alias = next_alias
    return current


def deep_query_reference(table: DataFrame, depth: int) -> DataFrame:
    """Exact evaluation of :func:`build_deep_query` on the full table."""
    if depth == 0:
        return global_aggregate(table, [AggSpec("sum", "x", "agg0")])
    current = group_aggregate(
        table, [f"c{i}" for i in range(1, depth + 1)],
        [AggSpec("max", "x", "agg1")],
    )
    alias = "agg1"
    for level in range(1, depth + 1):
        remaining = [f"c{i}" for i in range(1, depth - level + 1)]
        next_alias = f"agg{level + 1}"
        agg = ("sum" if level % 2 == 1 else "max")
        spec = AggSpec(agg, alias, next_alias)
        if remaining:
            current = group_aggregate(current, remaining, [spec])
        else:
            current = global_aggregate(current, [spec])
        alias = next_alias
    return current


# ---------------------------------------------------------------------------
# Partition-size sweep (§8.7, Fig 12)
# ---------------------------------------------------------------------------

def reload_with_partitions(
    tables,
    directory: str | Path,
    fact_partitions: int,
) -> Catalog:
    """Re-write the same TPC-H tables with a different fact partition
    count (the rows-per-partition knob of Fig 12)."""
    from repro.tpch.loader import load_tables

    return load_tables(
        tables, directory, fact_partitions=fact_partitions,
        dimension_partitions=2,
    )
