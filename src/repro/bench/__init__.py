"""Benchmark harness: metrics, runners, workloads, report formatting."""

from repro.bench.harness import (
    LatencyRow,
    SnapshotQuality,
    WakeRun,
    run_wake,
    score_snapshots,
    timed,
)
from repro.bench.metrics import (
    mape,
    median_or_nan,
    precision,
    ratio,
    recall,
    relative_ci_range,
    time_to_error,
)

__all__ = [
    "LatencyRow",
    "SnapshotQuality",
    "WakeRun",
    "mape",
    "median_or_nan",
    "precision",
    "ratio",
    "recall",
    "relative_ci_range",
    "run_wake",
    "score_snapshots",
    "time_to_error",
    "timed",
]
