"""Experiment harness: run Wake plans, score every snapshot against the
exact answer, and summarize latency/accuracy the way the paper reports it.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Sequence

from repro.api.context import WakeContext
from repro.api.frame_api import EdfFrame
from repro.core.edf import EvolvingDataFrame
from repro.dataframe import DataFrame
from repro.bench import metrics


@dataclass(frozen=True)
class SnapshotQuality:
    """Accuracy of one OLA snapshot against the exact final answer."""

    sequence: int
    t: float
    wall_time: float
    rows_processed: int
    mape: float
    recall: float
    precision: float


@dataclass
class WakeRun:
    """One Wake execution with its quality trace."""

    edf: EvolvingDataFrame
    quality: list[SnapshotQuality] = field(default_factory=list)
    peak_bytes: int = 0

    @property
    def first_latency(self) -> float:
        return self.edf.snapshots[0].wall_time

    @property
    def final_latency(self) -> float:
        return self.edf.snapshots[-1].wall_time

    @property
    def first_quality(self) -> SnapshotQuality:
        return self.quality[0]

    def error_series(self) -> list[tuple[float, float]]:
        """[(wall_time, mape%), ...] for time-to-error lookups."""
        return [(q.wall_time, q.mape) for q in self.quality]

    def converged_series(self) -> list[tuple[float, float]]:
        """Like :meth:`error_series` but an estimate only counts once its
        recall is complete (missing groups are not convergence)."""
        return [
            (q.wall_time, q.mape if q.recall >= 100.0 else float("inf"))
            for q in self.quality
        ]

    def time_to_error(self, threshold_pct: float) -> float | None:
        return metrics.time_to_error(self.converged_series(),
                                     threshold_pct)


def score_snapshots(
    edf: EvolvingDataFrame,
    exact: DataFrame,
    keys: Sequence[str],
    values: Sequence[str],
) -> list[SnapshotQuality]:
    """Score every snapshot of an edf against the exact final frame."""
    out: list[SnapshotQuality] = []
    for snapshot in edf.snapshots:
        frame = snapshot.frame
        out.append(
            SnapshotQuality(
                sequence=snapshot.sequence,
                t=snapshot.t,
                wall_time=snapshot.wall_time,
                rows_processed=snapshot.rows_processed,
                mape=metrics.mape(frame, exact, keys, values),
                recall=metrics.recall(frame, exact, keys),
                precision=metrics.precision(frame, exact, keys),
            )
        )
    return out


def run_wake(
    ctx: WakeContext,
    plan: EdfFrame,
    exact: DataFrame | None = None,
    keys: Sequence[str] = (),
    values: Sequence[str] = (),
    capture_all: bool = True,
    track_memory: bool = False,
    **run_kwargs,
) -> WakeRun:
    """Execute a plan and (optionally) score its snapshots."""
    if track_memory:
        tracemalloc.start()
    edf = ctx.run(plan, capture_all=capture_all, **run_kwargs)
    peak = 0
    if track_memory:
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    run = WakeRun(edf=edf, peak_bytes=peak)
    if exact is not None:
        run.quality = score_snapshots(edf, exact, keys, values)
    return run


@dataclass(frozen=True)
class LatencyRow:
    """One row of the Fig-7 style latency table."""

    query: str
    wake_first: float
    wake_final: float
    exact_memory: float
    exact_scan: float
    first_mape: float

    @property
    def first_speedup_vs_scan(self) -> float:
        """How much earlier Wake's first estimate lands than the scan
        engine's exact answer."""
        return metrics.ratio(self.exact_scan, self.wake_first)

    @property
    def final_slowdown_vs_memory(self) -> float:
        return metrics.ratio(self.wake_final, self.exact_memory)


def timed(fn, *args, **kwargs) -> tuple[object, float]:
    """(result, elapsed_seconds) of one call."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started
