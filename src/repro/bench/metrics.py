"""Evaluation metrics (paper §8.1): MAPE, recall, precision, time-to-
error, and relative CI range.

Group alignment is by key tuple; MAPE averages |est − exact| / |exact|
over the groups present in *both* frames (the paper's protocol — missing
groups are a recall problem, not a value-error problem) and over all value
columns.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.dataframe import DataFrame


def _key_rows(frame: DataFrame, keys: Sequence[str]) -> list[tuple]:
    if not keys:
        return [() for _ in range(frame.n_rows)]
    columns = [frame.column(k).tolist() for k in keys]
    return list(zip(*columns)) if columns else []


def _index_by_key(frame: DataFrame, keys: Sequence[str]) -> dict:
    return {key: i for i, key in enumerate(_key_rows(frame, keys))}


def mape(
    estimate: DataFrame,
    exact: DataFrame,
    keys: Sequence[str],
    values: Sequence[str],
) -> float:
    """Mean absolute percentage error (in %) over common groups.

    Exact zeros are skipped (undefined relative error).  Returns NaN when
    nothing is comparable (no common groups or no value columns).
    """
    if not values:
        return float("nan")
    est_index = _index_by_key(estimate, keys)
    exact_index = _index_by_key(exact, keys)
    common = [k for k in exact_index if k in est_index]
    if not common:
        return float("nan")
    errors: list[float] = []
    for column in values:
        est_col = estimate.column(column).astype(np.float64)
        exact_col = exact.column(column).astype(np.float64)
        for key in common:
            truth = exact_col[exact_index[key]]
            guess = est_col[est_index[key]]
            if truth == 0 or math.isnan(truth):
                continue
            if math.isnan(guess):
                errors.append(1.0)  # missing estimate counts as 100%
                continue
            errors.append(abs(guess - truth) / abs(truth))
    if not errors:
        return float("nan")
    return 100.0 * float(np.mean(errors))


def recall(estimate: DataFrame, exact: DataFrame,
           keys: Sequence[str]) -> float:
    """Fraction of final-result groups present in the estimate (in %)."""
    exact_keys = set(_key_rows(exact, keys))
    if not exact_keys:
        return 100.0
    est_keys = set(_key_rows(estimate, keys))
    return 100.0 * len(exact_keys & est_keys) / len(exact_keys)


def precision(estimate: DataFrame, exact: DataFrame,
              keys: Sequence[str]) -> float:
    """Fraction of estimated groups that exist in the final result."""
    est_keys = set(_key_rows(estimate, keys))
    if not est_keys:
        return 100.0
    exact_keys = set(_key_rows(exact, keys))
    return 100.0 * len(est_keys & exact_keys) / len(est_keys)


def time_to_error(
    series: Sequence[tuple[float, float]],
    threshold_pct: float,
) -> float | None:
    """Earliest wall time at which the error drops to ``threshold_pct``
    (and stays measurable); ``series`` is [(wall_time, mape_pct), ...].
    Returns None if the threshold is never reached."""
    for wall, err in series:
        if not math.isnan(err) and err <= threshold_pct:
            return wall
    return None


def relative_ci_range(
    estimate: np.ndarray,
    exact: np.ndarray,
    sigma: np.ndarray,
    k: float,
) -> np.ndarray:
    """|ŷ − y| / (k·σ): < 1 means the true answer is inside the CI
    (paper Fig 10b).  NaN where σ is NaN or zero."""
    estimate = np.asarray(estimate, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.abs(estimate - exact) / (k * sigma)
    out[~np.isfinite(out)] = np.nan
    return out


def median_or_nan(values: Sequence[float]) -> float:
    cleaned = [v for v in values if v is not None and not math.isnan(v)]
    if not cleaned:
        return float("nan")
    return float(np.median(cleaned))


def ratio(numerator: float | None, denominator: float | None) -> float:
    """Safe ratio for speedup/slowdown tables."""
    if (
        numerator is None or denominator is None
        or denominator == 0 or math.isnan(numerator)
        or math.isnan(denominator)
    ):
        return float("nan")
    return numerator / denominator
