"""Plain-text tables and series for the benchmark reports.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and diff-able (the bench
harness tees stdout into ``bench_output.txt``).
"""

from __future__ import annotations

import json
import math
import operator
from datetime import datetime, timezone
from pathlib import Path
from typing import Sequence


def fmt(value: object, width: int = 0) -> str:
    """Human formatting: 3 significant figures for floats, NaN-safe."""
    if isinstance(value, float):
        if math.isnan(value):
            text = "nan"
        elif value == 0:
            text = "0"
        elif abs(value) >= 1000:
            text = f"{value:,.0f}"
        elif abs(value) >= 1:
            text = f"{value:.3g}"
        else:
            text = f"{value:.3g}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(parts: Sequence[str]) -> str:
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_series(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    return f"{title}\n{format_table(headers, rows)}"


def ascii_timeline(
    events: Sequence[tuple[str, float, float]],
    width: int = 72,
) -> str:
    """Fig-13 style gantt: one row per node, '#' for busy spans.

    ``events`` is [(node, start, end), ...] with absolute times.
    """
    if not events:
        return "(no events)"
    t0 = min(start for _, start, _ in events)
    t1 = max(end for _, _, end in events)
    span = max(t1 - t0, 1e-9)
    nodes: dict[str, list[tuple[float, float]]] = {}
    for name, start, end in events:
        nodes.setdefault(name, []).append((start, end))
    label_width = max(len(name) for name in nodes)
    lines = []
    for name, spans in nodes.items():
        row = [" "] * width
        for start, end in spans:
            a = int((start - t0) / span * (width - 1))
            b = max(a + 1, int((end - t0) / span * (width - 1)) + 1)
            for i in range(a, min(b, width)):
                row[i] = "#"
        lines.append(f"{name.rjust(label_width)} |{''.join(row)}|")
    lines.append(
        f"{' ' * label_width} 0{' ' * (width - 10)}{span * 1000:.0f}ms"
    )
    return "\n".join(lines)


def banner(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"


#: Comparison operators a perf guard may assert with.
GUARD_OPS = {
    ">=": operator.ge,
    "<=": operator.le,
    ">": operator.gt,
    "<": operator.lt,
    "==": operator.eq,
}


class GuardLog:
    """Machine-readable perf-guard trajectory (``BENCH_summary.json``).

    Each :meth:`record` upserts one guard result — benchmark name,
    metric, threshold, measured value, pass/fail, UTC timestamp — keyed
    by ``(benchmark, metric)``, and rewrites the summary file.  Merging
    by key (instead of truncating per session) means a partial local run
    of one benchmark file refreshes only its own guards and never
    clobbers the rest of the recorded trajectory; a partially-failed run
    still records every guard that executed.  CI runs every guard
    benchmark and uploads the file per commit, turning the perf guards
    from a pass/fail bit into a recorded trajectory.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def _load(self) -> dict:
        if self.path.exists():
            try:
                return json.loads(self.path.read_text())
            except json.JSONDecodeError:
                pass
        return {"guards": []}

    def record(
        self,
        benchmark: str,
        metric: str,
        value: float,
        threshold: float,
        op: str = ">=",
        passed: bool | None = None,
    ) -> bool:
        if op not in GUARD_OPS:
            raise ValueError(
                f"unknown guard op {op!r}; expected one of "
                f"{sorted(GUARD_OPS)}"
            )
        if passed is None:
            passed = bool(GUARD_OPS[op](value, threshold))
        doc = self._load()
        doc["guards"] = [
            g for g in doc.get("guards", [])
            if (g.get("benchmark"), g.get("metric")) != (benchmark, metric)
        ]
        doc["guards"].append(
            {
                "benchmark": benchmark,
                "metric": metric,
                "value": value,
                "threshold": threshold,
                "op": op,
                "passed": passed,
                "timestamp": datetime.now(timezone.utc).isoformat(),
            }
        )
        doc["generated_at"] = datetime.now(timezone.utc).isoformat()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(doc, indent=2))
        return passed
