"""End-to-end telemetry: metrics registry, tracing, profiling.

Everything here is dependency-free and off by default; the service
layer switches it on via ``ExecutionOptions(telemetry=True)`` (the
``repro serve`` default) and exposes it over the wire as the
``metrics``/``trace`` NDJSON ops plus a ``GET /metrics`` Prometheus
responder.  See the README's "Observability" section for the metric
catalog and usage walkthroughs.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_INSTRUMENT,
)
from repro.obs.instruments import (
    BufferInstruments,
    ScanInstruments,
    SchedulerInstruments,
    ServiceInstruments,
)
from repro.obs.profile import OperatorProfiler
from repro.obs.trace import SessionTrace, Span, Tracer, maybe_span

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_INSTRUMENT",
    "BufferInstruments",
    "ScanInstruments",
    "SchedulerInstruments",
    "ServiceInstruments",
    "OperatorProfiler",
    "SessionTrace",
    "Span",
    "Tracer",
    "maybe_span",
]
