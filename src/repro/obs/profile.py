"""Per-operator profiling for a :class:`StepExecutor` run.

An :class:`OperatorProfiler` attached to an executor (``executor.
profiler = OperatorProfiler()``) accumulates, per operator name, how
many dispatches it received, how many input rows it consumed, and how
much wall time it spent — source pulls included (attributed to the
scan operator).  ``explain(mode="profile")`` / ``repro profile`` run a
plan to completion with one attached and render the table.

The profiler is dictionary-per-record cheap (one dict lookup + three
in-place adds per dispatch) and is only ever consulted when explicitly
attached; the un-profiled path pays a single ``is None`` check.
"""

from __future__ import annotations


class OperatorProfiler:
    """Accumulates per-operator call/row/time totals."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        # name -> [calls, rows, seconds]; mutated in place so the
        # per-dispatch cost is one lookup and three adds.
        self._records: dict[str, list] = {}

    def record(self, name: str, seconds: float, rows: int) -> None:
        entry = self._records.get(name)
        if entry is None:
            entry = [0, 0, 0.0]
            self._records[name] = entry
        entry[0] += 1
        entry[1] += rows
        entry[2] += seconds

    # -- views --------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(e[2] for e in self._records.values())

    def to_dict(self) -> dict:
        """JSON-friendly per-operator totals (insertion = first-seen
        dispatch order)."""
        return {
            name: {"calls": calls, "rows": rows, "seconds": seconds}
            for name, (calls, rows, seconds) in self._records.items()
        }

    def rows(self) -> list[list]:
        """Table rows sorted by time descending, with a totals row."""
        total = self.total_seconds
        body = [
            [name, calls, rows,
             f"{seconds * 1000.0:.2f}",
             f"{(seconds / total * 100.0) if total else 0.0:.1f}%"]
            for name, (calls, rows, seconds) in sorted(
                self._records.items(), key=lambda kv: -kv[1][2]
            )
        ]
        body.append([
            "total",
            sum(e[0] for e in self._records.values()),
            sum(e[1] for e in self._records.values()),
            f"{total * 1000.0:.2f}",
            "100.0%" if self._records else "0.0%",
        ])
        return body

    def render(self) -> str:
        """The per-operator time/rows breakdown table."""
        # Deferred: repro.bench imports repro.api.context, which imports
        # this module — a module-scope import would be circular.
        from repro.bench.report import format_table

        return format_table(
            ["operator", "calls", "rows-in", "time-ms", "share"],
            self.rows(),
        )
