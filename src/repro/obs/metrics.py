"""Dependency-free metrics registry (counters, gauges, histograms).

Design constraints, in order:

* **Hot-path cost.**  Instruments are *pre-bound*: a call site obtains
  its :class:`Counter`/:class:`Gauge`/:class:`Histogram` once (at
  construction / submit time) and the per-event operation is a single
  locked integer/float update — no name lookup, no label-dict
  allocation, no string formatting.  The ``metric-hot-lookup`` lint
  rule (:mod:`repro.analysis.lint`) enforces this shape for
  ``consume*``/``step()``/``__next__`` bodies.
* **Zero cost when off.**  The disabled path uses
  :class:`NullRegistry`, whose instruments are shared no-op singletons;
  the only residual cost at an instrumented call site is one ``is not
  None`` (or attribute) check.
* **Determinism.**  The clock is injectable (``clock=``, default
  ``time.monotonic``), so replay-critical callers can pass a virtual
  clock and the PR 8 ``unseeded-random`` lint stays satisfiable.
* **No drift.**  Subsystems that already keep authoritative counters
  (the scan-share pool, the result cache, the scheduler run queue)
  are exposed through *views* — collection-time callbacks — instead of
  shadow counters that could diverge (:meth:`MetricsRegistry.
  register_view`).

Exposition: :meth:`MetricsRegistry.to_dict` (JSON, the NDJSON
``metrics`` op) and :meth:`MetricsRegistry.render_prometheus`
(Prometheus text format 0.0.4, served by the snapshot server's
``GET /metrics`` responder).
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Callable, Mapping, Sequence

from repro.errors import QueryError

#: Latency buckets (seconds) shared by the step/lag histograms —
#: spanning sub-millisecond partition-steps up to multi-second stalls.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _freeze_labels(labels: Mapping[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing float (events, rows, bytes, seconds)."""

    kind = "counter"

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise QueryError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (depths, lags, sizes)."""

    kind = "gauge"

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram: O(log buckets) per observation, no
    allocation (the bucket counts are preallocated at construction)."""

    kind = "histogram"

    __slots__ = ("name", "labels", "_lock", "_uppers", "_counts",
                 "_sum", "_count")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: LabelSet = (),
    ) -> None:
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise QueryError(f"histogram {name!r} needs >= 1 bucket")
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._uppers = uppers
        # One slot per finite bucket plus the +Inf overflow slot.
        self._counts = [0] * (len(uppers) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self._uppers, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict:
        """Cumulative ``le``-keyed buckets plus sum/count (the
        Prometheus histogram contract)."""
        with self._lock:
            counts = list(self._counts)
            total, total_sum = self._count, self._sum
        cumulative: dict[str, int] = {}
        running = 0
        for upper, count in zip(self._uppers, counts):
            running += count
            cumulative[repr(upper)] = running
        cumulative["+Inf"] = total
        return {"buckets": cumulative, "sum": total_sum,
                "count": total}

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class _View:
    """A collection-time callback over an authoritative external value
    (no shadow counter to drift).  ``fn`` returns either a number or a
    list of ``(labels-dict, number)`` pairs for labeled series."""

    __slots__ = ("name", "kind", "fn", "help")

    def __init__(self, name: str, kind: str,
                 fn: Callable[[], object], help: str) -> None:
        self.name = name
        self.kind = kind
        self.fn = fn
        self.help = help

    def samples(self) -> list[tuple[LabelSet, float]]:
        value = self.fn()
        if isinstance(value, (int, float)):
            return [((), float(value))]
        return [(_freeze_labels(labels), float(v))
                for labels, v in value]  # type: ignore[union-attr]


class MetricsRegistry:
    """Get-or-create instrument factory + exposition surface.

    Instruments are keyed by ``(name, labels)``; asking twice returns
    the same object, so wiring code can re-derive its bindings without
    double counting.  A name registered as one kind cannot be re-used
    as another.
    """

    #: Discriminates a live registry from :class:`NullRegistry` without
    #: an isinstance check at call sites.
    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self.created_at = clock()
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelSet], object] = {}
        self._meta: dict[str, tuple[str, str]] = {}  # name -> kind, help
        self._views: list[_View] = []

    # -- instrument factories -----------------------------------------------------
    def _get(self, cls, name: str, labels: Mapping[str, str] | None,
             help: str, **kwargs):
        frozen = _freeze_labels(labels)
        key = (name, frozen)
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if existing.kind != cls.kind:  # type: ignore[attr-defined]
                    raise QueryError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"  # type: ignore[attr-defined]
                    )
                return existing
            registered = self._meta.get(name)
            if registered is not None and registered[0] != cls.kind:
                raise QueryError(
                    f"metric {name!r} already registered as "
                    f"{registered[0]}, not {cls.kind}"
                )
            instrument = cls(name, labels=frozen, **kwargs)
            self._instruments[key] = instrument
            if registered is None or (help and not registered[1]):
                self._meta[name] = (cls.kind, help)
            return instrument

    def counter(self, name: str, help: str = "",
                labels: Mapping[str, str] | None = None) -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "",
              labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        return self._get(Histogram, name, labels, help,
                         buckets=buckets)

    def register_view(
        self,
        name: str,
        fn: Callable[[], object],
        kind: str = "gauge",
        help: str = "",
    ) -> None:
        """Expose an external authoritative value under ``name`` at
        collection time.  ``fn`` returns a number, or a list of
        ``(labels-dict, number)`` pairs for per-entity series (e.g. one
        sample per session).  A raising/stale view is the registrant's
        bug — views run unguarded so failures surface in tests."""
        if kind not in ("counter", "gauge"):
            raise QueryError(
                f"view {name!r}: kind must be counter|gauge, got {kind!r}"
            )
        with self._lock:
            registered = self._meta.get(name)
            if registered is not None:
                raise QueryError(
                    f"metric {name!r} already registered as "
                    f"{registered[0]}"
                )
            self._meta[name] = (kind, help)
            self._views.append(_View(name, kind, fn, help))

    # -- exposition ---------------------------------------------------------------
    def uptime(self) -> float:
        return self.clock() - self.created_at

    def _families(self) -> dict[str, dict]:
        """name -> {kind, help, samples: [(labels, payload)]} where the
        payload is a float (counter/gauge) or a histogram snapshot."""
        with self._lock:
            instruments = list(self._instruments.values())
            views = list(self._views)
            meta = dict(self._meta)
        families: dict[str, dict] = {
            name: {"kind": kind, "help": help, "samples": []}
            for name, (kind, help) in meta.items()
        }
        for inst in instruments:
            payload = (inst.snapshot() if inst.kind == "histogram"
                       else inst.value)  # type: ignore[attr-defined]
            families[inst.name]["samples"].append(  # type: ignore[attr-defined]
                (inst.labels, payload))  # type: ignore[attr-defined]
        for view in views:
            families[view.name]["samples"].extend(view.samples())
        return families

    def to_dict(self) -> dict:
        """JSON-friendly series dump (the NDJSON ``metrics`` payload)."""
        out: dict[str, dict] = {}
        for name, family in sorted(self._families().items()):
            out[name] = {
                "kind": family["kind"],
                "help": family["help"],
                "samples": [
                    {"labels": dict(labels), "value": payload}
                    for labels, payload in family["samples"]
                ],
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for name, family in sorted(self._families().items()):
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for labels, payload in family["samples"]:
                if isinstance(payload, dict):  # histogram
                    for le, count in payload["buckets"].items():
                        lines.append(
                            f"{name}_bucket"
                            f"{_label_str(labels, extra=('le', le))} "
                            f"{count}"
                        )
                    lines.append(
                        f"{name}_sum{_label_str(labels)} "
                        f"{_format_value(payload['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_label_str(labels)} "
                        f"{payload['count']}"
                    )
                else:
                    lines.append(
                        f"{name}{_label_str(labels)} "
                        f"{_format_value(payload)}"
                    )
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _label_str(labels: LabelSet,
               extra: tuple[str, str] | None = None) -> str:
    items = list(labels)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in items
    )
    return "{" + body + "}"


# ---------------------------------------------------------------------------
# Disabled path: shared no-op singletons
# ---------------------------------------------------------------------------

class NullInstrument:
    """Accepts every instrument method as a no-op; a single shared
    instance backs every disabled call site."""

    kind = "null"

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


NULL_INSTRUMENT = NullInstrument()


class NullRegistry:
    """The telemetry-off registry: same surface, no state, no cost."""

    enabled = False

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self.created_at = 0.0

    def counter(self, name: str, help: str = "",
                labels: Mapping[str, str] | None = None) -> NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "",
              labels: Mapping[str, str] | None = None) -> NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str, buckets: Sequence[float] = (),
                  help: str = "",
                  labels: Mapping[str, str] | None = None) -> NullInstrument:
        return NULL_INSTRUMENT

    def register_view(self, name: str, fn: Callable[[], object],
                      kind: str = "gauge", help: str = "") -> None:
        pass

    def uptime(self) -> float:
        return 0.0

    def to_dict(self) -> dict:
        return {}

    def render_prometheus(self) -> str:
        return ""
