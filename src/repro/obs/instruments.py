"""Pre-bound instrument bundles for the service's hot paths.

Hot-path code must never look instruments up by name or allocate a
label dict per event (the ``metric-hot-lookup`` lint rule): each
subsystem instead receives one of these bundles — plain attribute
access to instruments bound once at service construction.  The whole
bundle is ``None`` when telemetry is off, so the disabled cost is a
single ``is None`` check at each seam.

Metric catalog (all service-global; per-session series are emitted as
registry *views* over the live session objects — see
``QueryService._register_views``):

========================================  =========  =====================================
name                                      kind       meaning
========================================  =========  =====================================
``repro_steps_total``                     counter    partition-steps executed
``repro_step_seconds``                    histogram  per-step wall time
``repro_step_retries_total``              counter    step retries consumed
``repro_step_backoff_seconds_total``      counter    backoff delay scheduled
``repro_partitions_quarantined_total``    counter    partitions skipped (degrade mode)
``repro_snapshots_published_total``       counter    snapshots appended to buffers
``repro_snapshot_lag_seconds``            histogram  produce-to-consume delay
``repro_buffer_drops_total``              counter    snapshots subscribers missed
``repro_buffer_evictions_total``          counter    snapshots evicted (bounded buffers)
``repro_partitions_read_total``           counter    partitions delivered to scans
``repro_partitions_pruned_total``         counter    partitions skipped by zone maps
``repro_scan_rows_total``                 counter    rows delivered to scans
``repro_scan_bytes_total``                counter    bytes delivered to scans
========================================  =========  =====================================
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


class ScanInstruments:
    """Storage-read counters, injected into scan streams like the
    scan-share pool is (see ``StepExecutor._open_streams``)."""

    __slots__ = ("partitions_read", "partitions_pruned", "rows_read",
                 "bytes_read")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.partitions_read = registry.counter(
            "repro_partitions_read_total",
            help="partitions delivered to scan operators",
        )
        self.partitions_pruned = registry.counter(
            "repro_partitions_pruned_total",
            help="partitions skipped by zone-map pruning",
        )
        self.rows_read = registry.counter(
            "repro_scan_rows_total",
            help="rows delivered to scan operators",
        )
        self.bytes_read = registry.counter(
            "repro_scan_bytes_total",
            help="column bytes delivered to scan operators",
        )


class BufferInstruments:
    """Snapshot-buffer lifecycle: publishes, consume lag, drops,
    evictions.  Carries the registry clock so buffers can stamp
    produce times without importing the registry."""

    __slots__ = ("clock", "snapshots", "lag", "drops", "evictions")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.clock = registry.clock
        self.snapshots = registry.counter(
            "repro_snapshots_published_total",
            help="snapshots appended to session buffers",
        )
        self.lag = registry.histogram(
            "repro_snapshot_lag_seconds",
            help="delay between a snapshot's publish and its consume",
        )
        self.drops = registry.counter(
            "repro_buffer_drops_total",
            help="snapshots subscribers missed to bounded-buffer "
                 "eviction",
        )
        self.evictions = registry.counter(
            "repro_buffer_evictions_total",
            help="snapshots evicted from bounded session buffers",
        )


class SchedulerInstruments:
    """Step-loop counters: throughput, latency, fault churn."""

    __slots__ = ("steps", "step_seconds", "retries", "backoff_seconds",
                 "quarantines")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.steps = registry.counter(
            "repro_steps_total",
            help="partition-steps executed across all sessions",
        )
        self.step_seconds = registry.histogram(
            "repro_step_seconds",
            help="wall time of one partition-step",
        )
        self.retries = registry.counter(
            "repro_step_retries_total",
            help="step retries consumed after transient failures",
        )
        self.backoff_seconds = registry.counter(
            "repro_step_backoff_seconds_total",
            help="retry backoff delay scheduled",
        )
        self.quarantines = registry.counter(
            "repro_partitions_quarantined_total",
            help="partitions quarantined by skip-and-degrade mode",
        )


class ServiceInstruments:
    """Everything the service layer binds, bound once."""

    __slots__ = ("registry", "scan", "buffer", "scheduler")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.scan = ScanInstruments(registry)
        self.buffer = BufferInstruments(registry)
        self.scheduler = SchedulerInstruments(registry)
