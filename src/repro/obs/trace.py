"""Query-lifecycle tracing: per-session span trees.

One :class:`SessionTrace` records a submitted query's life — submit →
validate → optimize → per-step execute → snapshot publish — as a tree
of :class:`Span` intervals on the injectable monotonic clock, tagged
with the session id and canonical plan hash for correlation with the
metrics surface and ``status`` replies.

Retention is bounded twice over: per-trace, only the newest
``max_step_events`` step records are kept verbatim (aggregates —
count, total seconds — are exact over the whole run); per-tracer, only
the newest ``max_traces`` traces are retained (a ring over session
order), so a long-running server cannot grow without bound.

Export: :meth:`SessionTrace.to_dict` (JSON, the NDJSON ``trace`` op)
and :meth:`SessionTrace.render` (human-readable lines, the
``OptimizerTrace``-style debugging view).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager, nullcontext
from typing import Callable, ContextManager, Iterator


class Span:
    """One named interval (possibly nested) on the trace clock."""

    __slots__ = ("name", "started", "ended", "attrs", "children")

    def __init__(self, name: str, started: float, **attrs) -> None:
        self.name = name
        self.started = started
        self.ended: float | None = None
        self.attrs = attrs
        self.children: list["Span"] = []

    @property
    def duration(self) -> float | None:
        if self.ended is None:
            return None
        return self.ended - self.started

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "started": self.started,
            "ended": self.ended,
            "duration": self.duration,
            "attrs": {k: v for k, v in self.attrs.items()},
            "children": [c.to_dict() for c in self.children],
        }


class SessionTrace:
    """The span tree + step/publish aggregates for one submit."""

    def __init__(
        self,
        name: str,
        clock: Callable[[], float] = time.monotonic,
        max_step_events: int = 128,
    ) -> None:
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        #: Correlation ids, set by the service once known.
        self.session_id: str | None = None
        self.plan_hash: str | None = None
        self.root = Span("query", clock())
        self._stack: list[Span] = [self.root]
        #: Newest step records: (step index, started, seconds).
        self.steps: deque[tuple[int, float, float]] = deque(
            maxlen=max_step_events
        )
        self.steps_total = 0
        self.step_seconds = 0.0
        self.publishes_total = 0

    # -- recording ----------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span under the innermost open span."""
        with self._lock:
            span = Span(name, self._clock(), **attrs)
            self._stack[-1].children.append(span)
            self._stack.append(span)
        try:
            yield span
        finally:
            with self._lock:
                span.ended = self._clock()
                if self._stack[-1] is span:
                    self._stack.pop()

    def record_step(self, index: int, seconds: float) -> None:
        """One executed partition-step (called by the scheduler; kept
        as a bounded ring + exact aggregates, not a span per step)."""
        with self._lock:
            self.steps.append((index, self._clock() - seconds, seconds))
            self.steps_total += 1
            self.step_seconds += seconds

    def record_publish(self, count: int) -> None:
        """``count`` snapshots moved into the session buffer."""
        with self._lock:
            self.publishes_total += count

    def finish(self, state: str | None = None) -> None:
        """Seal the root span (idempotent)."""
        with self._lock:
            if self.root.ended is None:
                self.root.ended = self._clock()
            if state is not None:
                self.root.attrs["state"] = state

    # -- export -------------------------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "session": self.session_id,
                "name": self.name,
                "plan_hash": self.plan_hash,
                "steps_total": self.steps_total,
                "step_seconds": self.step_seconds,
                "publishes_total": self.publishes_total,
                "recent_steps": [
                    {"index": i, "started": s, "seconds": d}
                    for i, s, d in self.steps
                ],
                "spans": self.root.to_dict(),
            }

    def render(self) -> str:
        """Human-readable span tree + step aggregates."""
        with self._lock:
            lines = [
                f"trace {self.session_id or '?'} ({self.name})"
                + (f" plan={self.plan_hash[:12]}" if self.plan_hash
                   else ""),
            ]
            self._render_span(self.root, lines, indent=1)
            if self.steps_total:
                mean = self.step_seconds / self.steps_total
                lines.append(
                    f"  execute: {self.steps_total} step(s), "
                    f"{self.step_seconds * 1000.0:.1f} ms total, "
                    f"{mean * 1000.0:.2f} ms/step "
                    f"(last {len(self.steps)} retained)"
                )
            lines.append(
                f"  publish: {self.publishes_total} snapshot(s)"
            )
        return "\n".join(lines)

    def _render_span(self, span: Span, lines: list[str],
                     indent: int) -> None:
        base = self.root.started
        start = span.started - base
        dur = (f"{span.duration * 1000.0:.1f} ms"
               if span.duration is not None else "open")
        attrs = "".join(
            f" {k}={v}" for k, v in span.attrs.items()
        )
        lines.append(
            f"{'  ' * indent}{span.name} @{start * 1000.0:.1f} ms "
            f"[{dur}]{attrs}"
        )
        for child in span.children:
            self._render_span(child, lines, indent + 1)


def maybe_span(trace: "SessionTrace | None", name: str,
               **attrs) -> ContextManager:
    """``trace.span(...)`` when tracing, a no-op context otherwise —
    the one-liner instrumented call sites use."""
    if trace is None:
        return nullcontext()
    return trace.span(name, **attrs)


class Tracer:
    """Ring of retained :class:`SessionTrace` objects, keyed by
    session id once bound (insertion-ordered; oldest evicted)."""

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        max_traces: int = 64,
        max_step_events: int = 128,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._max_traces = max_traces
        self._max_step_events = max_step_events
        self._traces: "OrderedDict[str, SessionTrace]" = OrderedDict()

    def begin(self, name: str) -> SessionTrace:
        """A fresh trace for one submit (bind it to its session id with
        :meth:`bind` once the scheduler assigns one)."""
        return SessionTrace(name, clock=self._clock,
                            max_step_events=self._max_step_events)

    def bind(self, session_id: str, trace: SessionTrace) -> None:
        """Retain ``trace`` under ``session_id`` (evicting the oldest
        retained trace beyond the ring bound)."""
        trace.session_id = session_id
        with self._lock:
            self._traces[session_id] = trace
            self._traces.move_to_end(session_id)
            while len(self._traces) > self._max_traces:
                self._traces.popitem(last=False)

    def get(self, session_id: str) -> SessionTrace | None:
        with self._lock:
            return self._traces.get(session_id)

    def traces(self) -> list[SessionTrace]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._traces.values())
