"""Columnar DataFrame substrate (the Arrow-analogue layer of the paper).

Public surface:

* :class:`DataFrame` — immutable-by-convention columnar frame on numpy.
* :class:`Schema`, :class:`Field`, :class:`DType`, :class:`AttributeKind`.
* Expressions: :func:`col`, :func:`lit`, :func:`when`.
* Kernels: group-by aggregation, hash/merge joins, stable multi-key sort.
* Date helpers (DATE columns are int64 days since 1970-01-01).
"""

from repro.dataframe.schema import (
    AttributeKind,
    DType,
    Field,
    Schema,
    dtype_of,
    numpy_dtype,
)
from repro.dataframe.frame import DataFrame
from repro.dataframe.expr import Expr, col, lit, when
from repro.dataframe.groupby import (
    AGG_FUNCTIONS,
    AggSpec,
    Grouper,
    factorize,
    global_aggregate,
    group_aggregate,
    group_codes,
)
from repro.dataframe.join import JoinIndex, hash_join, merge_join
from repro.dataframe.sort import sort_frame, sort_indices, top_k
from repro.dataframe.dates import add_months, add_years, date, date_str, dates

__all__ = [
    "AGG_FUNCTIONS",
    "AggSpec",
    "AttributeKind",
    "DType",
    "DataFrame",
    "Expr",
    "Field",
    "Grouper",
    "JoinIndex",
    "Schema",
    "add_months",
    "add_years",
    "col",
    "date",
    "date_str",
    "dates",
    "dtype_of",
    "factorize",
    "global_aggregate",
    "group_aggregate",
    "group_codes",
    "hash_join",
    "lit",
    "merge_join",
    "numpy_dtype",
    "sort_frame",
    "sort_indices",
    "top_k",
    "when",
]
