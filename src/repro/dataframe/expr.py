"""A small expression language over DataFrame columns.

Filters and derived columns across the library are expressed as
:class:`Expr` trees — e.g. ``(col("sum_qty") > 300) & col("name").contains
("east")``.  Besides evaluation, expressions report which columns they
reference (:meth:`Expr.columns`), which the edf filter/map operators use to
classify themselves: a predicate touching only *constant* attributes is an
order-preserving Case-1 operation, while one touching a *mutable* attribute
forces recomputation (paper §2.3).
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable

import numpy as np

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe import dates as _dates


class Expr:
    """Base expression node. Subclasses implement ``evaluate`` and
    ``columns``."""

    def evaluate(self, frame: DataFrame) -> np.ndarray:
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        raise NotImplementedError

    # -- operator sugar -----------------------------------------------------
    def _bin(self, other: object, op: Callable, symbol: str) -> "Expr":
        return BinaryExpr(self, _wrap(other), op, symbol)

    def __add__(self, other: object) -> "Expr":
        return self._bin(other, operator.add, "+")

    def __radd__(self, other: object) -> "Expr":
        return _wrap(other)._bin(self, operator.add, "+")

    def __sub__(self, other: object) -> "Expr":
        return self._bin(other, operator.sub, "-")

    def __rsub__(self, other: object) -> "Expr":
        return _wrap(other)._bin(self, operator.sub, "-")

    def __mul__(self, other: object) -> "Expr":
        return self._bin(other, operator.mul, "*")

    def __rmul__(self, other: object) -> "Expr":
        return _wrap(other)._bin(self, operator.mul, "*")

    def __truediv__(self, other: object) -> "Expr":
        return self._bin(other, operator.truediv, "/")

    def __rtruediv__(self, other: object) -> "Expr":
        return _wrap(other)._bin(self, operator.truediv, "/")

    def __gt__(self, other: object) -> "Expr":
        return self._bin(other, operator.gt, ">")

    def __ge__(self, other: object) -> "Expr":
        return self._bin(other, operator.ge, ">=")

    def __lt__(self, other: object) -> "Expr":
        return self._bin(other, operator.lt, "<")

    def __le__(self, other: object) -> "Expr":
        return self._bin(other, operator.le, "<=")

    def __eq__(self, other: object) -> "Expr":  # type: ignore[override]
        return self._bin(other, operator.eq, "==")

    def __ne__(self, other: object) -> "Expr":  # type: ignore[override]
        return self._bin(other, operator.ne, "!=")

    def __and__(self, other: object) -> "Expr":
        return BinaryExpr(self, _wrap(other), np.logical_and, "&")

    def __or__(self, other: object) -> "Expr":
        return BinaryExpr(self, _wrap(other), np.logical_or, "|")

    def __invert__(self) -> "Expr":
        return UnaryExpr(self, np.logical_not, "~")

    def __neg__(self) -> "Expr":
        return UnaryExpr(self, operator.neg, "-")

    def __hash__(self) -> int:  # __eq__ is overloaded for expression building
        return id(self)

    # -- string / membership helpers ------------------------------------------
    def startswith(self, prefix: str) -> "Expr":
        return StringExpr(self, "startswith", prefix)

    def endswith(self, suffix: str) -> "Expr":
        return StringExpr(self, "endswith", suffix)

    def contains(self, needle: str) -> "Expr":
        return StringExpr(self, "contains", needle)

    def isin(self, values: Iterable[object]) -> "Expr":
        return IsInExpr(self, tuple(values))

    def between(self, low: object, high: object) -> "Expr":
        """Inclusive-low, exclusive-high range check (TPC-H idiom)."""
        return (self >= low) & (self < high)

    def year(self) -> "Expr":
        """Calendar year of a DATE (days-since-epoch) column."""
        return YearExpr(self)

    def substr(self, start: int, length: int) -> "Expr":
        """SQL SUBSTRING: 1-based ``start``, ``length`` characters."""
        return SubstrExpr(self, start, length)

    def abs(self) -> "Expr":
        return UnaryExpr(self, np.abs, "abs")


def _wrap(value: object) -> Expr:
    return value if isinstance(value, Expr) else Literal(value)


class Column(Expr):
    """Reference to a named column."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, frame: DataFrame) -> np.ndarray:
        return frame.column(self.name)

    def columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expr):
    """A scalar constant."""

    def __init__(self, value: object) -> None:
        self.value = value

    def evaluate(self, frame: DataFrame) -> np.ndarray:
        return self.value  # numpy broadcasting handles scalars

    def columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class BinaryExpr(Expr):
    def __init__(self, left: Expr, right: Expr, op: Callable,
                 symbol: str) -> None:
        self.left, self.right, self.op, self.symbol = left, right, op, symbol

    def evaluate(self, frame: DataFrame) -> np.ndarray:
        return self.op(self.left.evaluate(frame), self.right.evaluate(frame))

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class UnaryExpr(Expr):
    def __init__(self, inner: Expr, op: Callable, symbol: str) -> None:
        self.inner, self.op, self.symbol = inner, op, symbol

    def evaluate(self, frame: DataFrame) -> np.ndarray:
        return self.op(self.inner.evaluate(frame))

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"{self.symbol}({self.inner!r})"


class StringExpr(Expr):
    """Vectorized string predicates over unicode columns."""

    def __init__(self, inner: Expr, kind: str, needle: str) -> None:
        if kind not in ("startswith", "endswith", "contains"):
            raise QueryError(f"unknown string predicate {kind!r}")
        self.inner, self.kind, self.needle = inner, kind, needle

    def evaluate(self, frame: DataFrame) -> np.ndarray:
        values = np.asarray(self.inner.evaluate(frame), dtype=str)
        if self.kind == "startswith":
            return np.char.startswith(values, self.needle)
        if self.kind == "endswith":
            return np.char.endswith(values, self.needle)
        return np.char.find(values, self.needle) >= 0

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"{self.inner!r}.{self.kind}({self.needle!r})"


class IsInExpr(Expr):
    """Membership test against a fixed set of scalars."""

    def __init__(self, inner: Expr, values: tuple) -> None:
        self.inner, self.values = inner, values

    def evaluate(self, frame: DataFrame) -> np.ndarray:
        col = self.inner.evaluate(frame)
        return np.isin(col, np.asarray(self.values))

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"{self.inner!r}.isin({list(self.values)!r})"


class YearExpr(Expr):
    """Calendar-year extraction from days-since-epoch integers."""

    def __init__(self, inner: Expr) -> None:
        self.inner = inner

    def evaluate(self, frame: DataFrame) -> np.ndarray:
        return _dates.years_of(np.asarray(self.inner.evaluate(frame)))

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"year({self.inner!r})"


class SubstrExpr(Expr):
    """SQL-style substring over a string column (1-based start)."""

    def __init__(self, inner: Expr, start: int, length: int) -> None:
        if start < 1 or length < 0:
            raise QueryError(
                f"substr requires start >= 1 and length >= 0, got "
                f"({start}, {length})"
            )
        self.inner, self.start, self.length = inner, start, length

    def evaluate(self, frame: DataFrame) -> np.ndarray:
        values = np.asarray(self.inner.evaluate(frame), dtype=str)
        if len(values) == 0:
            return np.empty(0, dtype="U1")
        begin = self.start - 1
        end = begin + self.length
        return np.array([v[begin:end] for v in values.tolist()])

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"{self.inner!r}.substr({self.start}, {self.length})"


class CaseExpr(Expr):
    """``CASE WHEN cond THEN a ELSE b END`` (used by e.g. TPC-H Q8, Q12, Q14)."""

    def __init__(self, cond: Expr, then: object, otherwise: object) -> None:
        self.cond = cond
        self.then = _wrap(then)
        self.otherwise = _wrap(otherwise)

    def evaluate(self, frame: DataFrame) -> np.ndarray:
        return np.where(
            self.cond.evaluate(frame),
            self.then.evaluate(frame),
            self.otherwise.evaluate(frame),
        )

    def columns(self) -> frozenset[str]:
        return (
            self.cond.columns() | self.then.columns()
            | self.otherwise.columns()
        )

    def __repr__(self) -> str:
        return f"when({self.cond!r}, {self.then!r}, {self.otherwise!r})"


# -- factory helpers -----------------------------------------------------------

def col(name: str) -> Column:
    """Reference a column by name."""
    return Column(name)


def lit(value: object) -> Literal:
    """Wrap a scalar constant."""
    return Literal(value)


def when(cond: Expr, then: object, otherwise: object) -> CaseExpr:
    """Two-armed conditional expression."""
    return CaseExpr(cond, then, otherwise)
