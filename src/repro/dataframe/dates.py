"""Date helpers: logical DATE columns are int64 days since 1970-01-01.

TPC-H predicates are date-range comparisons, so an integer representation
keeps the whole pipeline inside numpy integer kernels while these helpers
translate to and from ISO strings at the edges.
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

_EPOCH = _dt.date(1970, 1, 1)


def date(iso: str) -> int:
    """Parse ``YYYY-MM-DD`` into days since the 1970-01-01 epoch."""
    parsed = _dt.date.fromisoformat(iso)
    return (parsed - _EPOCH).days


def date_str(days: int) -> str:
    """Format days-since-epoch back to ``YYYY-MM-DD``."""
    return (_EPOCH + _dt.timedelta(days=int(days))).isoformat()


def dates(iso_values: "list[str] | tuple[str, ...]") -> np.ndarray:
    """Vectorized :func:`date` returning an int64 array."""
    return np.array([date(v) for v in iso_values], dtype=np.int64)


def add_months(days: int, months: int) -> int:
    """Shift a days-since-epoch date by a number of calendar months.

    Used for TPC-H interval arithmetic such as ``date '1993-07-01' +
    interval '3' month``.  Day-of-month clamps to the target month's length,
    matching SQL semantics.
    """
    base = _EPOCH + _dt.timedelta(days=int(days))
    month_index = base.year * 12 + (base.month - 1) + months
    year, month = divmod(month_index, 12)
    month += 1
    day = min(
        base.day,
        [31, 29 if _is_leap(year) else 28, 31, 30, 31, 30,
         31, 31, 30, 31, 30, 31][month - 1],
    )
    return (_dt.date(year, month, day) - _EPOCH).days


def add_years(days: int, years: int) -> int:
    """Shift a days-since-epoch date by whole years (clamping Feb 29)."""
    return add_months(days, 12 * years)


def years_of(days: np.ndarray) -> np.ndarray:
    """Extract the calendar year from an int64 days-since-epoch array."""
    as_dates = days.astype("datetime64[D]")
    return as_dates.astype("datetime64[Y]").astype(np.int64) + 1970


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)
