"""Join kernels: hash (equi) joins plus semi/anti/left variants.

Two physical strategies live here:

* :func:`hash_join` — one-shot vectorized join: both key sides are
  factorized into one shared code space, the right side is sorted, and
  probe rows expand to match ranges via ``searchsorted``.  Cost is
  O(|left| + |right|) *per call*, which is the right shape for the exact
  reference engines but the wrong one for streaming operators.
* :class:`JoinIndex` — the incremental strategy: the build side is
  factorized and sorted **once**, after which each probe partition pays
  only a dictionary-encoded lookup plus ``searchsorted`` against the
  prebuilt index (O(|partition| log |build uniques|)).  This is what the
  streaming join operators use so that per-message cost tracks partition
  size rather than total data consumed (paper §3.2 / §7.2).

The progressive merge join *operator* (paper §3.2) reuses these kernels on
watermark-bounded buffers; see ``repro.engine.ops.join``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueryError, SchemaError
from repro.dataframe.frame import DataFrame
from repro.dataframe.schema import DType, Field, Schema

JOIN_METHODS = ("inner", "left", "semi", "anti")


def _check_key_dtypes(left: np.ndarray, right: np.ndarray) -> None:
    if left.dtype.kind != right.dtype.kind and not (
        left.dtype.kind in "if" and right.dtype.kind in "if"
    ):
        raise SchemaError(
            f"join key dtypes are incompatible: "
            f"{left.dtype} vs {right.dtype}"
        )


def shared_codes(
    left: Sequence[np.ndarray], right: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Encode multi-column keys from both sides into one dense code space."""
    if len(left) != len(right):
        raise QueryError("join key column counts differ between sides")
    n_left = len(left[0]) if left else 0
    combined_left: np.ndarray | None = None
    combined_right: np.ndarray | None = None
    for l_col, r_col in zip(left, right):
        _check_key_dtypes(l_col, r_col)
        both = np.concatenate([l_col, r_col])
        uniques, codes = np.unique(both, return_inverse=True)
        codes = codes.astype(np.int64, copy=False)
        l_codes, r_codes = codes[:n_left], codes[n_left:]
        if combined_left is None:
            combined_left, combined_right = l_codes, r_codes
        else:
            width = np.int64(len(uniques))
            combined_left = combined_left * width + l_codes
            combined_right = combined_right * width + r_codes
    if combined_left is None:
        raise QueryError("join requires at least one key column")
    return combined_left, combined_right


def _expand_matches(
    left_codes: np.ndarray,
    sorted_right: np.ndarray,
    order: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Matching (li, ri) pairs of probe codes against a presorted build
    side (``sorted_right = right_codes[order]``)."""
    starts = np.searchsorted(sorted_right, left_codes, side="left")
    ends = np.searchsorted(sorted_right, left_codes, side="right")
    return _expand_ranges(starts, ends, order)


def _expand_ranges(
    starts: np.ndarray, ends: np.ndarray, order: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    left_idx = np.repeat(np.arange(len(starts), dtype=np.int64), counts)
    # Vectorized "concatenate ranges": for each match slot, its offset within
    # the probe row's match range plus that range's start.
    cum = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(cum, counts)
    right_idx = order[np.repeat(starts, counts) + within]
    return left_idx, right_idx


def inner_join_indices(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Matching row-index pairs (li, ri) for an inner equi-join."""
    order = np.argsort(right_codes, kind="stable")
    return _expand_matches(left_codes, right_codes[order], order)


def match_counts(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> np.ndarray:
    """Number of right-side matches for every left row."""
    sorted_right = np.sort(right_codes, kind="stable")
    starts = np.searchsorted(sorted_right, left_codes, side="left")
    ends = np.searchsorted(sorted_right, left_codes, side="right")
    return ends - starts


def semi_join_mask(left_codes: np.ndarray,
                   right_codes: np.ndarray) -> np.ndarray:
    """Boolean mask of left rows that have at least one right match."""
    return match_counts(left_codes, right_codes) > 0


def anti_join_mask(left_codes: np.ndarray,
                   right_codes: np.ndarray) -> np.ndarray:
    """Boolean mask of left rows with no right match."""
    return match_counts(left_codes, right_codes) == 0


def _null_fill(dtype: DType, n: int) -> np.ndarray:
    """Fill values for unmatched left-join rows.

    Numeric columns (including dates) are promoted to float64 NaN; strings
    become the empty string; booleans become False.  Downstream ``count``
    aggregates skip NaN, which is what TPC-H Q13 relies on.
    """
    if dtype in (DType.INT64, DType.FLOAT64, DType.DATE):
        return np.full(n, np.nan, dtype=np.float64)
    if dtype == DType.STRING:
        return np.full(n, "", dtype="U1")
    if dtype == DType.BOOL:
        return np.zeros(n, dtype=np.bool_)
    raise SchemaError(f"cannot null-fill dtype {dtype!r}")


def _resolve_output_names(
    left: DataFrame, right: DataFrame, right_keys: Sequence[str],
    suffix: str,
) -> dict[str, str]:
    """Right-side output names: key columns are dropped (they duplicate the
    left keys); collisions on non-key names get ``suffix`` appended."""
    taken = set(left.column_names)
    mapping: dict[str, str] = {}
    for name in right.column_names:
        if name in right_keys:
            continue
        out = name if name not in taken else name + suffix
        if out in taken:
            raise SchemaError(
                f"column {out!r} collides even after applying suffix "
                f"{suffix!r}"
            )
        mapping[name] = out
        taken.add(out)
    return mapping


def _assemble_inner(
    left: DataFrame,
    right: DataFrame,
    li: np.ndarray,
    ri: np.ndarray,
    name_map: dict[str, str],
) -> DataFrame:
    """Gather matched pairs into the inner-join output frame."""
    data = {n: left.column(n)[li] for n in left.column_names}
    fields = list(left.schema.fields)
    for src, dst in name_map.items():
        data[dst] = right.column(src)[ri]
        fields.append(right.schema.field(src).renamed(dst))
    return DataFrame(data, schema=Schema(fields))


def _assemble_left(
    left: DataFrame,
    right: DataFrame,
    li: np.ndarray,
    ri: np.ndarray,
    unmatched: np.ndarray,
    name_map: dict[str, str],
) -> DataFrame:
    """Matched pairs plus unmatched left rows with null fills."""
    n_unmatched = int(unmatched.sum())
    data = {
        n: np.concatenate([left.column(n)[li], left.column(n)[unmatched]])
        for n in left.column_names
    }
    fields = list(left.schema.fields)
    for src, dst in name_map.items():
        src_field = right.schema.field(src)
        matched_vals = right.column(src)[ri]
        fill = _null_fill(src_field.dtype, n_unmatched)
        if src_field.dtype in (DType.INT64, DType.DATE):
            matched_vals = matched_vals.astype(np.float64)
            out_dtype = DType.FLOAT64
        else:
            out_dtype = src_field.dtype
        data[dst] = np.concatenate([matched_vals, fill])
        fields.append(Field(dst, out_dtype, src_field.kind))
    return DataFrame(data, schema=Schema(fields))


class JoinIndex:
    """A build-side hash-join index, factorized and sorted exactly once.

    Construction factorizes every build key column into a sorted value
    dictionary, combines the per-column codes into one dense code space,
    and sorts the combined build codes (the "hash table").  Probing a
    partition then costs only a ``searchsorted`` per key column against
    the dictionaries (probe values absent from the build dictionary get
    the sentinel code -1, which matches nothing) plus one range expansion
    against the presorted build codes — O(partition), independent of how
    many partitions have been probed before.

    Output assembly matches :func:`hash_join` exactly for every ``how``
    mode; the streaming join operators rely on that equivalence.
    """

    def __init__(
        self,
        build: DataFrame,
        build_on: Sequence[str],
        suffix: str = "_right",
    ) -> None:
        if not build_on:
            raise QueryError("join requires at least one key column")
        self.build = build
        self.build_on = tuple(build_on)
        self.suffix = suffix
        self._dicts: list[np.ndarray] = []
        combined: np.ndarray | None = None
        for key in self.build_on:
            uniques, codes = np.unique(
                build.column(key), return_inverse=True
            )
            codes = codes.astype(np.int64, copy=False)
            self._dicts.append(uniques)
            if combined is None:
                combined = codes
            else:
                combined = combined * np.int64(max(len(uniques), 1)) + codes
        assert combined is not None
        self._order = np.argsort(combined, kind="stable")
        self._sorted_codes = combined[self._order]

    @property
    def n_build_rows(self) -> int:
        return self.build.n_rows

    # -- probe-side encoding -----------------------------------------------------
    def _probe_codes(
        self, probe: DataFrame, probe_on: Sequence[str]
    ) -> np.ndarray:
        """Dictionary-encode probe keys into the build code space; rows
        whose keys are absent from the build dictionary get code -1."""
        probe_on = tuple(probe_on)
        if len(probe_on) != len(self.build_on):
            raise QueryError("join key column counts differ between sides")
        combined: np.ndarray | None = None
        valid: np.ndarray | None = None
        for key, uniques in zip(probe_on, self._dicts):
            col = probe.column(key)
            _check_key_dtypes(col, uniques)
            if len(uniques) == 0:
                return np.full(probe.n_rows, -1, dtype=np.int64)
            pos = np.searchsorted(uniques, col)
            pos = np.minimum(pos, len(uniques) - 1).astype(
                np.int64, copy=False
            )
            hit = uniques[pos] == col
            if uniques.dtype.kind == "f" and col.dtype.kind == "f":
                # np.unique collapses NaNs into one dictionary entry
                # (sorted last); match NaN probes to it the way the
                # shared-factorization kernel does.
                hit |= np.isnan(uniques[pos]) & np.isnan(col)
            if combined is None:
                combined = pos
            else:
                combined = combined * np.int64(len(uniques)) + pos
            valid = hit if valid is None else valid & hit
        assert combined is not None and valid is not None
        return np.where(valid, combined, np.int64(-1))

    def _counts_for(self, codes: np.ndarray) -> np.ndarray:
        starts = np.searchsorted(self._sorted_codes, codes, side="left")
        ends = np.searchsorted(self._sorted_codes, codes, side="right")
        return ends - starts

    def match_counts(
        self, probe: DataFrame, probe_on: Sequence[str]
    ) -> np.ndarray:
        """Number of build-side matches for every probe row."""
        return self._counts_for(self._probe_codes(probe, probe_on))

    def probe_indices(
        self, probe: DataFrame, probe_on: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Matching (probe_row, build_row) index pairs for one partition."""
        codes = self._probe_codes(probe, probe_on)
        return _expand_matches(codes, self._sorted_codes, self._order)

    # -- probe-side joins --------------------------------------------------------
    def probe_inner(
        self, probe: DataFrame, probe_on: Sequence[str]
    ) -> DataFrame:
        li, ri = self.probe_indices(probe, probe_on)
        name_map = _resolve_output_names(
            probe, self.build, self.build_on, self.suffix
        )
        return _assemble_inner(probe, self.build, li, ri, name_map)

    def probe_left(
        self, probe: DataFrame, probe_on: Sequence[str]
    ) -> DataFrame:
        # Encode the probe side once; the unmatched mask falls out of the
        # same match ranges the pair expansion uses.
        codes = self._probe_codes(probe, probe_on)
        starts = np.searchsorted(self._sorted_codes, codes, side="left")
        ends = np.searchsorted(self._sorted_codes, codes, side="right")
        li, ri = _expand_ranges(starts, ends, self._order)
        unmatched = ends == starts
        name_map = _resolve_output_names(
            probe, self.build, self.build_on, self.suffix
        )
        return _assemble_left(probe, self.build, li, ri, unmatched,
                              name_map)

    def probe_semi(
        self, probe: DataFrame, probe_on: Sequence[str]
    ) -> DataFrame:
        return probe.mask(self.match_counts(probe, probe_on) > 0)

    def probe_anti(
        self, probe: DataFrame, probe_on: Sequence[str]
    ) -> DataFrame:
        return probe.mask(self.match_counts(probe, probe_on) == 0)

    def probe(
        self, probe: DataFrame, probe_on: Sequence[str], how: str = "inner"
    ) -> DataFrame:
        """Join one probe partition against the prebuilt index."""
        if how == "inner":
            return self.probe_inner(probe, probe_on)
        if how == "left":
            return self.probe_left(probe, probe_on)
        if how == "semi":
            return self.probe_semi(probe, probe_on)
        if how == "anti":
            return self.probe_anti(probe, probe_on)
        raise QueryError(
            f"unknown join method {how!r}; expected {JOIN_METHODS}"
        )


def hash_join(
    left: DataFrame,
    right: DataFrame,
    left_on: Sequence[str],
    right_on: Sequence[str],
    how: str = "inner",
    suffix: str = "_right",
) -> DataFrame:
    """Equi-join two frames in one shot.

    ``how`` is one of ``inner``, ``left``, ``semi``, ``anti``.  Semi/anti
    return left columns only.  For ``left``, unmatched rows carry NaN /
    empty-string fills in right-side columns (numeric right columns are
    promoted to float64).  Streaming callers that probe many partitions
    against one build side should use :class:`JoinIndex` instead.
    """
    if how not in JOIN_METHODS:
        raise QueryError(f"unknown join method {how!r}; expected {JOIN_METHODS}")
    l_codes, r_codes = shared_codes(
        [left.column(k) for k in left_on],
        [right.column(k) for k in right_on],
    )
    if how == "semi":
        return left.mask(semi_join_mask(l_codes, r_codes))
    if how == "anti":
        return left.mask(anti_join_mask(l_codes, r_codes))

    li, ri = inner_join_indices(l_codes, r_codes)
    name_map = _resolve_output_names(left, right, right_on, suffix)

    if how == "inner":
        return _assemble_inner(left, right, li, ri, name_map)

    # how == "left": matched pairs plus unmatched left rows with fills.
    unmatched = anti_join_mask(l_codes, r_codes)
    return _assemble_left(left, right, li, ri, unmatched, name_map)


def merge_join(
    left: DataFrame,
    right: DataFrame,
    left_on: Sequence[str],
    right_on: Sequence[str],
    suffix: str = "_right",
) -> DataFrame:
    """Sort-merge inner join for inputs clustered on the join key.

    The output of an equi-join does not depend on the physical algorithm, so
    this delegates to the vectorized hash kernel; the *streaming* benefit of
    merge joins lives in the progressive merge join operator, which calls
    this on watermark-bounded buffers.
    """
    return hash_join(left, right, left_on, right_on, "inner", suffix)
