"""Join kernels: hash (equi) joins plus semi/anti/left variants.

The physical strategy mirrors a vectorized hash join: both key sides are
factorized into one shared code space, the right side is sorted once (the
"hash table"), and probe rows expand to match ranges via ``searchsorted``.
The progressive merge join *operator* (paper §3.2) reuses these kernels on
watermark-bounded buffers; see ``repro.engine.ops.join``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueryError, SchemaError
from repro.dataframe.frame import DataFrame
from repro.dataframe.schema import AttributeKind, DType, Field, Schema

JOIN_METHODS = ("inner", "left", "semi", "anti")


def shared_codes(
    left: Sequence[np.ndarray], right: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Encode multi-column keys from both sides into one dense code space."""
    if len(left) != len(right):
        raise QueryError("join key column counts differ between sides")
    n_left = len(left[0]) if left else 0
    combined_left: np.ndarray | None = None
    combined_right: np.ndarray | None = None
    for l_col, r_col in zip(left, right):
        if l_col.dtype.kind != r_col.dtype.kind and not (
            l_col.dtype.kind in "if" and r_col.dtype.kind in "if"
        ):
            raise SchemaError(
                f"join key dtypes are incompatible: "
                f"{l_col.dtype} vs {r_col.dtype}"
            )
        both = np.concatenate([l_col, r_col])
        uniques, codes = np.unique(both, return_inverse=True)
        codes = codes.astype(np.int64, copy=False)
        l_codes, r_codes = codes[:n_left], codes[n_left:]
        if combined_left is None:
            combined_left, combined_right = l_codes, r_codes
        else:
            width = np.int64(len(uniques))
            combined_left = combined_left * width + l_codes
            combined_right = combined_right * width + r_codes
    if combined_left is None:
        raise QueryError("join requires at least one key column")
    return combined_left, combined_right


def inner_join_indices(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Matching row-index pairs (li, ri) for an inner equi-join."""
    order = np.argsort(right_codes, kind="stable")
    sorted_right = right_codes[order]
    starts = np.searchsorted(sorted_right, left_codes, side="left")
    ends = np.searchsorted(sorted_right, left_codes, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    left_idx = np.repeat(np.arange(len(left_codes), dtype=np.int64), counts)
    # Vectorized "concatenate ranges": for each match slot, its offset within
    # the probe row's match range plus that range's start.
    cum = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(cum, counts)
    right_idx = order[np.repeat(starts, counts) + within]
    return left_idx, right_idx


def match_counts(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> np.ndarray:
    """Number of right-side matches for every left row."""
    sorted_right = np.sort(right_codes, kind="stable")
    starts = np.searchsorted(sorted_right, left_codes, side="left")
    ends = np.searchsorted(sorted_right, left_codes, side="right")
    return ends - starts


def semi_join_mask(left_codes: np.ndarray,
                   right_codes: np.ndarray) -> np.ndarray:
    """Boolean mask of left rows that have at least one right match."""
    return match_counts(left_codes, right_codes) > 0


def anti_join_mask(left_codes: np.ndarray,
                   right_codes: np.ndarray) -> np.ndarray:
    """Boolean mask of left rows with no right match."""
    return match_counts(left_codes, right_codes) == 0


def _null_fill(dtype: DType, n: int) -> np.ndarray:
    """Fill values for unmatched left-join rows.

    Numeric columns (including dates) are promoted to float64 NaN; strings
    become the empty string; booleans become False.  Downstream ``count``
    aggregates skip NaN, which is what TPC-H Q13 relies on.
    """
    if dtype in (DType.INT64, DType.FLOAT64, DType.DATE):
        return np.full(n, np.nan, dtype=np.float64)
    if dtype == DType.STRING:
        return np.full(n, "", dtype="U1")
    if dtype == DType.BOOL:
        return np.zeros(n, dtype=np.bool_)
    raise SchemaError(f"cannot null-fill dtype {dtype!r}")


def _resolve_output_names(
    left: DataFrame, right: DataFrame, right_keys: Sequence[str],
    suffix: str,
) -> dict[str, str]:
    """Right-side output names: key columns are dropped (they duplicate the
    left keys); collisions on non-key names get ``suffix`` appended."""
    taken = set(left.column_names)
    mapping: dict[str, str] = {}
    for name in right.column_names:
        if name in right_keys:
            continue
        out = name if name not in taken else name + suffix
        if out in taken:
            raise SchemaError(
                f"column {out!r} collides even after applying suffix "
                f"{suffix!r}"
            )
        mapping[name] = out
        taken.add(out)
    return mapping


def hash_join(
    left: DataFrame,
    right: DataFrame,
    left_on: Sequence[str],
    right_on: Sequence[str],
    how: str = "inner",
    suffix: str = "_right",
) -> DataFrame:
    """Equi-join two frames.

    ``how`` is one of ``inner``, ``left``, ``semi``, ``anti``.  Semi/anti
    return left columns only.  For ``left``, unmatched rows carry NaN /
    empty-string fills in right-side columns (numeric right columns are
    promoted to float64).
    """
    if how not in JOIN_METHODS:
        raise QueryError(f"unknown join method {how!r}; expected {JOIN_METHODS}")
    l_codes, r_codes = shared_codes(
        [left.column(k) for k in left_on],
        [right.column(k) for k in right_on],
    )
    if how == "semi":
        return left.mask(semi_join_mask(l_codes, r_codes))
    if how == "anti":
        return left.mask(anti_join_mask(l_codes, r_codes))

    li, ri = inner_join_indices(l_codes, r_codes)
    name_map = _resolve_output_names(left, right, right_on, suffix)

    if how == "inner":
        data = {n: left.column(n)[li] for n in left.column_names}
        fields = list(left.schema.fields)
        for src, dst in name_map.items():
            data[dst] = right.column(src)[ri]
            fields.append(right.schema.field(src).renamed(dst))
        return DataFrame(data, schema=Schema(fields))

    # how == "left": matched pairs plus unmatched left rows with fills.
    unmatched = anti_join_mask(l_codes, r_codes)
    n_unmatched = int(unmatched.sum())
    data = {
        n: np.concatenate([left.column(n)[li], left.column(n)[unmatched]])
        for n in left.column_names
    }
    fields = list(left.schema.fields)
    for src, dst in name_map.items():
        src_field = right.schema.field(src)
        matched_vals = right.column(src)[ri]
        fill = _null_fill(src_field.dtype, n_unmatched)
        if src_field.dtype in (DType.INT64, DType.DATE):
            matched_vals = matched_vals.astype(np.float64)
            out_dtype = DType.FLOAT64
        else:
            out_dtype = src_field.dtype
        data[dst] = np.concatenate([matched_vals, fill])
        fields.append(Field(dst, out_dtype, src_field.kind))
    return DataFrame(data, schema=Schema(fields))


def merge_join(
    left: DataFrame,
    right: DataFrame,
    left_on: Sequence[str],
    right_on: Sequence[str],
    suffix: str = "_right",
) -> DataFrame:
    """Sort-merge inner join for inputs clustered on the join key.

    The output of an equi-join does not depend on the physical algorithm, so
    this delegates to the vectorized hash kernel; the *streaming* benefit of
    merge joins lives in the progressive merge join operator, which calls
    this on watermark-bounded buffers.
    """
    return hash_join(left, right, left_on, right_on, "inner", suffix)
