"""Sorting kernels: stable multi-key sort with per-key direction."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe.groupby import factorize


def sort_indices(
    frame: DataFrame,
    by: Sequence[str],
    ascending: Sequence[bool] | bool = True,
) -> np.ndarray:
    """Row order that sorts ``frame`` by the given keys (stable).

    Descending string keys are handled by negating their sorted-unique codes,
    which preserves lexicographic order without materializing reversed
    copies.  NaNs sort last under ascending order (numpy convention) and
    first under descending order.
    """
    if not by:
        raise QueryError("sort requires at least one key")
    if isinstance(ascending, bool):
        ascending = [ascending] * len(by)
    if len(ascending) != len(by):
        raise QueryError("ascending flags must match the number of sort keys")
    # np.lexsort treats the *last* key as primary; reverse our ordering.
    lex_keys: list[np.ndarray] = []
    for name, asc in zip(reversed(list(by)), reversed(list(ascending))):
        col = frame.column(name)
        if col.dtype.kind in ("U", "S", "O"):
            codes, _ = factorize(col)
            lex_keys.append(codes if asc else -codes)
        elif col.dtype.kind == "b":
            codes = col.astype(np.int64)
            lex_keys.append(codes if asc else -codes)
        else:
            vals = col
            if not asc:
                vals = -vals.astype(np.float64, copy=False)
            lex_keys.append(vals)
    return np.lexsort(lex_keys)


def sort_frame(
    frame: DataFrame,
    by: Sequence[str],
    ascending: Sequence[bool] | bool = True,
) -> DataFrame:
    """Return ``frame`` with rows reordered by the sort keys."""
    return frame.take(sort_indices(frame, by, ascending))


def top_k(
    frame: DataFrame,
    by: Sequence[str],
    k: int,
    ascending: Sequence[bool] | bool = True,
) -> DataFrame:
    """Sort then keep the first ``k`` rows (the paper's sort+limit, Case 3)."""
    return sort_frame(frame, by, ascending).head(k)
