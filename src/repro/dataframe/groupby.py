"""Group-by kernels for the columnar DataFrame substrate.

The kernels are deliberately split into two layers:

* low-level code paths operating on dense group codes (``factorize``,
  ``group_sum`` and friends), used by the edf aggregate operator to maintain
  intrinsic states incrementally, and
* a high-level :func:`group_aggregate` used by the exact reference engine and
  by recompute (REPLACE) paths.

Aggregate results use the paper's intrinsic representations (Table 2):
``avg`` is carried as (sum, count), ``var``/``std`` as (count, sum, m2), and
``count_distinct`` as exact value sets — never sketches (paper footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import QueryError, SchemaError
from repro.dataframe.frame import DataFrame
from repro.dataframe.schema import AttributeKind, Field, Schema, dtype_of

#: Aggregate function names accepted across the library (paper §3.1
#: grammar plus the §5.3 order statistics median/quantile and the
#: mergeable extensions sem/prod/first/last).
AGG_FUNCTIONS = (
    "sum",
    "count",
    "avg",
    "count_distinct",
    "min",
    "max",
    "var",
    "stddev",
    "sem",
    "prod",
    "first",
    "last",
    "median",
    "quantile",
)

#: pandas-style synonyms, normalized at AggSpec construction so every
#: downstream layer (state, inference, plan hashing) sees one canonical
#: name — ``F.std(x)`` and ``F.stddev(x)`` build α-equivalent plans.
AGG_SYNONYMS = {
    "std": "stddev",
    "mean": "avg",
    "nunique": "count_distinct",
}


@dataclass(frozen=True)
class AggSpec:
    """One aggregation request: ``agg(column) AS alias``.

    ``column`` may be ``None`` only for ``count`` (row count).
    ``param`` carries the quantile fraction for ``quantile`` (median is
    ``quantile`` with param 0.5).  Synonym names (``std``, ``mean``,
    ``nunique``) normalize to their canonical form on construction.
    """

    agg: str
    column: str | None
    alias: str
    param: float | None = None

    def __post_init__(self) -> None:
        if self.agg in AGG_SYNONYMS:
            object.__setattr__(self, "agg", AGG_SYNONYMS[self.agg])
        if self.agg not in AGG_FUNCTIONS:
            raise QueryError(
                f"unknown aggregate {self.agg!r}; expected one of "
                f"{AGG_FUNCTIONS}"
            )
        if self.column is None and self.agg != "count":
            raise QueryError(f"aggregate {self.agg!r} requires a column")
        if self.agg == "quantile":
            if self.param is None or not 0.0 <= self.param <= 1.0:
                raise QueryError(
                    f"quantile requires param in [0, 1], got "
                    f"{self.param!r}"
                )

    @property
    def quantile_fraction(self) -> float:
        """The q of this order statistic (median = 0.5)."""
        if self.agg == "median":
            return 0.5
        if self.agg == "quantile":
            assert self.param is not None
            return self.param
        raise QueryError(f"{self.agg!r} is not a quantile aggregate")


# ---------------------------------------------------------------------------
# Factorization
# ---------------------------------------------------------------------------

def factorize(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense-encode ``values``: returns (codes, uniques) with
    ``uniques[codes] == values`` and uniques sorted ascending."""
    uniques, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.int64, copy=False), uniques


def group_codes(
    frame: DataFrame, keys: Sequence[str]
) -> tuple[np.ndarray, DataFrame, int]:
    """Compute dense group ids over one or more key columns.

    Returns ``(codes, key_frame, n_groups)`` where ``codes`` assigns every
    input row a group id in ``[0, n_groups)`` and ``key_frame`` holds one row
    of key values per group (ordered by group id).
    """
    if not keys:
        raise QueryError("group_codes requires at least one key column")
    if frame.n_rows == 0:
        key_frame = frame.select(list(keys))
        return np.empty(0, dtype=np.int64), key_frame, 0
    combined: np.ndarray | None = None
    for key in keys:
        codes, uniques = factorize(frame.column(key))
        if combined is None:
            combined = codes
        else:
            # Lexicographic combination; group counts stay << 2**63 at the
            # scales this library targets.
            combined = combined * np.int64(len(uniques)) + codes
    assert combined is not None
    uniques, first_index, dense = np.unique(
        combined, return_index=True, return_inverse=True
    )
    dense = dense.astype(np.int64, copy=False)
    key_frame = frame.select(list(keys)).take(first_index)
    return dense, key_frame, len(uniques)


class Grouper:
    """Incremental group factorizer: a persistent key → dense-code mapping.

    One-shot :func:`group_codes` re-factorizes every row it is given, so
    using it to maintain accumulated state costs O(total groups) per
    partial.  A ``Grouper`` instead assigns each distinct key combination
    a stable slot the first time it appears and reuses it forever after:
    encoding a partial costs O(|partial| + new groups) — the incremental
    shape streaming state maintenance needs (paper §4.2).

    Slots are handed out in first-seen order (within one partial, in the
    partial's sorted-unique key order), so state arrays indexed by slot
    only ever *extend*; existing entries never move.

    Single-column keys take a fully vectorized path (``searchsorted``
    against a sorted value → slot lookup table, rebuilt only when new
    keys appear); multi-column keys fall back to a per-local-group tuple
    dictionary.
    """

    def __init__(self, keys: Sequence[str]) -> None:
        if not keys:
            raise QueryError("Grouper requires at least one key column")
        self.keys = tuple(keys)
        self._n_groups = 0
        self._slots: dict[tuple, int] = {}  # multi-key path
        self._lookup_keys: np.ndarray | None = None  # single-key path
        self._lookup_slots: np.ndarray | None = None
        self._key_parts: list[DataFrame] = []
        self._key_frame: DataFrame | None = None

    @property
    def n_groups(self) -> int:
        return self._n_groups

    def encode(self, frame: DataFrame) -> np.ndarray:
        """Dense slot ids (into the persistent slot space) for every row
        of ``frame``, registering previously-unseen keys as new slots."""
        codes, local_keys, n_local = group_codes(frame, list(self.keys))
        if n_local == 0:
            return codes
        if len(self.keys) == 1:
            slots, new_mask = self._encode_single(local_keys)
        else:
            slots, new_mask = self._encode_tuples(local_keys)
        if new_mask.any():
            self._key_parts.append(local_keys.mask(new_mask))
            self._key_frame = None
        return slots[codes]

    def _encode_single(
        self, local_keys: DataFrame
    ) -> tuple[np.ndarray, np.ndarray]:
        vals = local_keys.column(self.keys[0])
        if self._lookup_keys is None:
            hit = np.zeros(len(vals), dtype=bool)
            slots = np.empty(len(vals), dtype=np.int64)
        else:
            pos = np.searchsorted(self._lookup_keys, vals)
            pos = np.minimum(pos, len(self._lookup_keys) - 1)
            hit = self._lookup_keys[pos] == vals
            if vals.dtype.kind == "f":
                # One NaN group, like np.unique(equal_nan): NaN sorts
                # last, so a NaN probe lands on the NaN entry if present.
                hit |= np.isnan(self._lookup_keys[pos]) & np.isnan(vals)
            slots = np.where(hit, self._lookup_slots[pos], np.int64(-1))
        new_mask = ~hit
        n_new = int(new_mask.sum())
        if n_new:
            new_slots = np.arange(
                self._n_groups, self._n_groups + n_new, dtype=np.int64
            )
            slots[new_mask] = new_slots
            new_vals = vals[new_mask]
            order = np.argsort(new_vals, kind="stable")
            sorted_new = new_vals[order]
            sorted_slots = new_slots[order]
            if self._lookup_keys is None:
                self._lookup_keys = sorted_new
                self._lookup_slots = sorted_slots
            elif (
                self._lookup_keys.dtype == sorted_new.dtype
                and sorted_new.dtype.kind not in "US"
            ):
                # Sorted insert: O(new log new + groups) memcpy-speed
                # merge, instead of re-sorting the whole lookup table
                # (O(groups log groups) per message with new keys).
                pos = np.searchsorted(self._lookup_keys, sorted_new)
                self._lookup_keys = np.insert(
                    self._lookup_keys, pos, sorted_new
                )
                self._lookup_slots = np.insert(
                    self._lookup_slots, pos, sorted_slots
                )
            else:
                # String widths may differ per message; np.insert would
                # truncate to the table's item size, so concat (which
                # promotes the width) and re-sort.
                merged_keys = np.concatenate(
                    [self._lookup_keys, new_vals]
                )
                merged_slots = np.concatenate(
                    [self._lookup_slots, new_slots]
                )
                full = np.argsort(merged_keys, kind="stable")
                self._lookup_keys = merged_keys[full]
                self._lookup_slots = merged_slots[full]
            self._n_groups += n_new
        return slots, new_mask

    def _encode_tuples(
        self, local_keys: DataFrame
    ) -> tuple[np.ndarray, np.ndarray]:
        n_local = local_keys.n_rows
        slots = np.empty(n_local, dtype=np.int64)
        new_mask = np.zeros(n_local, dtype=bool)
        table = self._slots
        for i, row in enumerate(local_keys.iter_rows()):
            # Canonicalize float NaN (nan != nan would defeat the dict):
            # one NaN group per key column, like np.unique(equal_nan).
            if any(x != x for x in row):
                row = tuple(None if x != x else x for x in row)
            slot = table.get(row)
            if slot is None:
                slot = len(table)
                table[row] = slot
                new_mask[i] = True
            slots[i] = slot
        self._n_groups = len(table)
        return slots, new_mask

    def key_frame(self) -> DataFrame:
        """One row of key values per slot, ordered by slot id."""
        if self._key_frame is None:
            if not self._key_parts:
                raise QueryError("grouper holds no groups yet")
            frame = DataFrame.concat(self._key_parts)
            self._key_parts = [frame]
            self._key_frame = frame
        return self._key_frame


# ---------------------------------------------------------------------------
# Dense-code kernels
# ---------------------------------------------------------------------------

def group_count(codes: np.ndarray, n_groups: int,
                valid: np.ndarray | None = None) -> np.ndarray:
    """Per-group row counts; ``valid`` optionally masks rows (NaN skipping)."""
    if valid is None:
        return np.bincount(codes, minlength=n_groups).astype(np.int64)
    return np.bincount(
        codes[valid], minlength=n_groups
    ).astype(np.int64)


def group_sum(codes: np.ndarray, n_groups: int,
              values: np.ndarray) -> np.ndarray:
    """Per-group sums as float64 (NaN values are skipped, SQL-style)."""
    vals = values.astype(np.float64, copy=False)
    finite = ~np.isnan(vals)
    if finite.all():
        return np.bincount(codes, weights=vals, minlength=n_groups)
    return np.bincount(
        codes[finite], weights=vals[finite], minlength=n_groups
    )


def _segment_reduce(
    codes: np.ndarray,
    n_groups: int,
    values: np.ndarray,
    reducer: np.ufunc,
    empty_fill: float,
) -> np.ndarray:
    """Sort-based segmented reduction (used for min/max)."""
    out = np.full(n_groups, empty_fill, dtype=np.float64)
    if len(codes) == 0:
        return out
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    sorted_vals = values[order].astype(np.float64, copy=False)
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    starts = np.concatenate(([0], boundaries))
    present = sorted_codes[starts]
    out[present] = reducer.reduceat(sorted_vals, starts)
    return out


def group_min(codes: np.ndarray, n_groups: int,
              values: np.ndarray) -> np.ndarray:
    return _segment_reduce(codes, n_groups, values, np.minimum, np.nan)


def group_max(codes: np.ndarray, n_groups: int,
              values: np.ndarray) -> np.ndarray:
    return _segment_reduce(codes, n_groups, values, np.maximum, np.nan)


def group_prod(codes: np.ndarray, n_groups: int,
               values: np.ndarray) -> np.ndarray:
    """Per-group products as float64 (NaN skipped; empty/all-NaN groups
    yield the multiplicative identity 1.0, pandas semantics)."""
    vals = values.astype(np.float64, copy=False)
    out = np.ones(n_groups, dtype=np.float64)
    valid = ~np.isnan(vals)
    if not valid.any():
        return out
    codes, vals = codes[valid], vals[valid]
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    sorted_vals = vals[order]
    starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(sorted_codes)) + 1)
    )
    out[sorted_codes[starts]] = np.multiply.reduceat(sorted_vals, starts)
    return out


def _group_edge_valid(
    codes: np.ndarray, n_groups: int, values: np.ndarray, last: bool
) -> np.ndarray:
    """First (or last) non-NaN value per group in row order; NaN for
    groups with no valid value (pandas ``first``/``last`` semantics)."""
    vals = values.astype(np.float64, copy=False)
    out = np.full(n_groups, np.nan, dtype=np.float64)
    valid = ~np.isnan(vals)
    if not valid.any():
        return out
    codes, vals = codes[valid], vals[valid]
    order = np.argsort(codes, kind="stable")  # stable: row order in group
    sorted_codes = codes[order]
    sorted_vals = vals[order]
    starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(sorted_codes)) + 1)
    )
    if last:
        ends = np.concatenate((starts[1:], [len(sorted_codes)])) - 1
        out[sorted_codes[starts]] = sorted_vals[ends]
    else:
        out[sorted_codes[starts]] = sorted_vals[starts]
    return out


def group_first_valid(codes: np.ndarray, n_groups: int,
                      values: np.ndarray) -> np.ndarray:
    return _group_edge_valid(codes, n_groups, values, last=False)


def group_last_valid(codes: np.ndarray, n_groups: int,
                     values: np.ndarray) -> np.ndarray:
    return _group_edge_valid(codes, n_groups, values, last=True)


def group_var_components(
    codes: np.ndarray, n_groups: int, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-group (count, sum, m2) where m2 = sum((x - mean)^2).

    This is the mergeable representation of variance (paper Table 2): two
    (count, sum, m2) triples combine with the Chan et al. parallel update.
    """
    vals = values.astype(np.float64, copy=False)
    # Count only non-NaN values: sum/sumsq skip NaN (SQL-style), so a raw
    # row count would understate the variance of NaN-bearing groups and
    # disagree with the streaming mergeable state (which always counts
    # valid values only).
    count = group_count(codes, n_groups, valid=~np.isnan(vals)).astype(
        np.float64
    )
    total = group_sum(codes, n_groups, vals)
    sumsq = group_sum(codes, n_groups, vals * vals)
    with np.errstate(invalid="ignore", divide="ignore"):
        m2 = sumsq - np.where(count > 0, total * total / count, 0.0)
    return count, total, np.maximum(m2, 0.0)


def merge_var_components(
    a: tuple[np.ndarray, np.ndarray, np.ndarray],
    b: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge two aligned (count, sum, m2) triples (Chan et al. update)."""
    n_a, s_a, m_a = a
    n_b, s_b, m_b = b
    n = n_a + n_b
    s = s_a + s_b
    with np.errstate(invalid="ignore", divide="ignore"):
        delta = np.where(n_a > 0, s_a / np.maximum(n_a, 1), 0.0) - np.where(
            n_b > 0, s_b / np.maximum(n_b, 1), 0.0
        )
        correction = np.where(
            (n_a > 0) & (n_b > 0), delta * delta * n_a * n_b / np.maximum(n, 1),
            0.0,
        )
    return n, s, m_a + m_b + correction


def group_nunique(codes: np.ndarray, n_groups: int,
                  values: np.ndarray) -> np.ndarray:
    """Per-group exact count of distinct values."""
    if len(codes) == 0:
        return np.zeros(n_groups, dtype=np.int64)
    value_codes, _ = factorize(values)
    pair = codes * np.int64(value_codes.max() + 1) + value_codes
    unique_pairs = np.unique(pair)
    owner = unique_pairs // np.int64(value_codes.max() + 1)
    return np.bincount(owner, minlength=n_groups).astype(np.int64)


def slot_quantile(sorted_values: np.ndarray, offsets: np.ndarray,
                  q: float) -> np.ndarray:
    """Per-slot sample quantile over a slot-sorted value buffer.

    ``sorted_values`` holds every slot's values in one flat array, sorted
    within each slot (NaN last, numpy sort order); ``offsets`` has length
    ``n_slots + 1`` with slot ``s`` occupying
    ``sorted_values[offsets[s]:offsets[s + 1]]``.  Linear interpolation
    (the numpy 'linear' method), NaN for empty slots.  This is the kernel
    the incremental order-statistic state reads through — sharing it with
    :func:`group_quantile` keeps the two paths bit-identical.
    """
    n_slots = len(offsets) - 1
    out = np.full(n_slots, np.nan, dtype=np.float64)
    counts = np.diff(offsets)
    present = counts > 0
    if not present.any():
        return out
    starts = np.asarray(offsets[:-1][present], dtype=np.int64)
    n = counts[present]
    # Positions are computed *within* each segment so the result is
    # independent of where the segment sits in the buffer — the same
    # multiset yields bitwise the same quantile under any slot ordering
    # (incremental slot order vs one-shot sorted-key order).
    position = q * (n - 1)
    lo = np.floor(position).astype(np.int64)
    hi = np.minimum(lo + 1, n - 1)
    frac = position - lo
    out[present] = (sorted_values[starts + lo] * (1.0 - frac)
                    + sorted_values[starts + hi] * frac)
    return out


def group_quantile(codes: np.ndarray, n_groups: int,
                   values: np.ndarray, q: float) -> np.ndarray:
    """Per-group sample quantile with linear interpolation (the numpy
    'linear' method), NaN for empty groups."""
    if len(codes) == 0:
        return np.full(n_groups, np.nan, dtype=np.float64)
    vals = values.astype(np.float64, copy=False)
    order = np.lexsort((vals, codes))
    sorted_vals = vals[order]
    counts = np.bincount(codes, minlength=n_groups)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    return slot_quantile(sorted_vals, offsets, q)


def group_first(codes: np.ndarray, n_groups: int,
                values: np.ndarray) -> np.ndarray:
    """First-seen value per group (order of the underlying rows)."""
    out = np.empty(n_groups, dtype=values.dtype)
    seen_order = np.argsort(codes, kind="stable")
    sorted_codes = codes[seen_order]
    boundaries = np.concatenate(
        ([0], np.flatnonzero(np.diff(sorted_codes)) + 1)
    ) if len(codes) else np.empty(0, dtype=np.int64)
    if len(codes):
        out[sorted_codes[boundaries]] = values[seen_order[boundaries]]
    return out


# ---------------------------------------------------------------------------
# High-level aggregation
# ---------------------------------------------------------------------------

def _evaluate_spec(
    spec: AggSpec, frame: DataFrame, codes: np.ndarray, n_groups: int
) -> np.ndarray:
    if spec.agg == "count":
        if spec.column is None:
            return group_count(codes, n_groups)
        values = frame.column(spec.column).astype(np.float64, copy=False)
        return group_count(codes, n_groups, valid=~np.isnan(values))
    values = frame.column(spec.column)  # type: ignore[arg-type]
    if spec.agg == "sum":
        return group_sum(codes, n_groups, values)
    if spec.agg == "avg":
        total = group_sum(codes, n_groups, values)
        count = group_count(
            codes, n_groups,
            valid=~np.isnan(values.astype(np.float64, copy=False)),
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(count > 0, total / np.maximum(count, 1), np.nan)
    if spec.agg == "min":
        return group_min(codes, n_groups, values)
    if spec.agg == "max":
        return group_max(codes, n_groups, values)
    if spec.agg == "count_distinct":
        return group_nunique(codes, n_groups, values)
    if spec.agg in ("var", "stddev", "sem"):
        count, _total, m2 = group_var_components(codes, n_groups, values)
        with np.errstate(invalid="ignore", divide="ignore"):
            var = np.where(count > 1, m2 / np.maximum(count - 1, 1), np.nan)
            if spec.agg == "sem":
                return np.sqrt(var / np.maximum(count, 1))
        return np.sqrt(var) if spec.agg == "stddev" else var
    if spec.agg == "prod":
        return group_prod(codes, n_groups, values)
    if spec.agg == "first":
        return group_first_valid(codes, n_groups, values)
    if spec.agg == "last":
        return group_last_valid(codes, n_groups, values)
    if spec.agg in ("median", "quantile"):
        return group_quantile(codes, n_groups, values,
                              spec.quantile_fraction)
    raise QueryError(f"unsupported aggregate {spec.agg!r}")


def group_aggregate(
    frame: DataFrame,
    by: Sequence[str],
    specs: Sequence[AggSpec],
) -> DataFrame:
    """SQL ``GROUP BY`` over the frame: one output row per key combination.

    Output columns: the key columns (constant attributes) followed by one
    mutable attribute per :class:`AggSpec`.  Keys appear in first-occurrence
    sorted-unique order (deterministic).
    """
    if not specs:
        raise QueryError("group_aggregate requires at least one AggSpec")
    names = {s.alias for s in specs}
    if len(names) != len(specs):
        raise SchemaError("duplicate aggregate aliases in group_aggregate")
    codes, key_frame, n_groups = group_codes(frame, by)
    data: dict[str, np.ndarray] = {
        name: key_frame.column(name) for name in key_frame.column_names
    }
    fields = list(key_frame.schema.fields)
    for spec in specs:
        result = _evaluate_spec(spec, frame, codes, n_groups)
        data[spec.alias] = result
        fields.append(
            Field(spec.alias, dtype_of(result), AttributeKind.MUTABLE)
        )
    return DataFrame(data, schema=Schema(fields))


def distinct_rows(
    frame: DataFrame, subset: Sequence[str] | None = None
) -> DataFrame:
    """Drop duplicate rows (optionally judged on a subset of columns).

    The first occurrence of each distinct key combination is kept, in
    first-seen order of the group machinery (deterministic).
    """
    if frame.n_rows == 0:
        return frame
    keys = list(subset) if subset is not None else list(frame.column_names)
    _codes, _key_frame, _n = group_codes(frame, keys)
    # group_codes returns first-occurrence indices internally; recompute here
    # to keep full rows rather than only key columns.
    combined = _codes
    _uniques, first_index = np.unique(combined, return_index=True)
    return frame.take(np.sort(first_index))


def global_aggregate(frame: DataFrame, specs: Sequence[AggSpec]) -> DataFrame:
    """Aggregate the whole frame into a single row (no grouping keys)."""
    codes = np.zeros(frame.n_rows, dtype=np.int64)
    data: dict[str, np.ndarray] = {}
    fields = []
    for spec in specs:
        result = _evaluate_spec(spec, frame, codes, 1)
        data[spec.alias] = result
        fields.append(
            Field(spec.alias, dtype_of(result), AttributeKind.MUTABLE)
        )
    return DataFrame(data, schema=Schema(fields))
