"""Schema model for the columnar DataFrame substrate.

The paper's edf model (§2.3, §3.1) distinguishes *constant* attributes (whose
values never change as more data is processed) from *mutable* attributes
(e.g., running aggregates that are refined over time).  The substrate-level
:class:`Field` carries that distinction so that operators can classify
themselves as order-preserving (Case 1) versus recomputing (Case 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ColumnNotFoundError, SchemaError


class DType(enum.Enum):
    """Logical column types supported by the substrate.

    ``DATE`` is stored physically as int64 days since 1970-01-01 so that
    comparisons and arithmetic stay in fast numpy integer kernels.
    """

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"
    DATE = "date"

    @property
    def is_numeric(self) -> bool:
        return self in (DType.INT64, DType.FLOAT64, DType.DATE)


def dtype_of(values: np.ndarray) -> DType:
    """Infer the logical :class:`DType` of a numpy array."""
    kind = values.dtype.kind
    if kind in ("i", "u"):
        return DType.INT64
    if kind == "f":
        return DType.FLOAT64
    if kind == "b":
        return DType.BOOL
    if kind in ("U", "S", "O"):
        return DType.STRING
    raise SchemaError(f"unsupported numpy dtype {values.dtype!r}")


def numpy_dtype(dtype: DType) -> np.dtype:
    """Return the canonical physical numpy dtype for a logical type."""
    if dtype in (DType.INT64, DType.DATE):
        return np.dtype(np.int64)
    if dtype == DType.FLOAT64:
        return np.dtype(np.float64)
    if dtype == DType.BOOL:
        return np.dtype(np.bool_)
    if dtype == DType.STRING:
        return np.dtype("U1")  # minimal width; numpy widens on assignment
    raise SchemaError(f"unknown dtype {dtype!r}")


class AttributeKind(enum.Enum):
    """Paper §2.3: constant attributes never change; mutable ones may."""

    CONSTANT = "constant"
    MUTABLE = "mutable"


@dataclass(frozen=True)
class Field:
    """A named, typed column with its edf attribute kind."""

    name: str
    dtype: DType
    kind: AttributeKind = AttributeKind.CONSTANT

    def as_mutable(self) -> "Field":
        return replace(self, kind=AttributeKind.MUTABLE)

    def as_constant(self) -> "Field":
        return replace(self, kind=AttributeKind.CONSTANT)

    def renamed(self, name: str) -> "Field":
        return replace(self, name=name)


class Schema:
    """An ordered, unique-named collection of :class:`Field` objects."""

    def __init__(self, fields: Iterable[Field]) -> None:
        self._fields = tuple(fields)
        names = [f.name for f in self._fields]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names in schema: {dupes}")
        self._index = {f.name: i for i, f in enumerate(self._fields)}

    # -- basic accessors ---------------------------------------------------
    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def field(self, name: str) -> Field:
        try:
            return self._fields[self._index[name]]
        except KeyError:
            raise ColumnNotFoundError(name, self.names) from None

    def dtype(self, name: str) -> DType:
        return self.field(name).dtype

    def kind(self, name: str) -> AttributeKind:
        return self.field(name).kind

    @property
    def mutable_names(self) -> tuple[str, ...]:
        return tuple(
            f.name for f in self._fields if f.kind == AttributeKind.MUTABLE
        )

    @property
    def has_mutable(self) -> bool:
        return any(f.kind == AttributeKind.MUTABLE for f in self._fields)

    # -- transformations ---------------------------------------------------
    def select(self, names: Iterable[str]) -> "Schema":
        return Schema(self.field(n) for n in names)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        return Schema(
            f.renamed(mapping.get(f.name, f.name)) for f in self._fields
        )

    def with_field(self, field: Field) -> "Schema":
        """Append ``field``, or replace the existing field of the same name."""
        if field.name in self._index:
            return Schema(
                field if f.name == field.name else f for f in self._fields
            )
        return Schema((*self._fields, field))

    def drop(self, names: Iterable[str]) -> "Schema":
        gone = set(names)
        missing = gone - set(self.names)
        if missing:
            raise ColumnNotFoundError(sorted(missing)[0], self.names)
        return Schema(f for f in self._fields if f.name not in gone)

    def mark_mutable(self, names: Iterable[str]) -> "Schema":
        target = set(names)
        return Schema(
            f.as_mutable() if f.name in target else f for f in self._fields
        )

    # -- comparisons ---------------------------------------------------------
    def same_layout(self, other: "Schema") -> bool:
        """True when names and dtypes match (attribute kinds may differ)."""
        return self.names == other.names and all(
            a.dtype == b.dtype for a, b in zip(self._fields, other._fields)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{f.name}: {f.dtype.value}"
            + ("*" if f.kind == AttributeKind.MUTABLE else "")
            for f in self._fields
        )
        return f"Schema({cols})"
