"""A small columnar DataFrame built on numpy arrays.

The paper's Wake engine is built on Arrow record batches; this class is the
equivalent substrate for the Python reproduction.  It is deliberately
column-oriented and immutable-by-convention: every operation returns a new
frame (columns may share underlying numpy buffers — callers must not write
into arrays returned by :meth:`column`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ColumnNotFoundError, SchemaError
from repro.dataframe.schema import (
    AttributeKind,
    DType,
    Field,
    Schema,
    dtype_of,
    numpy_dtype,
)


def _as_column(values: object) -> np.ndarray:
    """Coerce an input column to a contiguous 1-D numpy array."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise SchemaError(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind == "O":
        # Normalize python-object string columns to numpy unicode so that
        # np.char kernels and np.unique comparisons behave uniformly.
        arr = arr.astype(str)
    return arr


class DataFrame:
    """An ordered collection of equal-length named numpy columns."""

    def __init__(
        self,
        data: Mapping[str, object],
        schema: Schema | None = None,
    ) -> None:
        columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in data.items():
            arr = _as_column(values)
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise SchemaError(
                    f"column {name!r} has length {len(arr)}, expected {length}"
                )
            columns[name] = arr
        self._columns = columns
        self._n_rows = length or 0
        if schema is None:
            schema = Schema(
                Field(name, dtype_of(arr)) for name, arr in columns.items()
            )
        else:
            if tuple(schema.names) != tuple(columns):
                raise SchemaError(
                    f"schema names {schema.names} do not match data columns "
                    f"{tuple(columns)}"
                )
        self._schema = schema

    # -- constructors --------------------------------------------------------
    @classmethod
    def empty(cls, schema: Schema) -> "DataFrame":
        """An empty frame with the given schema (used for edf bootstraps)."""
        data = {
            f.name: np.empty(0, dtype=numpy_dtype(f.dtype)) for f in schema
        }
        return cls(data, schema=schema)

    @classmethod
    def from_rows(
        cls, names: Sequence[str], rows: Iterable[Sequence[object]]
    ) -> "DataFrame":
        """Build a frame from row tuples (convenience for tests/examples)."""
        materialized = list(rows)
        if not materialized:
            raise SchemaError("from_rows requires at least one row; use empty()")
        transposed = list(zip(*materialized))
        return cls({n: np.asarray(v) for n, v in zip(names, transposed)})

    # -- basic accessors -------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._schema.names

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.column_names) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    # -- projections -----------------------------------------------------------
    def select(self, names: Sequence[str]) -> "DataFrame":
        """Project to the given columns, in the given order."""
        return DataFrame(
            {n: self.column(n) for n in names},
            schema=self._schema.select(names),
        )

    def drop(self, names: Sequence[str]) -> "DataFrame":
        schema = self._schema.drop(names)
        return DataFrame(
            {n: self._columns[n] for n in schema.names}, schema=schema
        )

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        missing = set(mapping) - set(self.column_names)
        if missing:
            raise ColumnNotFoundError(sorted(missing)[0], self.column_names)
        schema = self._schema.rename(dict(mapping))
        return DataFrame(
            {
                mapping.get(name, name): arr
                for name, arr in self._columns.items()
            },
            schema=schema,
        )

    def with_column(
        self,
        name: str,
        values: object,
        kind: AttributeKind = AttributeKind.CONSTANT,
    ) -> "DataFrame":
        """Append (or replace) a column."""
        arr = _as_column(values)
        if self._columns and len(arr) != self._n_rows:
            raise SchemaError(
                f"new column {name!r} has length {len(arr)}, "
                f"expected {self._n_rows}"
            )
        data = dict(self._columns)
        data[name] = arr
        field = Field(name, dtype_of(arr), kind)
        if name in self._schema:
            # Preserve DATE logical type when replacing with int64 values.
            old = self._schema.field(name)
            if old.dtype == DType.DATE and dtype_of(arr) == DType.INT64:
                field = Field(name, DType.DATE, kind)
        return DataFrame(data, schema=self._schema.with_field(field))

    # -- row selection -----------------------------------------------------------
    def take(self, indices: np.ndarray) -> "DataFrame":
        """Gather rows by integer indices (preserves schema)."""
        idx = np.asarray(indices)
        return DataFrame(
            {n: arr[idx] for n, arr in self._columns.items()},
            schema=self._schema,
        )

    def mask(self, keep: np.ndarray) -> "DataFrame":
        """Filter rows by a boolean mask (preserves schema)."""
        m = np.asarray(keep, dtype=bool)
        if len(m) != self._n_rows:
            raise SchemaError(
                f"mask length {len(m)} does not match row count {self._n_rows}"
            )
        return DataFrame(
            {n: arr[m] for n, arr in self._columns.items()},
            schema=self._schema,
        )

    def slice(self, start: int, stop: int) -> "DataFrame":
        return DataFrame(
            {n: arr[start:stop] for n, arr in self._columns.items()},
            schema=self._schema,
        )

    def head(self, n: int) -> "DataFrame":
        return self.slice(0, max(0, n))

    # -- combination ------------------------------------------------------------
    @staticmethod
    def concat(frames: Sequence["DataFrame"]) -> "DataFrame":
        """Vertically append frames with identical column layouts."""
        frames = [f for f in frames]
        if not frames:
            raise SchemaError("concat requires at least one frame")
        first = frames[0]
        for other in frames[1:]:
            if not first.schema.same_layout(other.schema):
                raise SchemaError(
                    f"cannot concat frames with different layouts: "
                    f"{first.schema!r} vs {other.schema!r}"
                )
        if len(frames) == 1:
            return first
        data = {
            name: np.concatenate([f.column(name) for f in frames])
            for name in first.column_names
        }
        return DataFrame(data, schema=first.schema)

    # -- aggregation ------------------------------------------------------------
    def aggregate(
        self,
        spec: Mapping[str, "str | Sequence[str]"],
        by: Sequence[str] = (),
    ) -> "DataFrame":
        """Eager pandas-style aggregation over this frame.

        ``spec`` maps column → aggregate name or list of names (synonyms
        ``std``/``mean``/``nunique`` accepted); output aliases follow the
        ``<agg>_<column>`` convention.  With ``by`` this is an exact
        one-shot group-by; without, a single global row.  This is the
        materialized counterpart of the streaming ``EdfFrame.agg`` — the
        two agree on the final snapshot for every mergeable aggregate.
        """
        # Local import: groupby imports DataFrame at module load.
        from repro.dataframe.groupby import (  # lint: allow(local-import)
            AggSpec,
            global_aggregate,
            group_aggregate,
        )

        specs = []
        for column, fns in spec.items():
            names = [fns] if isinstance(fns, str) else list(fns)
            if not names:
                raise SchemaError(
                    f"aggregate entry {column!r} names no aggregates"
                )
            specs.extend(
                AggSpec(fn, column, f"{fn}_{column}") for fn in names
            )
        if by:
            return group_aggregate(self, list(by), specs)
        return global_aggregate(self, specs)

    # -- conversion / inspection --------------------------------------------------
    def to_pydict(self) -> dict[str, list]:
        return {n: arr.tolist() for n, arr in self._columns.items()}

    def to_records(self) -> list[tuple]:
        """Rows as python tuples (test convenience; O(n) python objects)."""
        if not self._columns:
            return []
        cols = [arr.tolist() for arr in self._columns.values()]
        return list(zip(*cols))

    def row(self, i: int) -> dict[str, object]:
        return {n: arr[i].item() if hasattr(arr[i], "item") else arr[i]
                for n, arr in self._columns.items()}

    def iter_rows(self) -> Iterator[tuple]:
        return iter(self.to_records())

    def nbytes(self) -> int:
        """Total bytes across column buffers (peak-memory accounting)."""
        return sum(arr.nbytes for arr in self._columns.values())

    # -- comparisons -----------------------------------------------------------
    def equals(self, other: "DataFrame", rtol: float = 1e-9,
               atol: float = 1e-12) -> bool:
        """Exact equality for int/string/bool columns, allclose for floats."""
        if not self._schema.same_layout(other.schema):
            return False
        if self._n_rows != other.n_rows:
            return False
        for name in self.column_names:
            a, b = self.column(name), other.column(name)
            if a.dtype.kind == "f" or b.dtype.kind == "f":
                same = np.allclose(
                    a.astype(np.float64), b.astype(np.float64),
                    rtol=rtol, atol=atol, equal_nan=True,
                )
            else:
                same = bool(np.array_equal(a, b))
            if not same:
                return False
        return True

    def __repr__(self) -> str:
        preview_rows = min(self._n_rows, 8)
        header = ", ".join(
            f"{f.name}:{f.dtype.value}" for f in self._schema
        )
        lines = [f"DataFrame[{self._n_rows} rows]({header})"]
        for i in range(preview_rows):
            lines.append("  " + ", ".join(
                str(self._columns[n][i]) for n in self.column_names
            ))
        if self._n_rows > preview_rows:
            lines.append(f"  ... {self._n_rows - preview_rows} more rows")
        return "\n".join(lines)
