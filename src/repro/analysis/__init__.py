"""Static analysis: plan-level schema checking and the codebase linter.

Layer 1 (:mod:`repro.analysis.schema_check`) validates plan graphs at
submit time and powers the optimizer's rewrite-soundness checker; layer
2 (:mod:`repro.analysis.lint`) is the AST-based invariant linter behind
``python -m repro lint``.
"""

from repro.errors import PlanValidationError
from repro.analysis.lint import ALL_RULES, LintFinding, lint_file, run_lint
from repro.analysis.schema_check import (
    InferredStream,
    infer_plan,
    plan_fingerprint,
    source_labels,
    validate_plan,
)

__all__ = [
    "ALL_RULES",
    "InferredStream",
    "LintFinding",
    "PlanValidationError",
    "infer_plan",
    "lint_file",
    "plan_fingerprint",
    "run_lint",
    "source_labels",
    "validate_plan",
]
