"""Static schema/type inference over plan graphs (layer 1 of the
static-analysis subsystem).

Every operator already derives its output :class:`StreamInfo` at bind
time, but bind is lazy (it runs when an executor resolves the graph) and
per-operator: a plan submitted over the wire with an undefined column or
a string-vs-number comparison schedules fine and only fails mid-stream.
This module re-derives the same plan-time properties *without binding* —
walking the graph output→sources, computing each node's output schema
(column names + dtypes + attribute kinds), delivery, and clustering from
the catalog ``TableMeta`` schemas, ``Expr`` trees, join suffix rules,
and ``AggSpec`` result dtypes — and raises a structured
:class:`PlanValidationError` for every malformed-plan class *before any
partition is read*:

* ``undefined-column``  — a referenced column no upstream node produces;
* ``type-mismatch``     — comparing/joining a string against a number,
  arithmetic over strings, a non-boolean filter predicate;
* ``non-numeric-agg``   — sum/avg/… over a string column (only ``count``
  and ``count_distinct`` accept any dtype);
* ``duplicate-output``  — an output name collides even after the join
  suffix rules;
* ``delivery-misuse``   — REPLACE/DELTA contract violations: merge join
  over non-DELTA or unclustered inputs, grouping by a mutable
  attribute, unions mixing deliveries.

Inference is deliberately side-effect free and numpy-free: unlike
``bind`` it never mutates operator state and never evaluates expressions
on probe frames, so the optimizer's rewrite-soundness checker can run it
after every rule firing within the < 5 ms planning budget
(``benchmarks/bench_optimizer.py``).

Operators this module does not know (user extensions) infer to ``None``
("unknown stream"); checks are skipped from there down — static
validation is best-effort-sound, never a false rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import PlanValidationError, SchemaError
from repro.core.ci import sigma_column
from repro.core.properties import Delivery, StreamInfo
from repro.dataframe.expr import (
    BinaryExpr,
    CaseExpr,
    Column,
    Expr,
    IsInExpr,
    Literal,
    StringExpr,
    SubstrExpr,
    UnaryExpr,
    YearExpr,
)
from repro.dataframe.schema import AttributeKind, DType, Field, Schema
from repro.engine.graph import QueryGraph
from repro.engine.ops import (
    AggregateOperator,
    CrossJoinOperator,
    DistinctOperator,
    ExchangeOperator,
    FilterOperator,
    HashJoinOperator,
    MapPartitionsOperator,
    MergeJoinOperator,
    ReadOperator,
    SelectOperator,
    SortLimitOperator,
    UnionOperator,
)

#: Aggregates whose input may be any dtype (they only count rows/values).
_ANY_DTYPE_AGGS = ("count", "count_distinct")

#: Plan-time dtype of every aggregate output (mirrors
#: ``repro.engine.ops.aggregate._AGG_DTYPE``: estimates are float64).
_AGG_RESULT = DType.FLOAT64


@dataclass(frozen=True)
class InferredStream:
    """Statically inferred plan-time properties of one node's output."""

    schema: Schema
    delivery: Delivery
    clustering_key: tuple[str, ...] = ()

    def clustered_on(self, keys: tuple[str, ...]) -> bool:
        return bool(self.clustering_key) and set(
            self.clustering_key
        ) <= set(keys)


class _NodeCtx:
    """Where an error happened, threaded through the expression walker."""

    def __init__(self, node_id: int, operator_name: str) -> None:
        self.node_id = node_id
        self.operator_name = operator_name

    def fail(self, code: str, message: str,
             column: str | None = None) -> PlanValidationError:
        return PlanValidationError(
            code,
            f"{self.operator_name} (node {self.node_id}): {message}",
            node=self.node_id,
            operator=self.operator_name,
            column=column,
        )


# ---------------------------------------------------------------------------
# Expression dtype inference
# ---------------------------------------------------------------------------

_ARITHMETIC = ("+", "-", "*", "/")
_COMPARISONS = (">", ">=", "<", "<=", "==", "!=")
_LOGICAL = ("&", "|")


def _literal_dtype(value: object) -> DType | None:
    # bool is an int subclass: test it first.
    if isinstance(value, bool):
        return DType.BOOL
    if isinstance(value, int):
        return DType.INT64
    if isinstance(value, float):
        return DType.FLOAT64
    if isinstance(value, str):
        return DType.STRING
    return None  # numpy scalars, dates-as-objects: leave unknown


def _numericish(dtype: DType) -> bool:
    """Types numpy arithmetic/comparison kernels accept together.

    BOOL participates (it is physically 0/1); only STRING is excluded.
    """
    return dtype is not DType.STRING


def _promote(left: DType, right: DType) -> DType:
    if DType.FLOAT64 in (left, right):
        return DType.FLOAT64
    if left == right:
        return left
    # Mixed INT64/DATE/BOOL arithmetic lands in int64 physically.
    return DType.INT64


def expr_dtype(expr: Expr, schema: Schema, ctx: _NodeCtx) -> DType | None:
    """Infer the dtype an expression evaluates to over ``schema``.

    Raises :class:`PlanValidationError` for undefined columns and
    type-mismatched operations; returns ``None`` when the dtype cannot
    be determined statically (unknown literal or Expr subclass).
    """
    if isinstance(expr, Column):
        if expr.name not in schema:
            raise ctx.fail(
                "undefined-column",
                f"unknown column {expr.name!r}; available: "
                f"{list(schema.names)}",
                column=expr.name,
            )
        return schema.dtype(expr.name)
    if isinstance(expr, Literal):
        return _literal_dtype(expr.value)
    if isinstance(expr, BinaryExpr):
        left = expr_dtype(expr.left, schema, ctx)
        right = expr_dtype(expr.right, schema, ctx)
        return _binary_dtype(expr, left, right, ctx)
    if isinstance(expr, UnaryExpr):
        inner = expr_dtype(expr.inner, schema, ctx)
        if expr.symbol == "~":
            if inner is not None and inner is DType.STRING:
                raise ctx.fail(
                    "type-mismatch",
                    f"cannot negate (~) string expression {expr.inner!r}",
                )
            return DType.BOOL
        # "-" / "abs": numeric only; DATE arithmetic lands in int64.
        if inner is not None and not _numericish(inner):
            raise ctx.fail(
                "type-mismatch",
                f"{expr.symbol!r} requires a numeric operand, got "
                f"{inner.value} from {expr.inner!r}",
            )
        if inner in (DType.DATE, DType.BOOL):
            return DType.INT64
        return inner
    if isinstance(expr, (StringExpr, SubstrExpr)):
        # Runtime coerces any input through ``astype(str)``; inference
        # stays permissive and only pins the result dtype.
        expr_dtype(expr.inner, schema, ctx)
        return (DType.BOOL if isinstance(expr, StringExpr)
                else DType.STRING)
    if isinstance(expr, IsInExpr):
        inner = expr_dtype(expr.inner, schema, ctx)
        value_dtypes = {
            _literal_dtype(v) for v in expr.values
        } - {None}
        if inner is not None and value_dtypes:
            inner_str = inner is DType.STRING
            values_str = DType.STRING in value_dtypes
            if inner_str != values_str:
                raise ctx.fail(
                    "type-mismatch",
                    f"isin values {list(expr.values)!r} do not match "
                    f"column dtype {inner.value} (membership over mixed "
                    f"string/number types matches nothing)",
                )
        return DType.BOOL
    if isinstance(expr, YearExpr):
        inner = expr_dtype(expr.inner, schema, ctx)
        if inner is not None and not _numericish(inner):
            raise ctx.fail(
                "type-mismatch",
                f"year() requires a DATE (days-since-epoch) column, got "
                f"{inner.value} from {expr.inner!r}",
            )
        return DType.INT64
    if isinstance(expr, CaseExpr):
        cond = expr_dtype(expr.cond, schema, ctx)
        if cond is not None and cond is DType.STRING:
            raise ctx.fail(
                "type-mismatch",
                f"CASE condition {expr.cond!r} is a string, expected a "
                f"boolean predicate",
            )
        then = expr_dtype(expr.then, schema, ctx)
        other = expr_dtype(expr.otherwise, schema, ctx)
        if then is None or other is None:
            return then or other
        if (then is DType.STRING) != (other is DType.STRING):
            raise ctx.fail(
                "type-mismatch",
                f"CASE arms have incompatible dtypes: {then.value} vs "
                f"{other.value}",
            )
        if then is DType.STRING:
            return DType.STRING
        if then is DType.BOOL and other is DType.BOOL:
            return DType.BOOL
        return _promote(then, other)
    return None  # unknown Expr subclass: stay permissive


def _binary_dtype(
    expr: BinaryExpr, left: DType | None, right: DType | None,
    ctx: _NodeCtx,
) -> DType | None:
    symbol = expr.symbol
    known = [d for d in (left, right) if d is not None]
    if symbol in _COMPARISONS:
        if len(known) == 2 and (
            (left is DType.STRING) != (right is DType.STRING)
        ):
            raise ctx.fail(
                "type-mismatch",
                f"cannot compare {left.value} with {right.value} in "
                f"{expr!r}",
            )
        return DType.BOOL
    if symbol in _LOGICAL:
        for side, dtype in ((expr.left, left), (expr.right, right)):
            if dtype is DType.STRING:
                raise ctx.fail(
                    "type-mismatch",
                    f"{symbol!r} requires boolean operands, got string "
                    f"from {side!r}",
                )
        return DType.BOOL
    if symbol in _ARITHMETIC:
        for side, dtype in ((expr.left, left), (expr.right, right)):
            if dtype is DType.STRING:
                raise ctx.fail(
                    "type-mismatch",
                    f"arithmetic {symbol!r} over string expression "
                    f"{side!r}",
                )
        if symbol == "/":
            return DType.FLOAT64
        if len(known) < 2:
            return None
        if left in (DType.DATE, DType.BOOL) or right in (
            DType.DATE, DType.BOOL
        ):
            return _promote(
                DType.INT64 if left in (DType.DATE, DType.BOOL) else left,
                DType.INT64 if right in (DType.DATE, DType.BOOL)
                else right,
            )
        return _promote(left, right)
    return None


# ---------------------------------------------------------------------------
# Per-operator inference rules
# ---------------------------------------------------------------------------

_INFERENCE: dict[type, Callable] = {}


def _infers(*types: type):
    def register(fn):
        for t in types:
            _INFERENCE[t] = fn
        return fn
    return register


def _schema_or_duplicate(fields, ctx: _NodeCtx) -> Schema:
    try:
        return Schema(fields)
    except SchemaError as exc:
        raise ctx.fail("duplicate-output", str(exc)) from exc


@_infers(ReadOperator)
def _infer_read(op: ReadOperator, inputs, ctx) -> InferredStream:
    schema = op.scan_schema()
    names = set(schema.names)
    clustering = (
        op.meta.clustering_key
        if set(op.meta.clustering_key) <= names else ()
    )
    return InferredStream(schema, Delivery.DELTA, tuple(clustering))


@_infers(FilterOperator)
def _infer_filter(op: FilterOperator, inputs, ctx) -> InferredStream:
    (info,) = inputs
    dtype = expr_dtype(op.predicate, info.schema, ctx)
    if dtype is not None and dtype not in (DType.BOOL,):
        raise ctx.fail(
            "type-mismatch",
            f"filter predicate {op.predicate!r} has dtype "
            f"{dtype.value}, expected bool",
        )
    touches_mutable = bool(
        op.predicate.columns() & set(info.schema.mutable_names)
    )
    recompute = touches_mutable and info.delivery == Delivery.DELTA
    delivery = (
        Delivery.REPLACE
        if (recompute or info.delivery == Delivery.REPLACE)
        else Delivery.DELTA
    )
    return InferredStream(info.schema, delivery, info.clustering_key)


@_infers(SelectOperator)
def _infer_select(op: SelectOperator, inputs, ctx) -> InferredStream:
    (info,) = inputs
    schema = info.schema
    mutable_inputs = set(schema.mutable_names)
    fields: list[Field] = []
    for out_name, expr in op.exprs:
        referenced = expr.columns()
        dtype = expr_dtype(expr, schema, ctx)
        is_mutable = bool(referenced & mutable_inputs)
        if isinstance(expr, Column) and expr.name == out_name:
            fields.append(schema.field(out_name))
        else:
            kind = (AttributeKind.MUTABLE if is_mutable
                    else AttributeKind.CONSTANT)
            fields.append(Field(
                out_name,
                dtype if dtype is not None else DType.FLOAT64,
                kind,
            ))
        if op.propagate_ci and is_mutable:
            sigmas = [
                c for c in referenced & mutable_inputs
                if sigma_column(c) in schema
            ]
            if sigmas:
                fields.append(Field(
                    sigma_column(out_name), fields[-1].dtype,
                    AttributeKind.MUTABLE,
                ))
    out_schema = _schema_or_duplicate(fields, ctx)
    out_names = set(out_schema.names)
    clustering = (
        info.clustering_key
        if set(info.clustering_key) <= out_names else ()
    )
    return InferredStream(out_schema, info.delivery, clustering)


@_infers(AggregateOperator)
def _infer_aggregate(op: AggregateOperator, inputs, ctx) -> InferredStream:
    (info,) = inputs
    schema = info.schema
    for key in op.by:
        if key not in schema:
            raise ctx.fail(
                "undefined-column",
                f"unknown group key {key!r}; available: "
                f"{list(schema.names)}",
                column=key,
            )
        if schema.kind(key) == AttributeKind.MUTABLE:
            raise ctx.fail(
                "delivery-misuse",
                f"cannot group by mutable attribute {key!r} (grouping "
                f"by a refining aggregate is the paper's §3.3 blocking "
                f"case)",
                column=key,
            )
    for spec in op.specs:
        if spec.column is None:
            continue
        if spec.column not in schema:
            raise ctx.fail(
                "undefined-column",
                f"unknown column {spec.column!r} in {spec.agg}",
                column=spec.column,
            )
        if (spec.agg not in _ANY_DTYPE_AGGS
                and schema.dtype(spec.column) is DType.STRING):
            raise ctx.fail(
                "non-numeric-agg",
                f"{spec.agg}({spec.column!r}) aggregates a string "
                f"column; only {_ANY_DTYPE_AGGS} accept non-numeric "
                f"input",
                column=spec.column,
            )
    local_mode = (
        info.delivery == Delivery.DELTA
        and bool(op.by)
        and info.clustered_on(op.by)
    )
    fields = [schema.field(k).as_constant() for k in op.by]
    out_kind = (AttributeKind.CONSTANT if local_mode
                else AttributeKind.MUTABLE)
    for spec in op.specs:
        fields.append(Field(spec.alias, _AGG_RESULT, out_kind))
        if op.ci is not None and not local_mode:
            fields.append(Field(
                sigma_column(spec.alias), DType.FLOAT64,
                AttributeKind.MUTABLE,
            ))
    out_schema = _schema_or_duplicate(fields, ctx)
    if local_mode:
        return InferredStream(
            out_schema, Delivery.DELTA, info.clustering_key
        )
    return InferredStream(out_schema, Delivery.REPLACE, ())


def _check_join_keys(
    left: InferredStream, right: InferredStream,
    left_on, right_on, ctx: _NodeCtx,
) -> None:
    for side, info, keys in (
        ("left", left, left_on), ("right", right, right_on)
    ):
        for key in keys:
            if key not in info.schema:
                raise ctx.fail(
                    "undefined-column",
                    f"{side} key {key!r} not in schema; available: "
                    f"{list(info.schema.names)}",
                    column=key,
                )
    for l_key, r_key in zip(left_on, right_on):
        l_dtype = left.schema.dtype(l_key)
        r_dtype = right.schema.dtype(r_key)
        # Mirrors the runtime kernel's _check_key_dtypes: int/float/date
        # inter-compare; bool only with bool; string only with string.
        l_class = _key_class(l_dtype)
        r_class = _key_class(r_dtype)
        if l_class != r_class:
            raise ctx.fail(
                "type-mismatch",
                f"join key dtypes are incompatible: {l_key!r} is "
                f"{l_dtype.value}, {r_key!r} is {r_dtype.value}",
                column=l_key,
            )


def _key_class(dtype: DType) -> str:
    if dtype is DType.STRING:
        return "string"
    if dtype is DType.BOOL:
        return "bool"
    return "numeric"


def _join_output_fields(
    left: Schema, right: Schema, right_keys, suffix: str,
    ctx: _NodeCtx, null_filled: bool,
) -> list[Field]:
    """Left fields + suffix-renamed right non-key fields (the
    ``_resolve_output_names`` contract); ``null_filled`` promotes
    int/date right columns to float64 (left-join NaN fills)."""
    fields = list(left.fields)
    taken = set(left.names)
    for f in right.fields:
        if f.name in right_keys:
            continue
        out = f.name if f.name not in taken else f.name + suffix
        if out in taken:
            raise ctx.fail(
                "duplicate-output",
                f"column {out!r} collides even after applying suffix "
                f"{suffix!r}",
                column=out,
            )
        taken.add(out)
        dtype = f.dtype
        if null_filled and dtype in (DType.INT64, DType.DATE):
            dtype = DType.FLOAT64
        fields.append(Field(out, dtype, f.kind))
    return fields


@_infers(HashJoinOperator)
def _infer_hash_join(op: HashJoinOperator, inputs, ctx) -> InferredStream:
    left, right = inputs
    _check_join_keys(left, right, op.left_on, op.right_on, ctx)
    if op.how in ("semi", "anti"):
        out_schema = left.schema
    else:
        out_schema = _schema_or_duplicate(
            _join_output_fields(
                left.schema, right.schema, set(op.right_on), op.suffix,
                ctx, null_filled=op.how == "left",
            ),
            ctx,
        )
    out_names = set(out_schema.names)
    clustering = (
        left.clustering_key
        if set(left.clustering_key) <= out_names else ()
    )
    return InferredStream(out_schema, left.delivery, clustering)


@_infers(MergeJoinOperator)
def _infer_merge_join(op: MergeJoinOperator, inputs, ctx) -> InferredStream:
    left, right = inputs
    _check_join_keys(
        left, right, (op.left_on,), (op.right_on,), ctx
    )
    for side, info, key in (
        ("left", left, op.left_on), ("right", right, op.right_on)
    ):
        if info.schema.dtype(key) is DType.STRING:
            raise ctx.fail(
                "type-mismatch",
                f"merge join {side} key {key!r} is a string; watermark "
                f"merging requires a numeric key",
                column=key,
            )
        if info.delivery != Delivery.DELTA:
            raise ctx.fail(
                "delivery-misuse",
                f"{side} input must stream DELTA messages (got "
                f"{info.delivery.value}); use a hash join for REPLACE "
                f"inputs",
            )
        if not info.clustered_on((key,)):
            raise ctx.fail(
                "delivery-misuse",
                f"{side} input is not clustered on {key!r}; use a hash "
                f"join instead",
                column=key,
            )
    out_schema = _schema_or_duplicate(
        _join_output_fields(
            left.schema, right.schema, {op.right_on}, op.suffix, ctx,
            null_filled=False,
        ),
        ctx,
    )
    return InferredStream(out_schema, Delivery.DELTA, left.clustering_key)


@_infers(CrossJoinOperator)
def _infer_cross_join(op: CrossJoinOperator, inputs, ctx) -> InferredStream:
    left, right = inputs
    fields = list(left.schema.fields)
    taken = set(left.schema.names)
    live = right.delivery == Delivery.REPLACE
    for f in right.schema:
        out = f.name if f.name not in taken else f.name + op.suffix
        if out in taken:
            raise ctx.fail(
                "duplicate-output",
                f"column {out!r} collides",
                column=out,
            )
        taken.add(out)
        kind = AttributeKind.MUTABLE if live else f.kind
        fields.append(Field(out, f.dtype, kind))
    delivery = Delivery.REPLACE if live else left.delivery
    return InferredStream(_schema_or_duplicate(fields, ctx), delivery, ())


@_infers(SortLimitOperator)
def _infer_sort(op: SortLimitOperator, inputs, ctx) -> InferredStream:
    (info,) = inputs
    for key in op.by:
        if key not in info.schema:
            raise ctx.fail(
                "undefined-column",
                f"unknown sort key {key!r}; available: "
                f"{list(info.schema.names)}",
                column=key,
            )
    return InferredStream(info.schema, Delivery.REPLACE, op.by)


@_infers(DistinctOperator)
def _infer_distinct(op: DistinctOperator, inputs, ctx) -> InferredStream:
    (info,) = inputs
    for key in op.subset or info.schema.names:
        if key not in info.schema:
            raise ctx.fail(
                "undefined-column",
                f"unknown column {key!r}; available: "
                f"{list(info.schema.names)}",
                column=key,
            )
    return InferredStream(info.schema, info.delivery, info.clustering_key)


@_infers(ExchangeOperator)
def _infer_exchange(op: ExchangeOperator, inputs, ctx) -> InferredStream:
    (info,) = inputs
    for key in op.keys:
        if key not in info.schema:
            raise ctx.fail(
                "undefined-column",
                f"unknown exchange key {key!r}; available: "
                f"{list(info.schema.names)}",
                column=key,
            )
    return InferredStream(info.schema, info.delivery, info.clustering_key)


@_infers(UnionOperator)
def _infer_union(op: UnionOperator, inputs, ctx) -> InferredStream:
    first = inputs[0]
    for other in inputs[1:]:
        if not first.schema.same_layout(other.schema):
            raise ctx.fail(
                "type-mismatch",
                f"input schemas differ: {first.schema!r} vs "
                f"{other.schema!r}",
            )
        if other.delivery != first.delivery:
            raise ctx.fail(
                "delivery-misuse",
                f"mixed input deliveries ({first.delivery.value} vs "
                f"{other.delivery.value})",
            )
    override: StreamInfo | None = op._info_override
    if override is not None:
        if not first.schema.same_layout(override.schema):
            raise ctx.fail(
                "type-mismatch",
                "pinned info schema does not match the shard schemas",
            )
        return InferredStream(
            override.schema, override.delivery, override.clustering_key
        )
    if first.delivery == Delivery.REPLACE:
        return InferredStream(first.schema, Delivery.REPLACE, ())
    return InferredStream(
        first.schema, Delivery.DELTA, first.clustering_key
    )


@_infers(MapPartitionsOperator)
def _infer_map_partitions(
    op: MapPartitionsOperator, inputs, ctx
) -> InferredStream | None:
    (info,) = inputs
    if op._declared_schema is not None:
        out_schema = op._declared_schema
    else:
        # Probing an arbitrary callable may fail for reasons bind would
        # also hit later; validation stays best-effort and backs off.
        from repro.dataframe.frame import DataFrame

        try:
            out_schema = op.fn(DataFrame.empty(info.schema)).schema
        except Exception:
            return None
    clustering = (
        info.clustering_key
        if op.preserves_clustering
        and set(info.clustering_key) <= set(out_schema.names)
        else ()
    )
    return InferredStream(out_schema, info.delivery, clustering)


# ---------------------------------------------------------------------------
# Graph walk
# ---------------------------------------------------------------------------

def reachable_nodes(graph: QueryGraph, output: int) -> list[int]:
    """Node ids reachable from ``output`` in ascending (= topological)
    order."""
    seen: set[int] = set()
    stack = [output]
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(graph.node(nid).inputs)
    return sorted(seen)


def infer_plan(
    graph: QueryGraph, output: int
) -> dict[int, InferredStream | None]:
    """Infer every reachable node's output stream, output→sources.

    Raises :class:`PlanValidationError` on the first malformed node.
    Nodes whose operator type (or an upstream's) is unknown to the
    checker infer to ``None`` and are skipped.
    """
    streams: dict[int, InferredStream | None] = {}
    for nid in reachable_nodes(graph, output):
        node = graph.node(nid)
        rule = _INFERENCE.get(type(node.operator))
        inputs = tuple(streams[i] for i in node.inputs)
        if rule is None or any(i is None for i in inputs):
            streams[nid] = None
            continue
        ctx = _NodeCtx(nid, node.operator.name)
        streams[nid] = rule(node.operator, inputs, ctx)
    return streams


def validate_plan(
    graph: QueryGraph, output: int
) -> dict[int, InferredStream | None]:
    """Submit-time plan validation: raise :class:`PlanValidationError`
    for any malformed node reachable from ``output``, before any
    partition is read.  Returns the inferred streams on success (the
    payload ``explain``'s ``types`` mode renders)."""
    return infer_plan(graph, output)


def source_labels(
    graph: QueryGraph, output: int
) -> frozenset[tuple[str, str]]:
    """The strict-digest-visible source set: (table, source label) of
    every scan reachable from ``output``.  Sound rewrites must preserve
    it — a rewrite that drops or relabels a scan changes which progress
    counters exist and therefore the snapshot contract."""
    labels = set()
    for nid in reachable_nodes(graph, output):
        op = graph.node(nid).operator
        if isinstance(op, ReadOperator):
            labels.add((op.meta.name, op.source_name))
    return frozenset(labels)


def plan_fingerprint(graph: QueryGraph, output: int):
    """The rewrite-soundness invariant: the output node's inferred
    column names + dtypes, its delivery, and the reachable source set.
    ``None`` when the output schema cannot be inferred (unknown
    operators in the plan) — the checker then records the firing as
    unverified rather than guessing."""
    streams = infer_plan(graph, output)
    out = streams[output]
    if out is None:
        return None
    return (
        tuple((f.name, f.dtype.value) for f in out.schema.fields),
        out.delivery.value,
        source_labels(graph, output),
    )
