"""AST-based invariant linter (layer 2 of the static-analysis
subsystem): ``python -m repro lint``.

The ROADMAP states several engine invariants only as prose; each lint
rule here encodes one of them as a machine check over the syntax tree,
so the regression classes earlier PRs spent whole cycles killing cannot
quietly return:

* ``history-concat`` — concatenating an accumulated ``self.*`` history
  inside a ``consume``/``consume_delta``/``consume_snapshot`` body (the
  O(total-consumed)-per-message regression class; state must be folded
  incrementally, never re-concatenated wholesale on the hot path);
* ``lock-sleep`` — ``time.sleep`` or file I/O while holding a scheduler
  lock/condition (``with self._lock: ...``); blocking under the lock
  stalls every other session's stepping;
* ``bare-bench-assert`` — a threshold-style ``assert`` (an inequality
  against a numeric constant) in ``benchmarks/`` instead of
  ``guard(...)``, which records the measured value into
  ``BENCH_summary.json`` and supports override knobs;
* ``unseeded-random`` — unseeded randomness or wall-clock dependence in
  replay-critical modules (``service/retry.py``, ``testing/faults.py``):
  fault schedules and retry backoff must be deterministic functions of
  their inputs or crash replay diverges;
* ``local-import`` — function-local imports in operator hot paths
  (``engine/ops/``, ``dataframe/``, ``core/``): a per-message import
  lookup on the data path is avoidable overhead and hides the module's
  real dependency surface;
* ``metric-hot-lookup`` — registry instrument lookups
  (``.counter()``/``.gauge()``/``.histogram()``/``.register_view()``)
  or per-call ``labels={...}`` dict allocation inside ``consume*``,
  ``step()``, or ``__next__`` bodies: hot-path telemetry must use
  instruments pre-bound at construction (see :mod:`repro.obs`), so the
  per-message cost is one attribute call, not a dict build plus a
  registry dictionary lookup.

A finding on a line containing ``lint: allow(<rule>)`` is suppressed —
the escape hatch for deliberate exceptions (optional-dependency gating,
import cycles), which must justify themselves in the comment.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: Hot-path directories for the ``local-import`` rule (posix fragments
#: matched against the file's path).
_HOT_PATH_FRAGMENTS = ("/engine/ops/", "/dataframe/", "/core/")

#: Replay-critical modules for the ``unseeded-random`` rule.
_REPLAY_CRITICAL = ("service/retry.py", "testing/faults.py")

#: ``with`` context expressions that look like locks/conditions.
_LOCKISH = re.compile(r"lock|cond|_work|mutex", re.IGNORECASE)

_ALLOW = re.compile(r"lint:\s*allow\(([a-z-]+)\)")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return asdict(self)

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.rule}] {self.message}"
        )


class _FileContext:
    """One parsed file plus the path predicates rules scope on."""

    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.posix = path.as_posix()
        self.tree = ast.parse(source, filename=str(path))
        self.lines = source.splitlines()

    def in_benchmarks(self) -> bool:
        return (
            "benchmarks" in self.path.parts
            and self.path.name != "conftest.py"
        )

    def in_hot_path(self) -> bool:
        return any(f in self.posix for f in _HOT_PATH_FRAGMENTS)

    def replay_critical(self) -> bool:
        return any(self.posix.endswith(m) for m in _REPLAY_CRITICAL)

    def allowed(self, rule: str, line: int) -> bool:
        """True when the 1-indexed ``line`` carries a suppression
        comment for ``rule``."""
        if not 1 <= line <= len(self.lines):
            return False
        return rule in _ALLOW.findall(self.lines[line - 1])


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class LintRule:
    """One invariant check: ``check`` yields findings for a file."""

    name = "?"

    def check(self, ctx: _FileContext) -> Iterator[LintFinding]:
        raise NotImplementedError

    def _finding(self, ctx: _FileContext, node: ast.AST,
                 message: str) -> LintFinding:
        return LintFinding(
            rule=self.name,
            path=str(ctx.path),
            line=node.lineno,
            col=node.col_offset,
            message=message,
        )


def _is_call_to(node: ast.Call, attrs: tuple[str, ...],
                names: tuple[str, ...] = ()) -> str | None:
    """The matched callable name when ``node`` calls ``<x>.<attr>`` for
    an ``attr`` in ``attrs`` (or a bare ``name`` in ``names``)."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in attrs:
        return func.attr
    if isinstance(func, ast.Name) and func.id in names:
        return func.id
    return None


def _references_self_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and isinstance(
        node.value, ast.Name
    ) and node.value.id == "self"


class HistoryConcatRule(LintRule):
    """Flag wholesale re-concatenation of accumulated state inside
    ``consume*`` bodies.

    The regression shape is ``concat(self.<history>)`` — folding the
    entire accumulated list per message, O(total-consumed).  Growing a
    state array by a bounded batch (``concatenate([self.x, new])``)
    passes a *list literal*, not the history attribute itself, and is
    amortized-fine, so only a direct ``self.*`` argument fires.
    """

    name = "history-concat"

    _CONSUME = ("consume", "consume_delta", "consume_snapshot")

    def check(self, ctx: _FileContext) -> Iterator[LintFinding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            if fn.name not in self._CONSUME:
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                called = _is_call_to(node, ("concat", "concatenate"))
                if called is None or not node.args:
                    continue
                if _references_self_attr(node.args[0]):
                    yield self._finding(
                        ctx, node,
                        f"{called}() over accumulated state "
                        f"{ast.unparse(node.args[0])} inside "
                        f"{fn.name}(): per-message cost grows with "
                        f"total consumed; fold increments instead",
                    )


class LockSleepRule(LintRule):
    """Flag ``time.sleep`` / file I/O inside lock-holding ``with``
    blocks."""

    name = "lock-sleep"

    _IO_ATTRS = (
        "sleep", "read_text", "write_text", "read_bytes",
        "write_bytes", "unlink",
    )
    _IO_NAMES = ("open", "sleep")

    def check(self, ctx: _FileContext) -> Iterator[LintFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.With):
                continue
            if not any(
                _LOCKISH.search(ast.unparse(item.context_expr))
                for item in node.items
            ):
                continue
            for stmt in node.body:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    called = _is_call_to(
                        call, self._IO_ATTRS, self._IO_NAMES
                    )
                    if called is not None:
                        yield self._finding(
                            ctx, call,
                            f"{called}() while holding a lock blocks "
                            f"every other thread on it; move the "
                            f"blocking call off-lock",
                        )


class BareBenchAssertRule(LintRule):
    """Flag threshold-style asserts in ``benchmarks/``.

    An inequality against a numeric constant is a performance/accuracy
    threshold; it belongs in ``guard(...)`` so the measured value and
    the threshold land in ``BENCH_summary.json`` and respect override
    knobs.  Structural parity asserts (equality, constant-free
    comparisons) are left alone.
    """

    name = "bare-bench-assert"

    _INEQ = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)

    def check(self, ctx: _FileContext) -> Iterator[LintFinding]:
        if not ctx.in_benchmarks():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assert):
                continue
            if self._has_threshold_compare(node.test):
                yield self._finding(
                    ctx, node,
                    "threshold assert in a benchmark; use "
                    "guard(metric, value, threshold, op=...) so the "
                    "measurement is recorded in BENCH_summary.json",
                )

    def _has_threshold_compare(self, test: ast.expr) -> bool:
        for node in ast.walk(test):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, self._INEQ) for op in node.ops):
                continue
            for side in (node.left, *node.comparators):
                if self._has_numeric_constant(side):
                    return True
        return False

    def _has_numeric_constant(self, node: ast.expr) -> bool:
        """True when ``node`` contains a numeric literal outside
        subscript indices (``xs[-1] < xs[0]`` is a *relative*
        comparison, not a threshold)."""
        if isinstance(node, ast.Constant):
            return isinstance(
                node.value, (int, float)
            ) and not isinstance(node.value, bool)
        if isinstance(node, ast.Subscript):
            return self._has_numeric_constant(node.value)
        return any(
            self._has_numeric_constant(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        )


class UnseededRandomRule(LintRule):
    """Flag wall-clock and unseeded-randomness calls in replay-critical
    modules."""

    name = "unseeded-random"

    _CLOCK_ATTRS = (
        "time", "monotonic", "perf_counter", "now", "utcnow",
    )
    _RANDOM_MODULE_FNS = (
        "random", "randint", "randrange", "choice", "shuffle",
        "uniform", "sample", "getrandbits",
    )

    def check(self, ctx: _FileContext) -> Iterator[LintFinding]:
        if not ctx.replay_critical():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            base_name = base.id if isinstance(base, ast.Name) else None
            if base_name in ("time", "datetime") and (
                func.attr in self._CLOCK_ATTRS
            ):
                yield self._finding(
                    ctx, node,
                    f"{base_name}.{func.attr}() in a replay-critical "
                    f"module: schedules must be deterministic "
                    f"functions of their inputs",
                )
            elif base_name == "random" and (
                func.attr in self._RANDOM_MODULE_FNS
            ):
                yield self._finding(
                    ctx, node,
                    f"random.{func.attr}() uses the unseeded global "
                    f"generator; derive a seeded Generator from the "
                    f"schedule inputs instead",
                )
            elif func.attr == "default_rng" and not (
                node.args or node.keywords
            ):
                yield self._finding(
                    ctx, node,
                    "default_rng() without a seed is entropy-seeded; "
                    "replay-critical randomness must be seeded from "
                    "the schedule inputs",
                )


class LocalImportRule(LintRule):
    """Flag function-local imports in operator hot-path modules."""

    name = "local-import"

    def check(self, ctx: _FileContext) -> Iterator[LintFinding]:
        if not ctx.in_hot_path():
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(fn):
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    yield self._finding(
                        ctx, node,
                        f"function-local import inside {fn.name}() on "
                        f"an operator hot path; import at module scope "
                        f"(or justify with lint: allow(local-import))",
                    )


class MetricHotLookupRule(LintRule):
    """Flag registry lookups / label-dict allocation in hot bodies.

    The telemetry design pre-binds instruments once (a
    ``ScanInstruments``/``SchedulerInstruments`` bundle held as an
    attribute) so the metered hot path pays one attribute call per
    event.  Calling ``registry.counter(...)`` — a lock + dict lookup +
    possible allocation — or building a ``labels={...}`` dict inside a
    per-message body silently reintroduces the overhead the
    ``obs_overhead_ratio`` perf guard bounds.
    """

    name = "metric-hot-lookup"

    _HOT_FNS = (
        "consume", "consume_delta", "consume_snapshot", "step",
        "__next__",
    )
    _REGISTRY_ATTRS = ("counter", "gauge", "histogram", "register_view")

    def check(self, ctx: _FileContext) -> Iterator[LintFinding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            if fn.name not in self._HOT_FNS:
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                called = _is_call_to(node, self._REGISTRY_ATTRS)
                if called is not None:
                    yield self._finding(
                        ctx, node,
                        f".{called}() inside {fn.name}() re-resolves "
                        f"the instrument per message; pre-bind it at "
                        f"construction and call the bound instrument",
                    )
                    continue
                for kw in node.keywords:
                    if kw.arg == "labels" and isinstance(
                        kw.value, ast.Dict
                    ):
                        yield self._finding(
                            ctx, node,
                            f"labels={{...}} literal inside "
                            f"{fn.name}() allocates a dict per "
                            f"message; pre-bind a labeled instrument "
                            f"at construction instead",
                        )


ALL_RULES: tuple[LintRule, ...] = (
    HistoryConcatRule(),
    LockSleepRule(),
    BareBenchAssertRule(),
    UnseededRandomRule(),
    LocalImportRule(),
    MetricHotLookupRule(),
)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def _python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
            continue
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if "__pycache__" in child.parts:
                    continue
                yield child


def lint_file(
    path: Path, rules: Iterable[LintRule] = ALL_RULES
) -> list[LintFinding]:
    """All unsuppressed findings for one file."""
    ctx = _FileContext(path, path.read_text())
    findings = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.allowed(rule.name, finding.line):
                findings.append(finding)
    return findings


def run_lint(
    paths: Iterable[Path | str],
    rules: Iterable[LintRule] = ALL_RULES,
) -> list[LintFinding]:
    """Lint every ``*.py`` under ``paths``; findings sorted by
    location."""
    rules = tuple(rules)
    findings: list[LintFinding] = []
    for path in _python_files(Path(p) for p in paths):
        findings.extend(lint_file(path, rules))
    return sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )


def render_text(findings: list[LintFinding]) -> str:
    if not findings:
        return "lint: clean"
    lines = [f.format() for f in findings]
    lines.append(f"lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: list[LintFinding]) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
        },
        indent=2,
    )
