"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — run dbgen and write a partitioned TPC-H catalog;
* ``run``      — execute one of the 22 TPC-H queries over a catalog,
  printing each OLA snapshot's progress/accuracy and the final frame;
* ``explain``  — print a query's physical plan (node types, deliveries,
  clustering, schemas, scan pushdowns);
* ``profile``  — execute a query with the per-operator profiler
  attached and print the time/rows breakdown per operator;
* ``stats``    — backfill per-partition zone-map statistics into an
  existing catalog so predicate pushdown can prune partitions;
* ``serve``    — run the multi-query snapshot-streaming server (NDJSON
  over TCP: submit/subscribe/status/pause/resume/cancel, plus the
  ``metrics``/``trace`` observability ops and ``GET /metrics``);
* ``lint``     — run the AST-based invariant linter over source trees
  (exit 1 on findings; ``--format json`` for machine-readable output).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import WakeContext
from repro.bench.report import format_table
from repro.storage import Catalog, add_catalog_stats
from repro.tpch import generate_and_load
from repro.tpch.queries import QUERIES


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="generate a TPC-H catalog")
    p.add_argument("directory", type=Path)
    p.add_argument("--scale-factor", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--fact-partitions", type=int, default=16)
    p.add_argument("--format", choices=("npz", "csv"), default="npz")


def _add_run(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("run", help="run a TPC-H query with OLA output")
    p.add_argument("catalog", type=Path,
                   help="catalog.json written by `generate`")
    p.add_argument("query", type=int, choices=sorted(QUERIES),
                   metavar="QUERY", help="TPC-H query number (1-22)")
    p.add_argument("--executor", choices=("sync", "threads"),
                   default="sync")
    p.add_argument("--parallelism", type=int, default=1,
                   help="shard count for stateful shuffle subplans "
                        "(1 = unsharded)")
    p.add_argument("--rows", type=int, default=5,
                   help="result rows to print")
    p.add_argument("--param", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="query parameter override (repeatable)")
    p.add_argument("--no-pushdown", action="store_true",
                   help="disable scan pushdown (projection + zone-map "
                        "partition pruning)")
    p.add_argument("--no-optimize", action="store_true",
                   help="disable every plan-rewrite rule (the plan runs "
                        "exactly as written)")
    p.add_argument("--disable-rule", action="append", default=[],
                   metavar="RULE",
                   help="disable one optimizer rule by name "
                        "(repeatable; see repro.engine.RULE_NAMES)")


def _add_explain(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("explain", help="print a query's physical plan")
    p.add_argument("catalog", type=Path)
    p.add_argument("query", type=int, choices=sorted(QUERIES),
                   metavar="QUERY")
    p.add_argument("--parallelism", type=int, default=1,
                   help="show the plan after the shard rewrite")
    p.add_argument("--types", action="store_true",
                   help="show each node's statically inferred output "
                        "schema instead of the physical plan")
    p.add_argument("--no-pushdown", action="store_true",
                   help="show the plan without scan pushdown")
    p.add_argument("--no-optimize", action="store_true",
                   help="show the plan with every rewrite rule off")
    p.add_argument("--disable-rule", action="append", default=[],
                   metavar="RULE",
                   help="disable one optimizer rule by name "
                        "(repeatable)")


def _add_profile(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "profile",
        help="execute a query with the per-operator profiler and "
             "print the time/rows breakdown",
    )
    p.add_argument("catalog", type=Path,
                   help="catalog.json written by `generate`")
    p.add_argument("query", type=int, choices=sorted(QUERIES),
                   metavar="QUERY", help="TPC-H query number (1-22)")
    p.add_argument("--parallelism", type=int, default=1,
                   help="shard count for stateful shuffle subplans")
    p.add_argument("--param", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="query parameter override (repeatable)")
    p.add_argument("--no-pushdown", action="store_true",
                   help="profile without scan pushdown")


def _add_stats(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "stats",
        help="backfill zone-map stats into an existing catalog "
             "(enables partition pruning on legacy catalogs)",
    )
    p.add_argument("catalog", type=Path,
                   help="catalog.json to rewrite in place")
    p.add_argument("--force", action="store_true",
                   help="recompute stats even for tables that have them")


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve",
        help="serve concurrent OLA queries over NDJSON/TCP "
             "(submit/subscribe/status/pause/resume/cancel)",
    )
    p.add_argument("catalog", type=Path,
                   help="catalog.json written by `generate`")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--parallelism", type=int, default=1,
                   help="default shard count for submitted queries")
    p.add_argument("--buffer-size", type=int, default=None,
                   help="bound per-session snapshot buffers (slow "
                        "subscribers then skip evicted snapshots; "
                        "default: unbounded)")
    p.add_argument("--no-pushdown", action="store_true",
                   help="disable scan pushdown for submitted queries")
    p.add_argument("--no-scan-share", action="store_true",
                   help="disable shared scans (by default concurrent "
                        "queries over the same table share one "
                        "physical read per partition)")
    p.add_argument("--metrics", dest="metrics", action="store_true",
                   default=True,
                   help="enable the telemetry surface: the "
                        "metrics/trace wire ops, Prometheus text via "
                        "GET /metrics, and per-session tracing "
                        "(default: on)")
    p.add_argument("--no-metrics", dest="metrics", action="store_false",
                   help="disable telemetry (the metrics op then "
                        "reports only the always-on counters)")
    p.add_argument("--no-result-cache", action="store_true",
                   help="disable the plan-hash result cache (by "
                        "default a submit identical to an in-flight "
                        "or retained session attaches to it instead "
                        "of re-executing)")
    p.add_argument("--retry-max-attempts", type=int, default=3,
                   help="tries per partition before giving up "
                        "(1 = fail fast on the first transient error)")
    p.add_argument("--retry-backoff", type=float, default=0.05,
                   help="seconds before the first retry (doubled per "
                        "attempt, deterministic, no jitter)")
    p.add_argument("--retry-backoff-max", type=float, default=1.0,
                   help="cap on the per-retry backoff in seconds")
    p.add_argument("--retry-budget", type=int, default=64,
                   help="total retries one session may consume")
    p.add_argument("--on-partition-error", choices=("fail", "skip"),
                   default="fail",
                   help="after retries are exhausted: fail the session "
                        "(default) or skip the partition and keep "
                        "refining a degraded answer")


def _add_lint(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "lint",
        help="run the AST-based invariant linter "
             "(history-concat, lock-sleep, bare-bench-assert, "
             "unseeded-random, local-import, metric-hot-lookup)",
    )
    p.add_argument("paths", type=Path, nargs="*",
                   help="files or directories to lint (default: "
                        "src/ and benchmarks/ under the cwd when "
                        "they exist, else the cwd)")
    p.add_argument("--format", choices=("text", "json"),
                   default="text",
                   help="output format (json includes every finding "
                        "plus a count, for CI artifacts)")


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --param {pair!r}; expected NAME=VALUE")
        name, raw = pair.split("=", 1)
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        overrides[name] = value
    return overrides


def cmd_generate(args: argparse.Namespace) -> int:
    catalog, tables = generate_and_load(
        args.directory,
        scale_factor=args.scale_factor,
        seed=args.seed,
        fact_partitions=args.fact_partitions,
        fmt=args.format,
    )
    rows = [[name, tables[name].n_rows,
             catalog.table(name).n_partitions]
            for name in sorted(catalog.names())]
    print(format_table(["table", "rows", "partitions"], rows))
    print(f"\ncatalog written to {args.directory}/catalog.json")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    ctx = WakeContext.from_catalog(args.catalog,
                                   executor=args.executor,
                                   parallelism=args.parallelism,
                                   pushdown=not args.no_pushdown,
                                   optimize=not args.no_optimize,
                                   optimizer_disable=args.disable_rule)
    query = QUERIES[args.query]
    overrides = _parse_overrides(args.param)
    plan = query.build_plan(ctx, **overrides)
    print(f"running {query.name} ({query.category}) ...")
    edf = ctx.run(plan)
    summary = [
        [s.sequence, f"{s.t:.3f}", f"{s.wall_time:.3f}",
         s.rows_processed, s.frame.n_rows]
        for s in edf.snapshots
    ]
    print(format_table(
        ["snapshot", "t", "wall(s)", "rows-read", "result-rows"],
        summary,
    ))
    final = edf.get_final()
    print(f"\nfinal answer ({final.n_rows} rows, first {args.rows}):")
    print(repr(final.head(args.rows)))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    ctx = WakeContext.from_catalog(args.catalog,
                                   pushdown=not args.no_pushdown,
                                   optimize=not args.no_optimize,
                                   optimizer_disable=args.disable_rule)
    query = QUERIES[args.query]
    print(ctx.explain(query.build_plan(ctx),
                      parallelism=args.parallelism,
                      mode="types" if args.types else "plan"))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    ctx = WakeContext.from_catalog(args.catalog,
                                   parallelism=args.parallelism,
                                   pushdown=not args.no_pushdown)
    query = QUERIES[args.query]
    overrides = _parse_overrides(args.param)
    plan = query.build_plan(ctx, **overrides)
    print(f"profiling {query.name} ({query.category}) ...")
    print(ctx.explain(plan, mode="profile"))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import render_json, render_text, run_lint

    paths = list(args.paths)
    if not paths:
        paths = [p for p in (Path("src"), Path("benchmarks"))
                 if p.exists()]
        if not paths:
            paths = [Path(".")]
    findings = run_lint(paths)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def cmd_stats(args: argparse.Namespace) -> int:
    catalog = Catalog.load(args.catalog)
    updated = add_catalog_stats(catalog, force=args.force)
    catalog.save(args.catalog)
    rows = [
        [name, catalog.table(name).n_partitions,
         "updated" if name in updated else "kept"]
        for name in sorted(catalog.names())
    ]
    print(format_table(["table", "partitions", "stats"], rows))
    print(f"\ncatalog rewritten: {args.catalog}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.api.options import ExecutionOptions
    from repro.service import QueryService, RetryPolicy, SnapshotServer

    # The server defaults both multi-query optimizations ON (the
    # library-level default is off): a serve deployment is exactly the
    # concurrent-duplicate workload they exist for.
    options = ExecutionOptions(
        parallelism=args.parallelism,
        pushdown=not args.no_pushdown,
        scan_share=not args.no_scan_share,
        result_cache=not args.no_result_cache,
        telemetry=args.metrics,
    )
    ctx = WakeContext.from_catalog(args.catalog, options=options)
    retry = RetryPolicy(
        max_attempts=args.retry_max_attempts,
        backoff_base=args.retry_backoff,
        backoff_max=args.retry_backoff_max,
        retry_budget=args.retry_budget,
        on_partition_error=args.on_partition_error,
    )
    service = QueryService(ctx, buffer_size=args.buffer_size,
                           retry=retry)
    server = SnapshotServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        task = asyncio.ensure_future(server.serve())
        # With --port 0 the bound port is only known once listening;
        # a failed bind must surface instead of spinning forever.
        while not server.port and not task.done():
            await asyncio.sleep(0.01)
        if not task.done():
            print(f"serving {len(service.plans)} registered plan "
                  f"names on {server.host}:{server.port} "
                  f"(Ctrl-C to stop)", flush=True)
        await task

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deep Online Aggregation (Wake, SIGMOD 2023) "
                    "reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_generate(sub)
    _add_run(sub)
    _add_explain(sub)
    _add_profile(sub)
    _add_stats(sub)
    _add_serve(sub)
    _add_lint(sub)
    args = parser.parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "run": cmd_run,
        "explain": cmd_explain,
        "profile": cmd_profile,
        "stats": cmd_stats,
        "serve": cmd_serve,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
