"""Query executors (paper §7.2 "Execution Engine").

Two interchangeable engines drive a :class:`QueryGraph` and collect the
output node's message stream into an :class:`EvolvingDataFrame`:

* :class:`SyncExecutor` — single-threaded, deterministic.  Drains
  priority-0 sources (hash-join build subtrees) fully, then round-robins
  the remaining sources one partition at a time, breadth-first flushing
  every message through the graph.  This is the engine used by tests and
  error-curve experiments (deterministic snapshot sequences).

* :class:`ThreadedExecutor` — the paper's design: every node runs on its
  own thread, edges are bounded queues, EOF markers propagate shutdown.
  Provides pipelined parallelism (Appendix C / Fig 13) and records a
  per-node busy timeline.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.dataframe.frame import DataFrame
from repro.core.edf import EdfSnapshot, EvolvingDataFrame
from repro.core.properties import Delivery
from repro.engine.graph import QueryGraph
from repro.engine.message import Eof, Message
from repro.engine.ops.base import SourceOperator


@dataclass(frozen=True)
class TimelineEvent:
    """One busy interval of a node (for the Fig 13 pipeline plot)."""

    node: str
    start: float
    end: float
    rows: int


class _SinkState:
    """Accumulates the output node's messages into edf snapshots."""

    def __init__(self, name: str, delivery: Delivery, capture_all: bool,
                 started_at: float) -> None:
        self.edf = EvolvingDataFrame(name)
        self._delivery = delivery
        self._capture_all = capture_all
        self._started_at = started_at
        self._parts: list[DataFrame] = []
        self._latest: DataFrame | None = None
        self._sequence = 0
        self._pending: Message | None = None
        # Concat-of-everything-seen-so-far cache: per snapshot only the
        # parts that arrived since the last materialization are appended,
        # instead of re-concatenating the whole APPEND stream each time.
        # Folded-in parts are released (the cache is the only copy).
        self._cached: DataFrame | None = None

    def accept(self, message: Message) -> None:
        if message.kind == Delivery.REPLACE:
            self._latest = message.frame
            self._parts = []
            self._cached = None
        else:
            self._parts.append(message.frame)
        if self._capture_all or self._sequence == 0:
            self._snapshot(message)
            self._pending = None
        else:
            self._pending = message

    def _current_frame(self) -> DataFrame:
        if not self._parts:
            if self._cached is not None:
                return self._cached
            if self._latest is not None:
                return self._latest
            return DataFrame.concat([])  # preserves the seed's error
        base = ([self._cached] if self._cached is not None
                else [] if self._latest is None else [self._latest])
        frame = DataFrame.concat(base + self._parts)
        self._cached = frame
        self._parts = []
        return frame

    def _snapshot_from_progress(self, progress) -> None:
        frame = self._current_frame()
        self.edf.append(
            EdfSnapshot(
                frame=frame,
                progress=progress,
                sequence=self._sequence,
                wall_time=time.perf_counter() - self._started_at,
                rows_processed=sum(progress.done.values()),
            )
        )
        self._sequence += 1

    def _snapshot(self, message: Message) -> None:
        self._snapshot_from_progress(message.progress)

    def finish(self, final_progress=None) -> None:
        """Materialize any pending snapshot; if the stream ended without a
        progress-complete message (e.g. trailing empty flushes were
        suppressed upstream), seal the edf with a final snapshot carrying
        the output operator's completed progress."""
        if self._pending is not None:
            self._snapshot(self._pending)
            self._pending = None
        if (
            final_progress is not None
            and final_progress.is_complete
            and len(self.edf)
            and not self.edf.is_final
        ):
            self._snapshot_from_progress(final_progress)


def _append_empty_final(sink: "_SinkState", schema, progress,
                        started_at: float) -> None:
    """Queries whose operators never emit (fully filtered inputs) still
    deliver one final, empty, exact snapshot."""
    sink.edf.append(
        EdfSnapshot(
            frame=DataFrame.empty(schema),
            progress=progress,
            sequence=0,
            wall_time=time.perf_counter() - started_at,
            rows_processed=sum(progress.done.values()),
        )
    )


class StepExecutor:
    """Resumable single-threaded executor; the unit of work is one
    source partition.

    ``step()`` consumes one partition from one source (or, once a source
    is exhausted, dispatches its EOF), flushes it breadth-first through
    the graph, and returns control to the caller.  Stepping to
    completion reproduces :class:`SyncExecutor`'s dispatch order exactly
    — build-side sources drain fully first, the rest round-robin one
    partition at a time — so snapshot sequences are byte-identical to a
    run-to-EOF execution no matter how the steps are interleaved with
    other queries'.  This is the scheduling quantum of the multi-query
    service (:mod:`repro.service`).

    State is built lazily on the first ``step()`` (submission does not
    open files); ``close()`` abandons a run mid-flight, closing every
    open read stream and releasing operator state, while the collected
    ``edf`` stays readable.

    **Fault tolerance contract.**  A ``step()`` that raises falls into
    one of two classes, exposed via :attr:`step_retry_safe`:

    * the failure happened while *pulling* the next partition from a
      source (the read itself) — no executor or operator state advanced,
      the source cursor is still on the failed partition, and calling
      ``step()`` again retries exactly that partition
      (``step_retry_safe`` is ``True``);
    * the failure happened while *dispatching* a message through the
      graph — operator state may be half-updated and a retry would
      double-process (``step_retry_safe`` is ``False``).

    After a retry-safe failure, :meth:`quarantine_current` arms the
    skip-and-degrade path: the next step skips the failing partition,
    emitting the empty progress-advancing DELTA the pruning path uses,
    and the skip is recorded in :attr:`quarantined`.
    """

    def __init__(
        self,
        graph: QueryGraph,
        output: int,
        capture_all: bool = True,
        record_timeline: bool = False,
    ) -> None:
        graph.validate_output(output)
        self.graph: QueryGraph | None = graph
        self.output = output
        self.capture_all = capture_all
        self.record_timeline = record_timeline
        self.timeline: list[TimelineEvent] = []
        self._sink: _SinkState | None = None
        self._subscribers: dict[int, list[tuple[int, int]]] | None = None
        self._streams: dict[int, object] = {}
        self._build: deque[int] = deque()
        self._round_robin: deque[int] = deque()
        self._opened = False
        self._finished = False
        self._closed = False
        self._steps = 0
        self._retry_safe = False
        self._failed_source: int | None = None
        #: Partitions skipped by the fault-tolerance skip-and-degrade
        #: path (``QuarantinedPartition`` records, in skip order).
        self.quarantined: list = []
        #: Test seam (fault injection): when set, called with this
        #: executor at the top of every step, before any state advances
        #: — an exception raised here is always retry-safe.
        self.before_step = None
        #: Optional shared-scan pool (a
        #: :class:`repro.service.scanshare.ScanShareManager`) injected
        #: by the service before the first step: every scan source
        #: opened by this executor subscribes to it, so concurrent
        #: queries share one physical read per (table, partition,
        #: column-superset).  ``None`` keeps scans private.
        self.scan_share = None
        #: Optional :class:`repro.obs.instruments.ScanInstruments`
        #: bundle injected by the service (same pattern as
        #: ``scan_share``): scans opened by this executor count
        #: partitions read/pruned, rows, and bytes into it.
        self.scan_metrics = None
        #: Optional :class:`repro.obs.profile.OperatorProfiler`: when
        #: set, every dispatch (and every source pull, attributed to
        #: the scan operator) records its wall time and input rows.
        self.profiler = None

    # -- lazy setup ---------------------------------------------------------------
    def _ensure_sink(self) -> None:
        if self._sink is not None:
            return
        assert self.graph is not None
        infos = self.graph.resolve()
        self._started_at = time.perf_counter()
        self._sink = _SinkState(
            name=self.graph.node(self.output).operator.name,
            delivery=infos[self.output].delivery,
            capture_all=self.capture_all,
            started_at=self._started_at,
        )

    def _open_streams(self) -> None:
        if self._opened:
            return
        self._opened = True
        graph = self.graph
        assert graph is not None
        self._ensure_sink()
        self._subscribers = graph.subscribers()
        # Sources: drain priority-0 (build sides) fully, then round-robin.
        priorities = graph.source_priorities()
        for source_id in graph.source_ids():
            op = graph.node(source_id).operator
            assert isinstance(op, SourceOperator)
            if self.scan_share is not None and hasattr(op, "scan_share"):
                # Inject the service's shared-scan pool right before the
                # stream opens (streams subscribe at construction).
                op.scan_share = self.scan_share
            if (self.scan_metrics is not None
                    and hasattr(op, "scan_metrics")):
                op.scan_metrics = self.scan_metrics
            self._streams[source_id] = op.stream()
        self._build = deque(
            s for s in self._streams if priorities[s] == 0
        )
        self._round_robin = deque(
            s for s in self._streams if priorities[s] == 1
        )

    # -- introspection ------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every source hit EOF and the edf was sealed."""
        return self._finished

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def steps(self) -> int:
        """Partition-steps (incl. EOF dispatches) executed so far."""
        return self._steps

    @property
    def step_retry_safe(self) -> bool:
        """True when the last failed ``step()`` stopped before any state
        advanced (the pull raised), so re-stepping retries the same
        partition instead of corrupting operator state."""
        return self._retry_safe

    @property
    def edf(self) -> EvolvingDataFrame:
        """The live output edf; snapshots appear as steps execute."""
        self._ensure_sink()
        assert self._sink is not None
        return self._sink.edf

    # -- stepping -----------------------------------------------------------------
    def step(self) -> bool:
        """Advance by one quantum: dispatch one source partition (or one
        source EOF) through the graph.  Returns ``False`` iff the query
        had already finished or was closed (no work was done)."""
        if self._finished or self._closed:
            return False
        if self.before_step is not None:
            self._retry_safe = True
            self._failed_source = None
            self.before_step(self)
        self._retry_safe = False
        self._failed_source = None
        self._open_streams()
        if self._build:
            source_id = self._build[0]
            if not self._pump(source_id):
                self._build.popleft()
        elif self._round_robin:
            # Peek, pump, then rotate: a pull failure leaves the deque
            # untouched, so a retried step targets the same source (and
            # the source cursor the same partition).
            source_id = self._round_robin[0]
            alive = self._pump(source_id)
            self._round_robin.popleft()
            if alive:
                self._round_robin.append(source_id)
        self._steps += 1
        if not self._build and not self._round_robin:
            self._finalize()
        return True

    def _pump(self, source_id: int) -> bool:
        """One partition from ``source_id``; False once it hits EOF."""
        profiler = self.profiler
        started = time.perf_counter() if profiler is not None else 0.0
        try:
            message = next(self._streams[source_id])  # type: ignore[arg-type]
        except StopIteration:
            self._emit_source_eof(source_id)
            return False
        except BaseException:
            # The pull advanced nothing (the source cursor is still on
            # the failed partition), so this failure is retryable.
            self._retry_safe = True
            self._failed_source = source_id
            raise
        if profiler is not None:
            # Attribute the pull (read + decompress) to the source
            # operator; downstream dispatch time lands in _dispatch.
            assert self.graph is not None
            profiler.record(
                self.graph.node(source_id).operator.name,
                time.perf_counter() - started,
                message.frame.n_rows,
            )
        self._emit_from_source(source_id, message)
        return True

    def quarantine_current(self):
        """Skip the partition the last retry-safe failure was reading:
        the next step emits the empty progress-advancing DELTA the
        pruning path uses instead of re-reading the file, so the query
        keeps refining without the partition's rows.  Returns the
        :class:`~repro.engine.ops.read.QuarantinedPartition` skipped, or
        ``None`` when the failure's source does not support skipping
        (no retry-safe failure recorded, or a non-scan source)."""
        if self._failed_source is None:
            return None
        stream = self._streams.get(self._failed_source)
        arm = getattr(stream, "quarantine_next", None)
        if arm is None:
            return None
        record = arm()
        if record is not None:
            self.quarantined.append(record)
        return record

    def _finalize(self) -> None:
        self._finished = True
        graph = self.graph
        assert graph is not None and self._sink is not None
        self._sink.finish()
        if not len(self._sink.edf):
            _append_empty_final(
                self._sink, graph.resolve()[self.output].schema,
                graph.node(self.output).operator.progress,
                self._started_at,
            )
        self._streams.clear()

    def run(self) -> EvolvingDataFrame:
        """Step until every source hit EOF; returns the sealed edf."""
        while self.step():
            pass
        return self.edf

    def close(self) -> None:
        """Abandon the run: close every open read stream and release
        operator state (build indexes, group state).  The edf keeps the
        snapshots produced so far but will never become final.  Called
        by the service layer on cancellation; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._ensure_sink()
        for stream in self._streams.values():
            close = getattr(stream, "close", None)
            if close is not None:
                close()
        self._streams.clear()
        self._build.clear()
        self._round_robin.clear()
        # Drop the graph reference: it is what keeps per-operator state
        # (join indexes, aggregate slots, sort buffers) alive.
        self.graph = None
        self._subscribers = None

    # -- dispatch (breadth-first flush, shared with SyncExecutor) -----------------
    def _dispatch(self, node_id: int, port: int, item: object) -> None:
        graph = self.graph
        sink = self._sink
        subscribers = self._subscribers
        assert graph is not None and sink is not None
        assert subscribers is not None
        pending: deque[tuple[int, int, object]] = deque(
            [(node_id, port, item)]
        )
        while pending:
            nid, prt, itm = pending.popleft()
            node = graph.node(nid)
            start = time.perf_counter()
            if isinstance(itm, Message):
                outputs = node.operator.on_message(prt, itm)
                rows = itm.frame.n_rows
                forward_eof = False
            else:
                outputs = node.operator.on_eof(prt)
                rows = 0
                forward_eof = node.operator.eof_complete
            if self.record_timeline or self.profiler is not None:
                end = time.perf_counter()
                if self.record_timeline:
                    self.timeline.append(
                        TimelineEvent(node.operator.name, start, end,
                                      rows)
                    )
                if self.profiler is not None:
                    self.profiler.record(node.operator.name,
                                         end - start, rows)
            for out in outputs:
                if nid == self.output:
                    sink.accept(out)
                for sub_id, sub_port in subscribers[nid]:
                    pending.append((sub_id, sub_port, out))
            if forward_eof:
                if nid == self.output:
                    sink.finish(node.operator.progress)
                for sub_id, sub_port in subscribers[nid]:
                    pending.append((sub_id, sub_port, Eof(
                        node.operator.progress)))

    def _emit_from_source(self, source_id: int, message: Message) -> None:
        assert self._sink is not None and self._subscribers is not None
        if source_id == self.output:
            self._sink.accept(message)
        for sub_id, sub_port in self._subscribers[source_id]:
            self._dispatch(sub_id, sub_port, message)

    def _emit_source_eof(self, source_id: int) -> None:
        assert self.graph is not None
        assert self._sink is not None and self._subscribers is not None
        op = self.graph.node(source_id).operator
        if source_id == self.output:
            self._sink.finish(op.progress)
        for sub_id, sub_port in self._subscribers[source_id]:
            self._dispatch(sub_id, sub_port, Eof(op.progress))


class SyncExecutor(StepExecutor):
    """Deterministic single-threaded run-to-completion executor: step
    until all sources hit EOF (see :class:`StepExecutor` for the pump
    loop; this class is the classic blocking entry point)."""


class ThreadedExecutor:
    """One thread per node with bounded channels (the paper's engine)."""

    #: Bounded channel capacity (messages) — provides backpressure.
    CHANNEL_CAPACITY = 16

    def __init__(
        self,
        graph: QueryGraph,
        output: int,
        capture_all: bool = True,
        record_timeline: bool = False,
        source_delay: float = 0.0,
    ) -> None:
        graph.validate_output(output)
        self.graph = graph
        self.output = output
        self.capture_all = capture_all
        self.record_timeline = record_timeline
        self.source_delay = source_delay
        self.timeline: list[TimelineEvent] = []
        self._timeline_lock = threading.Lock()
        self._last_edf: EvolvingDataFrame | None = None
        #: Shared abort flag: flipped by the error path *and* by
        #: external cancellation; once set, blocked bounded-channel puts
        #: convert into drops and every node thread winds down.
        self._abort = threading.Event()

    def cancel(self) -> None:
        """Externally abort an in-flight ``run()``/``stream()``.

        Reuses the error-path abort protocol: sources stop streaming,
        blocked puts into full channels become drops, and an EOF
        cascade drains the graph, so every worker thread joins instead
        of leaking.  The stream then ends with whatever snapshots were
        already produced (the edf never becomes final).  Idempotent and
        safe to call from any thread.
        """
        self._abort.set()

    def _record(self, name: str, start: float, end: float,
                rows: int) -> None:
        if self.record_timeline:
            with self._timeline_lock:
                self.timeline.append(TimelineEvent(name, start, end, rows))

    def run(self) -> EvolvingDataFrame:
        """Execute to completion and return the collected edf."""
        edf: EvolvingDataFrame | None = None
        for _snapshot in self.stream():
            pass
        edf = self._last_edf
        assert edf is not None
        return edf

    def stream(self):
        """Execute while *yielding* each snapshot as it is produced —
        the live-consumer API (progressive visualization, dashboards).

        Closing the generator mid-stream (``close()``, garbage
        collection of an abandoned iterator, or a ``KeyboardInterrupt``
        in the consumer loop) shuts the executor down cleanly: the
        abort flag flips, blocked channel puts become drops, and every
        node thread is joined before ``GeneratorExit`` propagates.
        """
        graph = self.graph
        infos = graph.resolve()
        subscribers = graph.subscribers()
        started_at = time.perf_counter()

        channels: dict[int, queue.Queue] = {
            nid: queue.Queue(maxsize=self.CHANNEL_CAPACITY)
            for nid in graph.nodes
            if not isinstance(graph.node(nid).operator, SourceOperator)
        }
        sink_channel: queue.Queue = queue.Queue()
        errors: list[BaseException] = []
        # Set on the first node error, by cancel(), or when the
        # generator is closed mid-stream.  Once aborting, every blocked
        # bounded-channel put converts into a bounded retry that drops
        # its item — consumers may already have exited, and a blocking
        # put into a full channel nobody drains would park the producer
        # until the join timeout, masking the original error.
        abort = self._abort

        def put_item(channel_: queue.Queue, item: object) -> None:
            while True:
                try:
                    channel_.put(item, timeout=0.05)
                    return
                except queue.Full:
                    if abort.is_set():
                        return  # receiver is gone; drop on the floor

        def send(node_id: int, item: object) -> None:
            """Fan out one item to a node's subscribers (and the sink)."""
            if node_id == self.output:
                sink_channel.put(item)  # unbounded, never blocks
            for sub_id, sub_port in subscribers[node_id]:
                put_item(channels[sub_id], (sub_port, item))

        def fail(exc: BaseException, node_id: int, progress) -> None:
            """Error path: record, flip the abort flag, then poison
            downstream with EOF so the graph drains instead of hanging."""
            errors.append(exc)
            abort.set()
            send(node_id, Eof(progress))

        def source_main(node_id: int) -> None:
            op = graph.node(node_id).operator
            assert isinstance(op, SourceOperator)
            try:
                for message in op.stream():
                    if abort.is_set():
                        break
                    if self.source_delay:
                        time.sleep(self.source_delay)
                    send(node_id, message)
                send(node_id, Eof(op.progress))
            except BaseException as exc:  # noqa: BLE001 - forwarded to main
                fail(exc, node_id, op.progress)

        def worker_main(node_id: int) -> None:
            op = graph.node(node_id).operator
            channel = channels[node_id]
            try:
                while True:
                    try:
                        port, item = channel.get(timeout=0.05)
                    except queue.Empty:
                        if abort.is_set():
                            send(node_id, Eof(op.progress))
                            return
                        continue
                    start = time.perf_counter()
                    if isinstance(item, Message):
                        outputs = op.on_message(port, item)
                        rows = item.frame.n_rows
                    else:
                        outputs = op.on_eof(port)
                        rows = 0
                    self._record(op.name, start, time.perf_counter(), rows)
                    for out in outputs:
                        send(node_id, out)
                    if op.eof_complete:
                        send(node_id, Eof(op.progress))
                        return
            except BaseException as exc:  # noqa: BLE001
                fail(exc, node_id, op.progress)

        threads: list[threading.Thread] = []
        for nid in graph.nodes:
            op = graph.node(nid).operator
            main = source_main if isinstance(op, SourceOperator) \
                else worker_main
            thread = threading.Thread(
                target=main, args=(nid,), name=f"wake-{op.name}",
                daemon=True,
            )
            threads.append(thread)

        sink = _SinkState(
            name=graph.node(self.output).operator.name,
            delivery=infos[self.output].delivery,
            capture_all=self.capture_all,
            started_at=started_at,
        )
        self._last_edf = sink.edf
        for thread in threads:
            thread.start()
        yielded = 0
        completed = False
        try:
            while True:
                try:
                    item = sink_channel.get(timeout=0.1)
                except queue.Empty:
                    # Belt and braces: if the output's EOF was lost to an
                    # aborting channel, stop once every node thread is
                    # done.
                    if abort.is_set() and not any(
                        t.is_alive() for t in threads
                    ):
                        break
                    continue
                if isinstance(item, Eof):
                    sink.finish(item.progress)
                else:
                    sink.accept(item)
                while yielded < len(sink.edf):
                    yield sink.edf.snapshots[yielded]
                    yielded += 1
                if isinstance(item, Eof):
                    break
            completed = True
        finally:
            # Abandoned mid-stream (GeneratorExit from close()/GC, or an
            # exception such as KeyboardInterrupt in the consumer loop):
            # flip the abort flag so blocked puts become drops, then
            # join every node thread before the exception propagates.
            if not completed:
                abort.set()
            # With the abort protocol, threads unblock within one retry
            # interval of a failure; a short timeout suffices there.
            join_timeout = 30.0 if completed and not errors else 5.0
            for thread in threads:
                thread.join(timeout=join_timeout)
        if errors:
            # The original failure always wins over secondary symptoms
            # (e.g. a straggler thread still tearing down).
            raise ExecutionError(
                f"execution failed: {errors[0]!r}"
            ) from errors[0]
        for thread in threads:
            if thread.is_alive():
                raise ExecutionError(
                    f"thread {thread.name} failed to terminate"
                )
        if not len(sink.edf):
            _append_empty_final(sink, infos[self.output].schema,
                                graph.node(self.output).operator.progress,
                                started_at)
            yield sink.edf.snapshots[0]
