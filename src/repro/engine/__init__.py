"""Execution engine: query graph, message protocol, executors, and the
shard-plan rewrite (paper §7)."""

from repro.engine.executor import (
    StepExecutor,
    SyncExecutor,
    ThreadedExecutor,
    TimelineEvent,
)
from repro.engine.graph import Node, QueryGraph
from repro.engine.message import Eof, Message
from repro.engine.planner import shard_plan

__all__ = [
    "Eof",
    "Message",
    "Node",
    "QueryGraph",
    "StepExecutor",
    "SyncExecutor",
    "ThreadedExecutor",
    "TimelineEvent",
    "shard_plan",
]
