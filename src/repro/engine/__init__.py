"""Execution engine: query graph, message protocol, executors (paper §7)."""

from repro.engine.executor import (
    SyncExecutor,
    ThreadedExecutor,
    TimelineEvent,
)
from repro.engine.graph import Node, QueryGraph
from repro.engine.message import Eof, Message

__all__ = [
    "Eof",
    "Message",
    "Node",
    "QueryGraph",
    "SyncExecutor",
    "ThreadedExecutor",
    "TimelineEvent",
]
