"""Execution engine: query graph, message protocol, executors, the
plan-rewrite optimizer, and canonical plan hashing (paper §7)."""

from repro.engine.executor import (
    StepExecutor,
    SyncExecutor,
    ThreadedExecutor,
    TimelineEvent,
)
from repro.engine.graph import Node, QueryGraph
from repro.engine.message import Eof, Message
from repro.engine.optimizer import (
    Optimizer,
    OptimizerTrace,
    RULE_NAMES,
    build_optimizer,
)
from repro.engine.plan_node import plan_hash
from repro.engine.planner import pushdown_plan, shard_plan

__all__ = [
    "Eof",
    "Message",
    "Node",
    "Optimizer",
    "OptimizerTrace",
    "QueryGraph",
    "RULE_NAMES",
    "StepExecutor",
    "SyncExecutor",
    "ThreadedExecutor",
    "TimelineEvent",
    "build_optimizer",
    "plan_hash",
    "pushdown_plan",
    "shard_plan",
]
