"""Projection / mapping operators (paper §3.2 "Map").

Wake's map applies a function to *partitions* rather than rows; both
flavours here follow that contract:

* :class:`SelectOperator` — expression-based projection with derived
  columns (the common case; knows its output schema at plan time and can
  propagate CI sigma columns through differentiable expressions);
* :class:`MapPartitionsOperator` — an arbitrary frame→frame callable (the
  paper's general form, e.g. "two most ordered items within each order").

Per the Case-1 analysis (§2.2) both preserve the input's delivery: DELTA
partials map to DELTA partials, snapshots to snapshots.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import QueryError
from repro.dataframe.expr import Column, Expr
from repro.dataframe.frame import DataFrame
from repro.dataframe.schema import (
    AttributeKind,
    Field,
    Schema,
    dtype_of,
)
from repro.core.ci import propagate_map_variance, sigma_column
from repro.core.properties import StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import Operator


class SelectOperator(Operator):
    """Project to named expressions: ``[(name, expr), ...]``.

    A derived column is MUTABLE iff its expression references any mutable
    input attribute.  When ``propagate_ci`` is set, derived columns over
    mutable inputs with ``<col>__sigma`` companions get their own sigma
    columns via the delta method (§6 "Variance Propagation").
    """

    def __init__(
        self,
        name: str,
        exprs: Sequence[tuple[str, Expr]],
        propagate_ci: bool = False,
    ) -> None:
        super().__init__(name)
        if not exprs:
            raise QueryError("select requires at least one expression")
        names = [n for n, _ in exprs]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate output names in select: {names}")
        self.exprs = list(exprs)
        self.propagate_ci = propagate_ci
        self._ci_sources: dict[str, dict[str, str]] = {}

    @staticmethod
    def _is_passthrough(expr: Expr, name: str) -> bool:
        """True for a bare ``col(name)`` projection of the same name."""
        return isinstance(expr, Column) and expr.name == name

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        (info,) = inputs
        schema: Schema = info.schema
        fields: list[Field] = []
        mutable_inputs = set(schema.mutable_names)
        probe = DataFrame.empty(schema)
        for out_name, expr in self.exprs:
            referenced = expr.columns()
            missing = referenced - set(schema.names)
            if missing:
                raise QueryError(
                    f"select {self.name!r}: unknown column(s) "
                    f"{sorted(missing)}"
                )
            is_mutable = bool(referenced & mutable_inputs)
            if self._is_passthrough(expr, out_name):
                fields.append(schema.field(out_name))
            else:
                values = np.asarray(expr.evaluate(probe))
                if values.ndim == 0:  # pure literal: broadcast scalar
                    values = np.full(0, values)
                kind = (
                    AttributeKind.MUTABLE if is_mutable
                    else AttributeKind.CONSTANT
                )
                fields.append(Field(out_name, dtype_of(values), kind))
            if self.propagate_ci and is_mutable:
                sigmas = {
                    c: sigma_column(c)
                    for c in referenced & mutable_inputs
                    if sigma_column(c) in schema
                }
                if sigmas:
                    self._ci_sources[out_name] = sigmas
                    fields.append(
                        Field(sigma_column(out_name), fields[-1].dtype,
                              AttributeKind.MUTABLE)
                    )
        out_schema = Schema(fields)
        out_names = set(out_schema.names)
        clustering = (
            info.clustering_key
            if set(info.clustering_key) <= out_names
            else ()
        )
        primary = (
            info.primary_key if set(info.primary_key) <= out_names else ()
        )
        return StreamInfo(
            schema=out_schema,
            primary_key=primary,
            clustering_key=clustering,
            delivery=info.delivery,
        )

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        frame = message.frame
        data: dict[str, np.ndarray] = {}
        fields: list[Field] = []
        in_schema = frame.schema
        mutable_inputs = set(in_schema.mutable_names)
        for out_name, expr in self.exprs:
            values = np.asarray(expr.evaluate(frame))
            if values.ndim == 0:
                values = np.full(frame.n_rows, values)
            data[out_name] = values
            kind = (
                AttributeKind.MUTABLE
                if expr.columns() & mutable_inputs
                else AttributeKind.CONSTANT
            )
            if self._is_passthrough(expr, out_name):
                fields.append(in_schema.field(out_name))
            else:
                fields.append(Field(out_name, dtype_of(values), kind))
            sources = self._ci_sources.get(out_name)
            if sources:
                variances = {
                    c: frame.column(s).astype(np.float64) ** 2
                    for c, s in sources.items()
                }
                sigma = np.sqrt(
                    propagate_map_variance(frame, expr, variances)
                )
                name = sigma_column(out_name)
                data[name] = sigma
                fields.append(
                    Field(name, dtype_of(sigma), AttributeKind.MUTABLE)
                )
        out = DataFrame(data, schema=Schema(fields))
        return [message.replaced_frame(out)]


class MapPartitionsOperator(Operator):
    """Apply an arbitrary frame→frame function per message (paper's map).

    The function must be *local*: its output for a set of partitions must
    equal the union of outputs per partition (Case 1).  The output schema
    is taken from ``schema`` or probed by calling the function on an empty
    input frame.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[DataFrame], DataFrame],
        schema: Schema | None = None,
        preserves_clustering: bool = False,
    ) -> None:
        super().__init__(name)
        self.fn = fn
        self._declared_schema = schema
        self.preserves_clustering = preserves_clustering

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        (info,) = inputs
        if self._declared_schema is not None:
            out_schema = self._declared_schema
        else:
            probe = self.fn(DataFrame.empty(info.schema))
            out_schema = probe.schema
        clustering = (
            info.clustering_key
            if self.preserves_clustering
            and set(info.clustering_key) <= set(out_schema.names)
            else ()
        )
        return StreamInfo(
            schema=out_schema,
            primary_key=(),
            clustering_key=clustering,
            delivery=info.delivery,
        )

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        return [message.replaced_frame(self.fn(message.frame))]
