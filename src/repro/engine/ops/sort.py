"""Sort / limit operator — Case 3: shuffle without inference (paper §2.2).

Order-by and limit must consume their entire input; on every input change
the output is recomputed wholesale and emitted as a REPLACE snapshot.  As
the paper notes, these appear at the tail of pipelines (top-k for user
consumption) so the redundant recomputation is cheap relative to the
upstream aggregation work.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe.sort import sort_frame
from repro.core.properties import Delivery, StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import Operator


class SortLimitOperator(Operator):
    """Sort by keys (optional) and keep the first ``limit`` rows
    (optional).  At least one of the two must be requested."""

    def __init__(
        self,
        name: str,
        by: Sequence[str] = (),
        ascending: Sequence[bool] | bool = True,
        limit: int | None = None,
    ) -> None:
        super().__init__(name)
        if not by and limit is None:
            raise QueryError(
                f"sort/limit {self.name!r}: need sort keys and/or a limit"
            )
        if limit is not None and limit < 0:
            raise QueryError(f"negative limit in {self.name!r}")
        self.by = tuple(by)
        self.ascending = ascending
        self.limit = limit
        self._parts: list[DataFrame] = []
        self._snapshot: DataFrame | None = None

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        (info,) = inputs
        for key in self.by:
            if key not in info.schema:
                raise QueryError(
                    f"sort {self.name!r}: unknown key {key!r}"
                )
        return StreamInfo(
            schema=info.schema,
            primary_key=info.primary_key,
            clustering_key=self.by,  # output is physically ordered by keys
            delivery=Delivery.REPLACE,
        )

    def _current(self) -> DataFrame:
        if self._snapshot is not None:
            return self._snapshot
        if self._parts:
            return DataFrame.concat(self._parts)
        return DataFrame.empty(self.input_infos[0].schema)

    def _recompute(self, message: Message) -> list[Message]:
        frame = self._current()
        if self.by and frame.n_rows:
            frame = sort_frame(frame, list(self.by), self.ascending)
        if self.limit is not None:
            frame = frame.head(self.limit)
        return [
            Message(frame=frame, progress=self.progress,
                    kind=Delivery.REPLACE)
        ]

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        if message.kind == Delivery.REPLACE:
            self._snapshot = message.frame
            self._parts = []
        else:
            self._parts.append(message.frame)
        return self._recompute(message)
