"""Sort / limit operator — Case 3: shuffle without inference (paper §2.2).

Order-by and limit must consume their entire input; every input change is
answered with a REPLACE snapshot.  The per-message cost still has to
track the *message*, not the stream (ROADMAP cost model):

* the buffered history is a cached concat (like the executor's
  ``_SinkState``): each DELTA partial is folded in with one concat, the
  stream is never re-concatenated wholesale;
* with ``limit=k`` a bounded top-k buffer is maintained instead — each
  partial is merged against at most k retained rows, so per-message cost
  is O((k + |partial|) log (k + |partial|)) regardless of history.  The
  sort is stable, so the retained boundary ties are exactly the ones a
  full re-sort of the whole history would keep (byte-identical output);
* a full re-sort only remains on the unbounded order-by path, where the
  output *is* the whole sorted history.

A REPLACE input resets the buffers and is recomputed wholesale — the
snapshot is the message, so that cost is already message-shaped.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe.sort import sort_frame
from repro.core.properties import Delivery, StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import Operator


class SortLimitOperator(Operator):
    """Sort by keys (optional) and keep the first ``limit`` rows
    (optional).  At least one of the two must be requested."""

    def __init__(
        self,
        name: str,
        by: Sequence[str] = (),
        ascending: Sequence[bool] | bool = True,
        limit: int | None = None,
    ) -> None:
        super().__init__(name)
        if not by and limit is None:
            raise QueryError(
                f"sort/limit {self.name!r}: need sort keys and/or a limit"
            )
        if limit is not None and limit < 0:
            raise QueryError(f"negative limit in {self.name!r}")
        self.by = tuple(by)
        self.ascending = ascending
        self.limit = limit
        self._parts: list[DataFrame] = []
        self._cached: DataFrame | None = None
        self._topk: DataFrame | None = None

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        (info,) = inputs
        for key in self.by:
            if key not in info.schema:
                raise QueryError(
                    f"sort {self.name!r}: unknown key {key!r}"
                )
        self._parts = []
        self._cached = None
        self._topk = None
        return StreamInfo(
            schema=info.schema,
            primary_key=info.primary_key,
            clustering_key=self.by,  # output is physically ordered by keys
            delivery=Delivery.REPLACE,
        )

    def _emit(self, frame: DataFrame) -> list[Message]:
        return [
            Message(frame=frame, progress=self.progress,
                    kind=Delivery.REPLACE)
        ]

    def _sorted_head(self, frame: DataFrame) -> DataFrame:
        if self.by and frame.n_rows:
            frame = sort_frame(frame, list(self.by), self.ascending)
        if self.limit is not None:
            frame = frame.head(self.limit)
        return frame

    # -- unbounded path: cached concat of the DELTA history ----------------------
    def _current(self) -> DataFrame:
        if self._parts:
            base = [] if self._cached is None else [self._cached]
            self._cached = DataFrame.concat(base + self._parts)
            self._parts = []
        if self._cached is None:
            return DataFrame.empty(self.input_infos[0].schema)
        return self._cached

    # -- bounded path: top-k buffer ----------------------------------------------
    def _fold_limit(self, frame: DataFrame) -> DataFrame:
        assert self.limit is not None
        if self._topk is None:
            cand = frame
        elif not frame.n_rows:
            return self._topk
        elif not self.by and self._topk.n_rows >= self.limit:
            # Pure limit over an append-only stream: the first k rows
            # are already fixed forever.
            return self._topk
        else:
            cand = DataFrame.concat([self._topk, frame])
        self._topk = self._sorted_head(cand)
        return self._topk

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        if message.kind == Delivery.REPLACE:
            # Wholesale recompute; the snapshot also reseeds the buffers
            # so trailing DELTA partials (if any) fold on top of it.  On
            # the bounded path the O(k) reseed is _topk — retaining the
            # full snapshot there would pin it for no reader.
            self._parts = []
            self._cached = message.frame if self.limit is None else None
            out = self._sorted_head(message.frame)
            if self.limit is not None:
                self._topk = out
            return self._emit(out)
        if self.limit is not None:
            return self._emit(self._fold_limit(message.frame))
        self._parts.append(message.frame)
        return self._emit(self._sorted_head(self._current()))
