"""Exchange-based data parallelism: hash shard ports + shard union.

The engine's threaded executor gives *pipelined* parallelism (one thread
per node, paper Appendix C), but every stateful operator is a single
shard, so shuffle-heavy queries are capped by one core.  This module
provides the two dataflow pieces the shard rewrite
(:mod:`repro.engine.planner`) composes into hash-partitioned *data*
parallelism:

* :class:`ExchangeOperator` — one shard output port of a logical K-way
  hash exchange.  The planner instantiates K sibling ports over the same
  upstream node; each masks the incoming message down to the rows whose
  key hash lands on its shard.  Siblings share a :class:`ShardHashCache`
  so each in-flight message is hashed once, not once per port.
* :class:`UnionOperator` — the combine step over the K shard replicas.
  REPLACE inputs (sharded aggregates) are concatenated key-sorted from
  the latest per-port snapshots, with progress aligned to the slowest
  reporting shard; DELTA inputs (sharded joins) pass through unchanged.

Hashing canonicalizes keys so that rows equal under the engine's grouping
semantics always co-locate: all numerics go through float64 (an int64
probe key equals a float64 build key), ``-0.0`` folds onto ``+0.0``, and
every NaN onto one canonical NaN (one NaN group, like
``np.unique(equal_nan)``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe.sort import sort_frame
from repro.core.properties import Delivery, Progress, StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import Operator

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_FNV_OFFSET = np.uint64(14695981039346656037)
_FNV_PRIME = np.uint64(1099511628211)


def _splitmix64(u: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (wrapping uint64 arithmetic)."""
    with np.errstate(over="ignore"):
        z = u + _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def _column_bits(values: np.ndarray) -> np.ndarray:
    """Canonical uint64 bit pattern per value: keys equal under grouping
    semantics map to equal bits (see module docstring)."""
    if values.dtype.kind in "biuf":
        v = values.astype(np.float64)  # always copies into fresh buffer
        v[v == 0.0] = 0.0  # -0.0 == 0.0 must shard together
        v[np.isnan(v)] = np.nan  # one canonical NaN bit pattern
        return v.view(np.uint64)
    if values.dtype.kind in "US":
        arr = values if values.dtype.kind == "U" else values.astype(str)
        n = len(arr)
        if n == 0 or arr.dtype.itemsize == 0:
            return np.zeros(n, dtype=np.uint64)
        # Fixed-width UCS4 storage viewed as a codepoint matrix;
        # polynomial fold sum(c_j * B^j) in which the zero padding
        # contributes nothing, so equal strings hash equal regardless of
        # the array's item width (the same key streams in frames of
        # varying widths).
        mat = np.ascontiguousarray(arr).view(np.uint32)
        mat = mat.reshape(n, -1).astype(np.uint64)
        out = np.full(n, _FNV_OFFSET, dtype=np.uint64)
        power = np.uint64(1)
        with np.errstate(over="ignore"):
            for j in range(mat.shape[1]):
                out = out + mat[:, j] * power
                power = power * _FNV_PRIME
        return out
    raise QueryError(
        f"cannot hash-partition on dtype {values.dtype!r}"
    )


def shard_assignment(
    columns: Sequence[np.ndarray], n_shards: int
) -> np.ndarray:
    """Shard id in ``[0, n_shards)`` per row of the key columns."""
    if not columns:
        raise QueryError("shard assignment requires at least one key column")
    h = np.zeros(len(columns[0]), dtype=np.uint64)
    for col in columns:
        h = _splitmix64(h ^ _column_bits(col))
    return (h % np.uint64(n_shards)).astype(np.int64)


class ShardHashCache:
    """Per-message shard-assignment memo shared by the K sibling ports of
    one logical exchange.

    The executor fans one message (one frame object) out to every port by
    reference, so keying on ``id(frame)`` deduplicates the hash work.
    Entries keep a strong reference to their frame — an id can never be
    recycled while its entry lives — and are reference-counted: each of
    the K ports reads a message exactly once, so an entry is dropped on
    its K-th access and the cache holds only frames some sibling has not
    consumed yet (bounded by the executor's channel capacity; the FIFO
    cap is a safety net for operators that re-emit one frame object).
    """

    CAPACITY = 64

    def __init__(self, keys: Sequence[str], n_shards: int) -> None:
        if n_shards < 1:
            raise QueryError(f"n_shards must be >= 1, got {n_shards}")
        self.keys = tuple(keys)
        self.n_shards = n_shards
        self._lock = threading.Lock()
        #: id(frame) -> [frame, shards, remaining reads]
        self._entries: OrderedDict[int, list] = OrderedDict()

    def shards_for(self, frame: DataFrame) -> np.ndarray:
        key = id(frame)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is frame:
                entry[2] -= 1
                if entry[2] <= 0:
                    del self._entries[key]
                return entry[1]
        # Hash outside the lock; concurrent ports may briefly duplicate
        # the work but never block each other on it.
        shards = shard_assignment(
            [frame.column(k) for k in self.keys], self.n_shards
        )
        if self.n_shards > 1:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and entry[0] is frame:
                    # Another port computed and inserted concurrently;
                    # this port's read comes off that entry's budget, or
                    # the counter would never drain and the entry would
                    # pin the frame until FIFO eviction.
                    entry[2] -= 1
                    if entry[2] <= 0:
                        del self._entries[key]
                else:
                    self._entries[key] = [frame, shards,
                                          self.n_shards - 1]
                    while len(self._entries) > self.CAPACITY:
                        self._entries.popitem(last=False)
        return shards


class ExchangeOperator(Operator):
    """One shard output port of a K-way hash exchange.

    Forwards the rows of every message whose key hash lands on ``shard``;
    schema, keys, clustering, and delivery all pass through unchanged
    (masking a partition preserves intra-message order, and a whole key
    cluster always lands on one port, so clustering guarantees survive).
    Empty masked messages still flow — they carry the progress downstream
    estimates refresh on.
    """

    def __init__(
        self,
        name: str,
        keys: Sequence[str],
        shard: int,
        n_shards: int,
        cache: ShardHashCache | None = None,
    ) -> None:
        super().__init__(name)
        if not keys:
            raise QueryError(f"exchange {name!r} requires key columns")
        if n_shards < 1:
            raise QueryError(
                f"exchange {name!r}: n_shards must be >= 1, got {n_shards}"
            )
        if not 0 <= shard < n_shards:
            raise QueryError(
                f"exchange {name!r}: shard {shard} out of range "
                f"[0, {n_shards})"
            )
        self.keys = tuple(keys)
        self.shard = shard
        self.n_shards = n_shards
        if cache is None:
            cache = ShardHashCache(self.keys, n_shards)
        if cache.keys != self.keys or cache.n_shards != n_shards:
            raise QueryError(
                f"exchange {name!r}: shared cache is keyed on "
                f"{cache.keys}/{cache.n_shards}, port expects "
                f"{self.keys}/{n_shards}"
            )
        self._cache = cache

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        (info,) = inputs
        for key in self.keys:
            if key not in info.schema:
                raise QueryError(
                    f"exchange {self.name!r}: unknown key column {key!r}"
                )
        return StreamInfo(
            schema=info.schema,
            primary_key=info.primary_key,
            clustering_key=info.clustering_key,
            delivery=info.delivery,
        )

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        shards = self._cache.shards_for(message.frame)
        return [
            message.replaced_frame(message.frame.mask(shards == self.shard))
        ]


class UnionOperator(Operator):
    """Combine the K shard replicas of a sharded subplan.

    With REPLACE inputs (sharded aggregates) the operator keeps the
    latest snapshot per port and emits their concatenation on every
    update, sorted on ``sort_keys`` so rows come out in the same
    key-sorted order the unsharded operator produces (shards own disjoint
    key ranges, so the sorted concat of exact finals is byte-identical).
    The attached progress is aligned to the *slowest* reporting shard
    (per-source minimum of done counters), so a downstream consumer's
    growth inference never sees an overstated t for rows that are still
    missing a lagging shard's refresh.

    With DELTA inputs (sharded joins) messages pass through unchanged:
    shard outputs are key-disjoint partials, so any interleaving is a
    valid DELTA stream.

    ``info`` optionally pins the output :class:`StreamInfo` to the
    original (unsharded) operator's, keeping every downstream bind
    decision identical to the unsharded plan.
    """

    def __init__(
        self,
        name: str,
        n_inputs: int,
        sort_keys: Sequence[str] = (),
        info: StreamInfo | None = None,
    ) -> None:
        super().__init__(name)
        if n_inputs < 1:
            raise QueryError(
                f"union {name!r} requires >= 1 input, got {n_inputs}"
            )
        self.n_inputs = n_inputs
        self.sort_keys = tuple(sort_keys)
        self._info_override = info
        self._combine = False
        self._latest: list[Message | None] = [None] * n_inputs
        self._emitted_complete = False

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        first = inputs[0]
        for other in inputs[1:]:
            if not first.schema.same_layout(other.schema):
                raise QueryError(
                    f"union {self.name!r}: input schemas differ: "
                    f"{first.schema!r} vs {other.schema!r}"
                )
            if other.delivery != first.delivery:
                raise QueryError(
                    f"union {self.name!r}: mixed input deliveries "
                    f"({first.delivery.value} vs {other.delivery.value})"
                )
        self._combine = first.delivery == Delivery.REPLACE
        self._latest = [None] * self.n_inputs
        self._emitted_complete = False
        if self._info_override is not None:
            if not first.schema.same_layout(self._info_override.schema):
                raise QueryError(
                    f"union {self.name!r}: pinned info schema does not "
                    f"match the shard schemas"
                )
            return self._info_override
        if self._combine:
            return StreamInfo(
                schema=first.schema,
                primary_key=first.primary_key,
                clustering_key=(),
                delivery=Delivery.REPLACE,
            )
        return StreamInfo(
            schema=first.schema,
            primary_key=first.primary_key,
            clustering_key=first.clustering_key,
            delivery=Delivery.DELTA,
        )

    # -- REPLACE combine ---------------------------------------------------------
    def _all_ports_accounted(self) -> bool:
        """Every port has either reported a snapshot or reached EOF."""
        return all(
            m is not None or port in self._eof_ports
            for port, m in enumerate(self._latest)
        )

    def _aligned_progress(self, reported: list[Message]) -> Progress:
        """Slowest-shard progress: per-source min of done counters over
        the reporting ports (emission is held until every live port has
        reported, so no shard's groups are silently missing; EOF'd ports
        without a report own nothing and are excluded)."""
        total: dict[str, int] = {}
        for message in reported:
            for source, count in message.progress.total.items():
                total[source] = count
        done = {
            source: min(
                m.progress.done.get(source, 0) for m in reported
            )
            for source in total
        }
        return Progress(done=done, total=total)

    def _combined(self, progress: Progress | None = None) -> Message:
        reported = [m for m in self._latest if m is not None]
        frames = [m.frame for m in reported]
        # Empty snapshots contribute no rows; keeping them out of the
        # concat also tolerates an empty-state shard whose planned
        # schema spells a logical dtype (e.g. DATE) differently from the
        # inference output layout.
        pool = [f for f in frames if f.n_rows] or frames[:1]
        frame = pool[0] if len(pool) == 1 else DataFrame.concat(pool)
        if self.sort_keys and frame.n_rows:
            frame = sort_frame(frame, list(self.sort_keys))
        if progress is None:
            progress = self._aligned_progress(reported)
        if progress.is_complete:
            self._emitted_complete = True
        return Message(frame=frame, progress=progress,
                       kind=Delivery.REPLACE)

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        if not self._combine:
            return [message]
        self._latest[port] = message
        if not self._all_ports_accounted():
            # A live shard has not refreshed even once: its groups are
            # missing and any progress claim for it would be a lie.
            # Hold the combine (shard replicas report from the first
            # message on, so this only spans the first fan-out round).
            return []
        return [self._combined()]

    def _final_flush(self) -> list[Message]:
        """Seal the stream with one complete combined snapshot (unless
        the last per-port refresh already was one).  Ports that never
        reported own zero groups and contribute nothing."""
        if not self._combine or self._emitted_complete:
            return []
        if not any(m is not None for m in self._latest):
            return []
        out = [self._combined(progress=self.progress)]
        self._emitted_complete = True
        return out
