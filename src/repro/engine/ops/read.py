"""Table reader source (the paper's ``read_csv`` node).

Streams one DELTA message per partition, advancing the per-source progress
counters that the whole pipeline inherits (§4.4: the only metadata needed
is the file list, per-file tuple counts, and key attributes).

The scan layer accepts two pushdowns from the planner
(:func:`repro.engine.planner.pushdown_plan`):

* ``columns`` — projection: only the selected columns are decompressed
  per partition, so per-message scan cost is O(selected columns), not
  O(schema width);
* ``predicates`` — a sargable conjunction evaluated against the
  catalog's per-partition zone maps: partitions no row of which can
  satisfy the filter are *skipped* (never read).  A skipped partition
  still yields an **empty** DELTA message whose progress advances by its
  tuple count, so downstream snapshot cadence, growth-inference ``t``,
  and estimator scale-ups are exactly what an unpruned scan + filter
  would produce — pruning is semantically a filter, finals stay
  byte-identical.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import QueryError
from repro.dataframe import DataFrame, Schema
from repro.core.properties import Delivery, Progress, StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import SourceOperator
from repro.storage.catalog import TableMeta
from repro.storage.zonemap import SargablePredicate, prunable_partitions


class ReadOperator(SourceOperator):
    """Reads a partitioned base table as a DELTA stream.

    ``order`` optionally permutes partition read order (used by the §8.5
    shuffled-input CI experiment).  ``source_name`` defaults to the table
    name and keys the progress counters.  ``columns``/``predicates``
    carry planner pushdowns (see the module docstring).
    """

    def __init__(
        self,
        meta: TableMeta,
        name: str | None = None,
        order: Sequence[int] | None = None,
        source_name: str | None = None,
        columns: Sequence[str] | None = None,
        predicates: Sequence[SargablePredicate] = (),
    ) -> None:
        super().__init__(name or f"read({meta.name})")
        self.meta = meta
        self.order = list(order) if order is not None else None
        self.source_name = source_name or meta.name
        self.columns: tuple[str, ...] | None = None
        self.predicates: tuple[SargablePredicate, ...] = tuple(predicates)
        if columns is not None:
            self.set_columns(columns)

    # -- pushdown hooks (mutated by the planner before bind) ------------------
    def set_columns(self, columns: Sequence[str]) -> None:
        """Project the scan to ``columns`` (kept in table-schema order)."""
        wanted = set(columns)
        missing = wanted - set(self.meta.schema.names)
        if missing:
            raise QueryError(
                f"scan {self.name!r}: pushed column(s) {sorted(missing)} "
                f"not in table {self.meta.name!r}"
            )
        if not wanted:
            raise QueryError(f"scan {self.name!r}: empty column pushdown")
        self.columns = tuple(
            n for n in self.meta.schema.names if n in wanted
        )

    def set_predicates(
        self, predicates: Sequence[SargablePredicate]
    ) -> None:
        self.predicates = tuple(predicates)

    # -- plan-time views -------------------------------------------------------
    def scan_schema(self) -> Schema:
        """The (possibly projected) schema this scan emits."""
        if self.columns is None:
            return self.meta.schema
        return self.meta.schema.select(self.columns)

    def pruned_partitions(self) -> frozenset[int]:
        """Partition indices the zone maps prove the predicates exclude."""
        return prunable_partitions(self.meta.stats, self.predicates)

    def _derive_info(self, inputs) -> StreamInfo:
        schema = self.scan_schema()
        names = set(schema.names)
        return StreamInfo(
            schema=schema,
            primary_key=(
                self.meta.primary_key
                if set(self.meta.primary_key) <= names
                else ()
            ),
            clustering_key=(
                self.meta.clustering_key
                if set(self.meta.clustering_key) <= names
                else ()
            ),
            delivery=Delivery.DELTA,
        )

    def stream(self) -> Iterator[Message]:
        # Per-stream state is rebuilt from scratch: constructing (or
        # restarting) the iterator twice must not double-merge progress
        # into the operator, so ``_progress`` is *reset*, not merged.
        progress = Progress.start(self.source_name, self.meta.total_tuples)
        self._progress = progress
        skipped = self.pruned_partitions()
        schema = self.scan_schema()
        indices = (
            range(self.meta.n_partitions)
            if self.order is None
            else self.order
        )
        for index in indices:
            if index in skipped:
                # Pruned: advance progress by the partition's tuple count
                # without touching the file.  The empty partial still
                # flows so downstream refresh cadence and growth
                # inference match the unpruned scan exactly.
                progress = progress.advanced(
                    self.source_name, self.meta.tuple_counts[index]
                )
                self._progress = progress
                yield Message(
                    frame=DataFrame.empty(schema),
                    progress=progress,
                    kind=Delivery.DELTA,
                )
                continue
            frame = self.meta.read_partition(index, columns=self.columns)
            progress = progress.advanced(self.source_name, frame.n_rows)
            self._progress = progress
            yield Message(frame=frame, progress=progress,
                          kind=Delivery.DELTA)
