"""Table reader source (the paper's ``read_csv`` node).

Streams one DELTA message per partition, advancing the per-source progress
counters that the whole pipeline inherits (§4.4: the only metadata needed
is the file list, per-file tuple counts, and key attributes).

The scan layer accepts two pushdowns from the planner
(:func:`repro.engine.planner.pushdown_plan`):

* ``columns`` — projection: only the selected columns are decompressed
  per partition, so per-message scan cost is O(selected columns), not
  O(schema width);
* ``predicates`` — a sargable conjunction evaluated against the
  catalog's per-partition zone maps: partitions no row of which can
  satisfy the filter are *skipped* (never read).  A skipped partition
  still yields an **empty** DELTA message whose progress advances by its
  tuple count, so downstream snapshot cadence, growth-inference ``t``,
  and estimator scale-ups are exactly what an unpruned scan + filter
  would produce — pruning is semantically a filter, finals stay
  byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import QueryError
from repro.dataframe import DataFrame, Schema
from repro.core.properties import Delivery, Progress, StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import SourceOperator
from repro.storage.catalog import TableMeta
from repro.storage.zonemap import SargablePredicate, prunable_partitions


@dataclass(frozen=True)
class QuarantinedPartition:
    """One partition a scan gave up on (fault tolerance's skip mode)."""

    source: str
    table: str
    index: int
    path: str
    rows: int


class PartitionStream:
    """Iterator yielding one DELTA message per partition — the
    retry-safe form of the old generator-based scan.

    A generator dies the moment an exception propagates out of it; this
    class instead keeps an explicit cursor that only advances *after* a
    partition is read successfully, so a transient read failure leaves
    the stream positioned on the same partition and the very next
    ``next()`` retries it.  That property is what makes the service's
    per-step retry sound: a retried step re-reads exactly the partition
    that failed, nothing is skipped or double-counted.

    ``quarantine_next()`` arms the skip-and-degrade path: the next pull
    does not touch the failing file and instead emits the same
    empty-DELTA-that-advances-progress message the zone-map pruning path
    uses, so downstream snapshot cadence and growth inference keep
    refining without the partition's rows.
    """

    def __init__(self, op: "ReadOperator") -> None:
        self._op = op
        self._indices = list(
            range(op.meta.n_partitions)
            if op.order is None
            else op.order
        )
        self._pruned = op.pruned_partitions()
        self._schema = op.scan_schema()
        self._pos = 0
        self._quarantine_next = False
        # Pre-bound storage-read instruments (a ScanInstruments bundle
        # injected by the service, like the scan-share pool below);
        # ``None`` keeps the scan unmetered.
        self._obs = op.scan_metrics
        # Multi-query scan sharing (service layer): when the operator
        # carries a ScanShareManager, register the partitions this
        # stream will physically read (pruned ones excluded) so
        # concurrent scans of the same table share one read/decompress
        # per partition.  All failure/retry semantics are unchanged —
        # the pool never publishes a failed read.
        if op.scan_share is not None:
            self._share = op.scan_share.subscribe(
                op.meta,
                (i for i in self._indices if i not in self._pruned),
                op.columns,
            )
        else:
            self._share = None
        # Per-stream state is rebuilt from scratch: constructing (or
        # restarting) the iterator twice must not double-merge progress
        # into the operator, so ``_progress`` is *reset*, not merged.
        self._progress = Progress.start(
            op.source_name, op.meta.total_tuples
        )
        op._progress = self._progress

    def __iter__(self) -> "PartitionStream":
        return self

    def __next__(self) -> Message:
        op = self._op
        if self._pos >= len(self._indices):
            if self._share is not None:
                self._share.close()
            raise StopIteration
        index = self._indices[self._pos]
        obs = self._obs
        if index in self._pruned or self._quarantine_next:
            # Pruned or quarantined: advance progress by the partition's
            # tuple count without touching the file.  The empty partial
            # still flows so downstream refresh cadence and growth
            # inference match the full scan exactly.
            if self._quarantine_next and self._share is not None:
                # Tell the pool we will never consume this partition so
                # other subscribers stop waiting on (and stop widening
                # column unions for) this stream.
                self._share.release(index)
            if obs is not None and not self._quarantine_next:
                obs.partitions_pruned.inc()
            self._quarantine_next = False
            frame = DataFrame.empty(self._schema)
            advance = op.meta.tuple_counts[index]
        elif self._share is not None:
            frame = self._share.fetch(index)
            advance = frame.n_rows
            if obs is not None:
                obs.partitions_read.inc()
                obs.rows_read.inc(advance)
                obs.bytes_read.inc(frame.nbytes())
        else:
            frame = op.meta.read_partition(index, columns=op.columns)
            advance = frame.n_rows
            if obs is not None:
                obs.partitions_read.inc()
                obs.rows_read.inc(advance)
                obs.bytes_read.inc(frame.nbytes())
        self._pos += 1
        self._progress = self._progress.advanced(
            op.source_name, advance
        )
        op._progress = self._progress
        return Message(frame=frame, progress=self._progress,
                       kind=Delivery.DELTA)

    def quarantine_next(self) -> QuarantinedPartition | None:
        """Arm the skip for the partition the cursor points at (the one
        whose read just failed); returns its description, or ``None``
        when the stream is already exhausted."""
        if self._pos >= len(self._indices):
            return None
        index = self._indices[self._pos]
        self._quarantine_next = True
        return QuarantinedPartition(
            source=self._op.source_name,
            table=self._op.meta.name,
            index=index,
            path=str(self._op.meta.files[index]),
            rows=int(self._op.meta.tuple_counts[index]),
        )

    def close(self) -> None:
        """Exhaust the stream (the executor's stream-shutdown hook)."""
        self._pos = len(self._indices)
        if self._share is not None:
            self._share.close()


class ReadOperator(SourceOperator):
    """Reads a partitioned base table as a DELTA stream.

    ``order`` optionally permutes partition read order (used by the §8.5
    shuffled-input CI experiment).  ``source_name`` defaults to the table
    name and keys the progress counters.  ``columns``/``predicates``
    carry planner pushdowns (see the module docstring).
    """

    #: Optional :class:`~repro.service.scanshare.ScanShareManager` —
    #: injected by the step executor when the service enables shared
    #: scans; ``None`` (the default) keeps every scan private.
    scan_share = None
    #: Optional :class:`~repro.obs.instruments.ScanInstruments` bundle
    #: — injected by the step executor when the service enables
    #: telemetry; ``None`` (the default) keeps the scan unmetered.
    scan_metrics = None

    def __init__(
        self,
        meta: TableMeta,
        name: str | None = None,
        order: Sequence[int] | None = None,
        source_name: str | None = None,
        columns: Sequence[str] | None = None,
        predicates: Sequence[SargablePredicate] = (),
    ) -> None:
        super().__init__(name or f"read({meta.name})")
        self.meta = meta
        self.order = list(order) if order is not None else None
        self.source_name = source_name or meta.name
        self.columns: tuple[str, ...] | None = None
        self.predicates: tuple[SargablePredicate, ...] = tuple(predicates)
        if columns is not None:
            self.set_columns(columns)

    # -- pushdown hooks (mutated by the planner before bind) ------------------
    def set_columns(self, columns: Sequence[str]) -> None:
        """Project the scan to ``columns`` (kept in table-schema order)."""
        wanted = set(columns)
        missing = wanted - set(self.meta.schema.names)
        if missing:
            raise QueryError(
                f"scan {self.name!r}: pushed column(s) {sorted(missing)} "
                f"not in table {self.meta.name!r}"
            )
        if not wanted:
            raise QueryError(f"scan {self.name!r}: empty column pushdown")
        self.columns = tuple(
            n for n in self.meta.schema.names if n in wanted
        )

    def set_predicates(
        self, predicates: Sequence[SargablePredicate]
    ) -> None:
        self.predicates = tuple(predicates)

    # -- plan-time views -------------------------------------------------------
    def scan_schema(self) -> Schema:
        """The (possibly projected) schema this scan emits."""
        if self.columns is None:
            return self.meta.schema
        return self.meta.schema.select(self.columns)

    def pruned_partitions(self) -> frozenset[int]:
        """Partition indices the zone maps prove the predicates exclude."""
        return prunable_partitions(self.meta.stats, self.predicates)

    def _derive_info(self, inputs) -> StreamInfo:
        schema = self.scan_schema()
        names = set(schema.names)
        return StreamInfo(
            schema=schema,
            primary_key=(
                self.meta.primary_key
                if set(self.meta.primary_key) <= names
                else ()
            ),
            clustering_key=(
                self.meta.clustering_key
                if set(self.meta.clustering_key) <= names
                else ()
            ),
            delivery=Delivery.DELTA,
        )

    def stream(self) -> Iterator[Message]:
        """A fresh retry-safe cursor over the table's partitions (see
        :class:`PartitionStream` for the fault-tolerance contract)."""
        return PartitionStream(self)
