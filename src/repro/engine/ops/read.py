"""Table reader source (the paper's ``read_csv`` node).

Streams one DELTA message per partition, advancing the per-source progress
counters that the whole pipeline inherits (§4.4: the only metadata needed
is the file list, per-file tuple counts, and key attributes).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.properties import Delivery, Progress, StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import SourceOperator
from repro.storage.catalog import TableMeta


class ReadOperator(SourceOperator):
    """Reads a partitioned base table as a DELTA stream.

    ``order`` optionally permutes partition read order (used by the §8.5
    shuffled-input CI experiment).  ``source_name`` defaults to the table
    name and keys the progress counters.
    """

    def __init__(
        self,
        meta: TableMeta,
        name: str | None = None,
        order: Sequence[int] | None = None,
        source_name: str | None = None,
    ) -> None:
        super().__init__(name or f"read({meta.name})")
        self.meta = meta
        self.order = list(order) if order is not None else None
        self.source_name = source_name or meta.name

    def _derive_info(self, inputs) -> StreamInfo:
        return StreamInfo(
            schema=self.meta.schema,
            primary_key=self.meta.primary_key,
            clustering_key=self.meta.clustering_key,
            delivery=Delivery.DELTA,
        )

    def stream(self) -> Iterator[Message]:
        progress = Progress.start(self.source_name, self.meta.total_tuples)
        self._progress = self._progress.merged(progress)
        for _index, frame in self.meta.iter_partitions(self.order):
            progress = progress.advanced(self.source_name, frame.n_rows)
            self._progress = self._progress.merged(progress)
            yield Message(frame=frame, progress=progress,
                          kind=Delivery.DELTA)
