"""Filter operator (paper §3.2 "Filter", §2.3 attribute-kind analysis).

A predicate over *constant* attributes is an order-preserving local
operation (Case 1): each incoming partial is filtered independently and
the delivery kind is preserved.  A predicate touching a *mutable*
attribute can only be evaluated on snapshots: REPLACE inputs are filtered
per snapshot; a DELTA input would have to be accumulated and recomputed
(defensive path — mutable attributes only arise from REPLACE-emitting
aggregations in practice).
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.dataframe.expr import Expr
from repro.dataframe.frame import DataFrame
from repro.core.properties import Delivery, StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import Operator
from repro.storage.zonemap import SargablePredicate, sargable_conjuncts


class FilterOperator(Operator):
    """Keep rows satisfying ``predicate``."""

    def __init__(self, name: str, predicate: Expr) -> None:
        super().__init__(name)
        self.predicate = predicate
        self._recompute = False
        self._accumulated: list[DataFrame] = []

    def sargable(self) -> list[SargablePredicate]:
        """The zone-map-evaluable conjuncts of this filter's predicate.

        Used by the planner's predicate pushdown: each conjunct only ever
        *narrows* what the full predicate keeps, so a partition none of
        whose rows can satisfy some conjunct contributes nothing here —
        skipping it upstream is invisible below this operator.
        """
        return sargable_conjuncts(self.predicate)

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        (info,) = inputs
        schema = info.schema
        referenced = self.predicate.columns()
        missing = referenced - set(schema.names)
        if missing:
            raise QueryError(
                f"filter {self.name!r}: unknown column(s) {sorted(missing)}"
            )
        touches_mutable = bool(referenced & set(schema.mutable_names))
        self._recompute = (
            touches_mutable and info.delivery == Delivery.DELTA
        )
        delivery = (
            Delivery.REPLACE
            if (self._recompute or info.delivery == Delivery.REPLACE)
            else Delivery.DELTA
        )
        return StreamInfo(
            schema=schema,
            primary_key=info.primary_key,
            clustering_key=info.clustering_key,
            delivery=delivery,
        )

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        if self._recompute:
            # DELTA input over mutable attributes: accumulate + recompute.
            self._accumulated.append(message.frame)
            whole = DataFrame.concat(self._accumulated)
            kept = whole.mask(self.predicate.evaluate(whole))
            return [
                Message(frame=kept, progress=message.progress,
                        kind=Delivery.REPLACE)
            ]
        kept = message.frame.mask(self.predicate.evaluate(message.frame))
        # Empty partials still flow: they advance downstream progress so
        # consumers refresh their estimates once per input partition.
        return [message.replaced_frame(kept)]
