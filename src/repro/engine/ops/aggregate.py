"""Aggregate operator with growth-based inference (paper §4–§5).

Two execution modes, chosen at plan time from the input's StreamInfo:

* **local** (Case 1, §2.2): the grouping keys contain the input's
  clustering key, so clusters never straddle partials — each DELTA partial
  aggregates independently into *exact, immutable* output rows, emitted as
  DELTA.  This is the paper's ``lineitem.sum(qty, by=orderkey)`` path and
  the reason deep pipelines like TPC-H Q18 stream end-to-end (Fig 6).

* **shuffle** (Case 2, §2.2): grouping keys are not aligned with the
  physical clustering.  The operator maintains mergeable intrinsic states
  (versions × partials, §4.2) and emits REPLACE snapshots of *scaled
  estimates* produced by growth-based inference (§5); output aggregate
  attributes are mutable.

A REPLACE input always forces shuffle mode with per-snapshot recomputation
(new version per message) — the deep-aggregation path measured in §8.6.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe.groupby import AggSpec, group_aggregate
from repro.dataframe.schema import AttributeKind, DType, Field, Schema
from repro.core.ci import CIConfig, sigma_column
from repro.core.growth import GrowthModel
from repro.core.inference import AggregateInference
from repro.core.orderstat import DEFAULT_SKETCH_SIZE, QUANTILE_MODES
from repro.core.properties import Delivery, StreamInfo
from repro.core.state import GroupedAggregateState
from repro.engine.message import Message
from repro.engine.ops.base import Operator

#: Plan-time dtype of every aggregate output column.
_AGG_DTYPE = {
    "sum": DType.FLOAT64,
    "count": DType.FLOAT64,
    "avg": DType.FLOAT64,
    "min": DType.FLOAT64,
    "max": DType.FLOAT64,
    "var": DType.FLOAT64,
    "stddev": DType.FLOAT64,
    "sem": DType.FLOAT64,
    "prod": DType.FLOAT64,
    "first": DType.FLOAT64,
    "last": DType.FLOAT64,
    "count_distinct": DType.FLOAT64,
    "median": DType.FLOAT64,
    "quantile": DType.FLOAT64,
}


class AggregateOperator(Operator):
    """Group-by (or global) aggregation over an edf stream."""

    #: Growth-scaling strategies (the §5.2 ablation knob):
    #: ``fitted``  — the paper's streaming log-log fit of w (default);
    #: ``uniform`` — classic OLA 1/t scaling (pin w = 1);
    #: ``none``    — raw merged values, no scaling (pin w = 0).
    GROWTH_MODES = ("fitted", "uniform", "none")

    def __init__(
        self,
        name: str,
        specs: Sequence[AggSpec],
        by: Sequence[str] = (),
        ci: CIConfig | None = None,
        growth_mode: str = "fitted",
        quantile_mode: str = "exact",
        sketch_size: int = DEFAULT_SKETCH_SIZE,
        always_emit: bool = False,
    ) -> None:
        super().__init__(name)
        if not specs:
            raise QueryError(f"aggregate {self.name!r} needs >= 1 AggSpec")
        if growth_mode not in self.GROWTH_MODES:
            raise QueryError(
                f"aggregate {self.name!r}: unknown growth_mode "
                f"{growth_mode!r}; expected one of {self.GROWTH_MODES}"
            )
        if quantile_mode not in QUANTILE_MODES:
            raise QueryError(
                f"aggregate {self.name!r}: unknown quantile_mode "
                f"{quantile_mode!r}; expected one of {QUANTILE_MODES}"
            )
        if sketch_size < 2:
            raise QueryError(
                f"aggregate {self.name!r}: sketch_size must be >= 2, "
                f"got {sketch_size}"
            )
        self.specs = tuple(specs)
        self.by = tuple(by)
        self.ci = ci
        self.growth_mode = growth_mode
        self.quantile_mode = quantile_mode
        self.sketch_size = sketch_size
        #: Emit an (empty) REPLACE snapshot even while the state holds no
        #: groups.  Off by default (empty input prefixes stay silent);
        #: the shard rewrite enables it on replicas so every shard port
        #: reports progress to the combining union from the first
        #: message on — a shard owning zero groups would otherwise never
        #: report and the union could not align progress to it.
        self.always_emit = always_emit
        self.local_mode = False
        self._state: GroupedAggregateState | None = None
        self._inference: AggregateInference | None = None
        self._emitted_final = False
        self._has_emitted = False
        self._last_schema: Schema | None = None

    # -- plan time ---------------------------------------------------------------
    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        (info,) = inputs
        schema: Schema = info.schema
        for key in self.by:
            if key not in schema:
                raise QueryError(
                    f"aggregate {self.name!r}: unknown group key {key!r}"
                )
            if schema.kind(key) == AttributeKind.MUTABLE:
                raise QueryError(
                    f"aggregate {self.name!r}: cannot group by mutable "
                    f"attribute {key!r} (paper §3.3: blocking case)"
                )
        for spec in self.specs:
            if spec.column is not None and spec.column not in schema:
                raise QueryError(
                    f"aggregate {self.name!r}: unknown column "
                    f"{spec.column!r} in {spec.agg}"
                )

        self.local_mode = (
            info.delivery == Delivery.DELTA
            and bool(self.by)
            and info.clustered_on(self.by)
        )

        fields = [schema.field(k).as_constant() for k in self.by]
        out_kind = (
            AttributeKind.CONSTANT if self.local_mode
            else AttributeKind.MUTABLE
        )
        for spec in self.specs:
            fields.append(Field(spec.alias, _AGG_DTYPE[spec.agg], out_kind))
            if self.ci is not None and not self.local_mode:
                fields.append(
                    Field(sigma_column(spec.alias), DType.FLOAT64,
                          AttributeKind.MUTABLE)
                )

        if self.local_mode:
            return StreamInfo(
                schema=Schema(fields),
                primary_key=self.by,
                clustering_key=info.clustering_key,
                delivery=Delivery.DELTA,
            )

        # shuffle mode: configure intrinsic state + inference
        self._state = GroupedAggregateState(
            self.by, self.specs, track_moments=self.ci is not None,
            quantile_mode=self.quantile_mode,
            sketch_size=self.sketch_size,
        )
        if self.growth_mode == "uniform":
            growth = GrowthModel.pinned(1.0)
        elif self.growth_mode == "none":
            growth = GrowthModel.pinned(0.0)
        elif info.delivery == Delivery.REPLACE:
            growth = GrowthModel(prior_w=0.0)
        else:
            growth = GrowthModel(prior_w=1.0)
        self._inference = AggregateInference(growth, ci=self.ci)
        return StreamInfo(
            schema=Schema(fields),
            primary_key=self.by,
            clustering_key=(),
            delivery=Delivery.REPLACE,
        )

    # -- run time -----------------------------------------------------------------
    def _handle_message(self, port: int, message: Message) -> list[Message]:
        if self.local_mode:
            return self._handle_local(message)
        assert self._state is not None and self._inference is not None
        if message.kind == Delivery.REPLACE:
            self._state.consume_snapshot(message.frame)
        else:
            self._state.consume_delta(message.frame)
        if self._state.n_groups == 0:
            return self._emit_empty()
        t = self.progress.fraction
        self._inference.observe(self._state, t)
        out = self._inference.infer(self._state, t)
        if t >= 1.0:
            self._emitted_final = True
        self._has_emitted = True
        self._last_schema = out.schema
        return [
            Message(frame=out, progress=self.progress,
                    kind=Delivery.REPLACE)
        ]

    def _emit_empty(self) -> list[Message]:
        """Overwrite a previously-emitted estimate with an empty REPLACE
        snapshot when the state has no groups.

        A REPLACE input that shrinks from non-empty to empty resets the
        state to zero groups; staying silent here would leave the stale
        previous estimate in every downstream sink forever.  Before
        anything was emitted there is nothing to retract, so empty input
        prefixes still produce no spurious snapshots (unless
        ``always_emit`` asks for them)."""
        if not self._has_emitted and not self.always_emit:
            return []
        # When something was emitted, reusing its schema (not the
        # planned one) keeps attribute kinds/dtypes consistent with the
        # snapshots already sitting in downstream sinks.
        schema = (self._last_schema if self._last_schema is not None
                  else self.output_info.schema)
        if self.progress.fraction >= 1.0:
            self._emitted_final = True
        return [
            Message(frame=DataFrame.empty(schema), progress=self.progress,
                    kind=Delivery.REPLACE)
        ]

    def _handle_local(self, message: Message) -> list[Message]:
        if message.frame.n_rows == 0:
            return [message.replaced_frame(
                DataFrame.empty(self.output_info.schema)
            )]
        out = group_aggregate(message.frame, list(self.by),
                              list(self.specs))
        # Local-mode outputs are exact: demote aggregates to constant and
        # coerce to the planned column order / dtypes.
        aliases = {spec.alias for spec in self.specs}
        data = {
            name: (
                out.column(name).astype(np.float64)
                if name in aliases
                else out.column(name)
            )
            for name in self.output_info.schema.names
        }
        out = DataFrame(data, schema=self.output_info.schema)
        return [message.replaced_frame(out)]

    def _final_flush(self) -> list[Message]:
        """Guarantee a t = 1 exact snapshot exists (2C convergence)."""
        if self.local_mode or self._emitted_final:
            return []
        assert self._state is not None and self._inference is not None
        if self._state.n_groups == 0:
            # Same stale-estimate guard as _handle_message: retract a
            # previously-emitted estimate with an empty final snapshot.
            self._emitted_final = True
            return self._emit_empty()
        out = self._inference.infer(self._state, 1.0)
        self._emitted_final = True
        self._has_emitted = True
        return [
            Message(frame=out, progress=self.progress,
                    kind=Delivery.REPLACE)
        ]
