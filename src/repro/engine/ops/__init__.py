"""Operator implementations (the node types of paper §7.1)."""

from repro.engine.ops.base import Operator, SourceOperator
from repro.engine.ops.read import ReadOperator
from repro.engine.ops.map import MapPartitionsOperator, SelectOperator
from repro.engine.ops.filter import FilterOperator
from repro.engine.ops.aggregate import AggregateOperator
from repro.engine.ops.join import (
    CrossJoinOperator,
    HashJoinOperator,
    MergeJoinOperator,
)
from repro.engine.ops.sort import SortLimitOperator
from repro.engine.ops.distinct import DistinctOperator
from repro.engine.ops.exchange import ExchangeOperator, UnionOperator

__all__ = [
    "AggregateOperator",
    "CrossJoinOperator",
    "DistinctOperator",
    "ExchangeOperator",
    "FilterOperator",
    "HashJoinOperator",
    "MapPartitionsOperator",
    "MergeJoinOperator",
    "Operator",
    "ReadOperator",
    "SelectOperator",
    "SortLimitOperator",
    "SourceOperator",
    "UnionOperator",
]
