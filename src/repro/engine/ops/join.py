"""Join operators (paper §3.2 "Join", Fig 6).

* :class:`HashJoinOperator` — general equi-join.  The right (build) input
  is buffered until its EOF, then indexed **once** into a
  :class:`~repro.dataframe.join.JoinIndex`; probe messages stream through
  as dictionary-encoded lookups against the prebuilt index, so
  per-message cost is O(partition) rather than O(build) (right-deep
  chains thus build all hash tables before the probe flows, matching the
  paper's note on Q9/Q10/Q13 first-result latency).
* :class:`MergeJoinOperator` — progressive merge join for two DELTA
  streams clustered/sorted on the same single join key: joins are emitted
  up to the minimum key watermark of the two sides, giving fully
  incremental DELTA output (the lineitem ⋈ orders path of Fig 6).
  Pending rows are buffered as part lists; concatenation happens only
  when a watermark actually releases rows, never per message.
* :class:`CrossJoinOperator` — cartesian product against a small right
  side; with a REPLACE right input it re-emits on every right refresh,
  which is how decorrelated scalar subqueries (Q11, Q14, Q17, Q22) stay
  OLA-interactive.  A DELTA right side is buffered as parts and
  materialized once at its EOF.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe.join import JoinIndex, hash_join
from repro.dataframe.schema import AttributeKind, Field, Schema
from repro.core.properties import Delivery, StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import Operator


class HashJoinOperator(Operator):
    """Equi-join; port 0 = probe (streamed), port 1 = build (buffered).

    ``how`` ∈ {inner, left, semi, anti}.  Output delivery follows the
    probe side; the build side is always consumed to EOF first.
    """

    n_inputs = 2

    def __init__(
        self,
        name: str,
        left_on: Sequence[str],
        right_on: Sequence[str],
        how: str = "inner",
        suffix: str = "_right",
    ) -> None:
        super().__init__(name)
        self.left_on = tuple(left_on)
        self.right_on = tuple(right_on)
        self.how = how
        self.suffix = suffix
        self._build_ready = False
        self._build_parts: list[DataFrame] = []
        self._build_snapshot: DataFrame | None = None
        self._build_index: JoinIndex | None = None
        self._probe_buffer: list[Message] = []
        self._probe_latest: Message | None = None  # REPLACE probe input

    # -- plan time ---------------------------------------------------------------
    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        left, right = inputs
        for key in self.left_on:
            if key not in left.schema:
                raise QueryError(
                    f"join {self.name!r}: left key {key!r} not in schema"
                )
        for key in self.right_on:
            if key not in right.schema:
                raise QueryError(
                    f"join {self.name!r}: right key {key!r} not in schema"
                )
        probe = hash_join(
            DataFrame.empty(left.schema),
            DataFrame.empty(right.schema),
            list(self.left_on),
            list(self.right_on),
            how=self.how,
            suffix=self.suffix,
        )
        out_names = set(probe.schema.names)
        return StreamInfo(
            schema=probe.schema,
            primary_key=(
                left.primary_key
                if set(left.primary_key) <= out_names
                else ()
            ),
            clustering_key=(
                left.clustering_key
                if set(left.clustering_key) <= out_names
                else ()
            ),
            delivery=left.delivery,
        )

    # -- run time -----------------------------------------------------------------
    def _join(self, probe_frame: DataFrame) -> DataFrame:
        assert self._build_index is not None
        return self._build_index.probe(
            probe_frame, list(self.left_on), how=self.how
        )

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        if port == 1:  # build side: buffer until EOF
            if message.kind == Delivery.REPLACE:
                self._build_snapshot = message.frame
            else:
                self._build_parts.append(message.frame)
            return []
        # probe side
        if not self._build_ready:
            if message.kind == Delivery.REPLACE:
                self._probe_latest = message  # only the latest matters
            else:
                self._probe_buffer.append(message)
            return []
        return [self._emit(message)]

    def _emit(self, message: Message) -> Message:
        """Join a probe message; output progress merges the build side's
        counters so downstream t reflects every source."""
        return Message(
            frame=self._join(message.frame),
            progress=message.progress.merged(self.progress),
            kind=message.kind,
        )

    def _materialize_build(self) -> None:
        """Factorize and sort the build side exactly once; every probe
        partition afterwards is an index lookup."""
        right_schema = self.input_infos[1].schema
        if self._build_snapshot is not None:
            build_frame = self._build_snapshot
        elif self._build_parts:
            build_frame = DataFrame.concat(self._build_parts)
        else:
            build_frame = DataFrame.empty(right_schema)
        self._build_index = JoinIndex(
            build_frame, list(self.right_on), suffix=self.suffix
        )
        self._build_parts = []
        self._build_snapshot = None
        self._build_ready = True

    def _handle_eof(self, port: int) -> list[Message]:
        if port != 1:
            return []
        self._materialize_build()
        out: list[Message] = []
        for message in self._probe_buffer:
            out.append(self._emit(message))
        self._probe_buffer = []
        if self._probe_latest is not None:
            out.append(self._emit(self._probe_latest))
            self._probe_latest = None
        return out


class MergeJoinOperator(Operator):
    """Progressive merge join on one numeric key; both inputs DELTA and
    clustered/sorted on their respective keys."""

    n_inputs = 2

    def __init__(
        self,
        name: str,
        left_on: str,
        right_on: str,
        suffix: str = "_right",
    ) -> None:
        super().__init__(name)
        self.left_on = left_on
        self.right_on = right_on
        self.suffix = suffix
        self._parts: tuple[list[DataFrame], list[DataFrame]] = ([], [])
        self._part_mins: tuple[list[float], list[float]] = ([], [])
        self._watermarks = [-np.inf, -np.inf]
        self._closed = [False, False]

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        left, right = inputs
        for info, key, side in (
            (left, self.left_on, "left"),
            (right, self.right_on, "right"),
        ):
            if key not in info.schema:
                raise QueryError(
                    f"merge join {self.name!r}: {side} key {key!r} missing"
                )
            if info.delivery != Delivery.DELTA:
                raise QueryError(
                    f"merge join {self.name!r}: {side} input must stream "
                    f"DELTA messages (got {info.delivery.value})"
                )
            if not info.clustered_on((key,)):
                raise QueryError(
                    f"merge join {self.name!r}: {side} input is not "
                    f"clustered on {key!r}; use a hash join instead"
                )
        probe = hash_join(
            DataFrame.empty(left.schema),
            DataFrame.empty(right.schema),
            [self.left_on],
            [self.right_on],
            how="inner",
            suffix=self.suffix,
        )
        return StreamInfo(
            schema=probe.schema,
            primary_key=(
                left.primary_key
                if set(left.primary_key) <= set(probe.schema.names)
                else ()
            ),
            clustering_key=left.clustering_key,
            delivery=Delivery.DELTA,
        )

    def _key(self, port: int) -> str:
        return self.left_on if port == 0 else self.right_on

    def _append(self, port: int, frame: DataFrame) -> None:
        """Buffer one partition as a part (no concat on the hot path)."""
        if not frame.n_rows:
            return
        keys = frame.column(self._key(port))
        self._parts[port].append(frame)
        self._part_mins[port].append(float(keys.min()))
        self._watermarks[port] = max(
            self._watermarks[port], float(keys.max())
        )

    def _pending(self, port: int) -> DataFrame:
        if not self._parts[port]:
            return DataFrame.empty(self.input_infos[port].schema)
        if len(self._parts[port]) == 1:
            return self._parts[port][0]
        return DataFrame.concat(self._parts[port])

    def _has_ready(self, port: int, threshold: float) -> bool:
        return any(m <= threshold for m in self._part_mins[port])

    def _emitable(self, force: bool = False) -> list[Message]:
        """Join and release all buffered rows at or below the completed
        watermark.  ``force`` emits even an empty result — used at EOF so
        that stream-completion progress always reaches downstream."""
        threshold = min(
            np.inf if self._closed[0] else self._watermarks[0],
            np.inf if self._closed[1] else self._watermarks[1],
        )
        if not force and not (
            self._has_ready(0, threshold) and self._has_ready(1, threshold)
        ):
            return []
        left, right = self._pending(0), self._pending(1)
        l_keys = left.column(self.left_on).astype(np.float64)
        r_keys = right.column(self.right_on).astype(np.float64)
        l_ready = l_keys <= threshold
        r_ready = r_keys <= threshold
        joined = hash_join(
            left.mask(l_ready),
            right.mask(r_ready),
            [self.left_on],
            [self.right_on],
            how="inner",
            suffix=self.suffix,
        )
        for port, leftover in ((0, left.mask(~l_ready)),
                               (1, right.mask(~r_ready))):
            self._parts[port].clear()
            self._part_mins[port].clear()
            if leftover.n_rows:
                self._parts[port].append(leftover)
                self._part_mins[port].append(
                    float(leftover.column(self._key(port)).min())
                )
        return [
            Message(frame=joined, progress=self.progress,
                    kind=Delivery.DELTA)
        ]

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        self._append(port, message.frame)
        return self._emitable()

    def _handle_eof(self, port: int) -> list[Message]:
        self._closed[port] = True
        # Force a flush once both sides closed so the final (complete)
        # progress propagates even when nothing remains to join.
        return self._emitable(force=all(self._closed))


class CrossJoinOperator(Operator):
    """Cartesian product with a small right side (scalar subqueries).

    With a REPLACE right input ("live" mode) the operator accumulates the
    left side and re-emits the full product whenever either side updates;
    with a DELTA right input the right side is buffered to EOF and left
    messages then stream through.
    """

    n_inputs = 2

    def __init__(self, name: str, suffix: str = "_right") -> None:
        super().__init__(name)
        self.suffix = suffix
        self._live = False
        self._left_parts: list[DataFrame] = []
        self._left_snapshot: DataFrame | None = None
        self._right_parts: list[DataFrame] = []
        self._right_frame: DataFrame | None = None
        self._right_ready = False
        self._probe_buffer: list[Message] = []

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        left, right = inputs
        fields = list(left.schema.fields)
        taken = set(left.schema.names)
        self._rename: dict[str, str] = {}
        for f in right.schema:
            out = f.name if f.name not in taken else f.name + self.suffix
            if out in taken:
                raise QueryError(
                    f"cross join {self.name!r}: column {out!r} collides"
                )
            self._rename[f.name] = out
            taken.add(out)
            kind = (
                AttributeKind.MUTABLE
                if right.delivery == Delivery.REPLACE
                else f.kind
            )
            fields.append(Field(out, f.dtype, kind))
        self._live = right.delivery == Delivery.REPLACE
        delivery = (
            Delivery.REPLACE if self._live else left.delivery
        )
        return StreamInfo(
            schema=Schema(fields),
            primary_key=(),
            clustering_key=(),
            delivery=delivery,
        )

    def _product(self, left: DataFrame, right: DataFrame) -> DataFrame:
        n, m = left.n_rows, right.n_rows
        data: dict[str, np.ndarray] = {}
        for name in left.column_names:
            data[name] = np.repeat(left.column(name), m)
        for name in right.column_names:
            data[self._rename[name]] = np.tile(right.column(name), n)
        return DataFrame(data, schema=self.output_info.schema)

    def _left_frame(self) -> DataFrame:
        if self._left_snapshot is not None:
            return self._left_snapshot
        if self._left_parts:
            return DataFrame.concat(self._left_parts)
        return DataFrame.empty(self.input_infos[0].schema)

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        if port == 1:
            if self._live:
                self._right_frame = message.frame
                left = self._left_frame()
                if left.n_rows == 0:
                    return []
                return [
                    Message(
                        frame=self._product(left, message.frame),
                        progress=self.progress,
                        kind=Delivery.REPLACE,
                    )
                ]
            if message.kind == Delivery.REPLACE:
                self._right_frame = message.frame
                self._right_parts = []
            else:
                # Buffer DELTA parts; materialized once at the right EOF.
                self._right_parts.append(message.frame)
            return []

        # port 0 (left)
        if message.kind == Delivery.REPLACE:
            self._left_snapshot = message.frame
            self._left_parts = []
        else:
            self._left_parts.append(message.frame)
        if self._live:
            if self._right_frame is None:
                return []
            return [
                Message(
                    frame=self._product(self._left_frame(),
                                        self._right_frame),
                    progress=self.progress,
                    kind=Delivery.REPLACE,
                )
            ]
        if not self._right_ready:
            self._probe_buffer.append(message)
            return []
        return self._stream_left(message)

    def _stream_left(self, message: Message) -> list[Message]:
        right = self._right_frame
        if right is None:
            right = DataFrame.empty(self.input_infos[1].schema)
        return [
            Message(
                frame=self._product(message.frame, right),
                progress=message.progress.merged(self.progress),
                kind=message.kind,
            )
        ]

    def _handle_eof(self, port: int) -> list[Message]:
        if port != 1 or self._live:
            return []
        if self._right_parts:
            parts = ([] if self._right_frame is None
                     else [self._right_frame])
            self._right_frame = DataFrame.concat(parts + self._right_parts)
            self._right_parts = []
        self._right_ready = True
        out: list[Message] = []
        for message in self._probe_buffer:
            out.extend(self._stream_left(message))
        self._probe_buffer = []
        return out
