"""Operator base classes: the node logic of the execution graph (§7).

An operator is bound once at plan time (``bind``), deriving its output
:class:`StreamInfo` from its inputs' — schema, keys, clustering, delivery.
At run time the executor feeds it messages (``on_message``) and EOF markers
(``on_eof``); the operator returns output messages.  Operators are
single-threaded: each lives on one node and is never called concurrently.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ExecutionError, QueryError
from repro.core.properties import Progress, StreamInfo
from repro.engine.message import Message


class Operator:
    """Base operator; subclasses implement ``_derive_info`` and
    ``_handle_message`` (plus optionally the EOF hooks)."""

    #: number of input ports (0 for sources)
    n_inputs: int = 1

    def __init__(self, name: str) -> None:
        self.name = name
        self._input_infos: tuple[StreamInfo, ...] | None = None
        self._output_info: StreamInfo | None = None
        self._progress = Progress()
        self._eof_ports: set[int] = set()

    # -- plan time ---------------------------------------------------------------
    def bind(self, input_infos: Sequence[StreamInfo]) -> StreamInfo:
        """Fix input stream descriptions and derive the output description."""
        if len(input_infos) != self.n_inputs:
            raise QueryError(
                f"operator {self.name!r} expects {self.n_inputs} inputs, "
                f"got {len(input_infos)}"
            )
        self._input_infos = tuple(input_infos)
        self._output_info = self._derive_info(self._input_infos)
        return self._output_info

    def _derive_info(
        self, inputs: tuple[StreamInfo, ...]
    ) -> StreamInfo:
        raise NotImplementedError

    @property
    def input_infos(self) -> tuple[StreamInfo, ...]:
        if self._input_infos is None:
            raise ExecutionError(f"operator {self.name!r} is not bound")
        return self._input_infos

    @property
    def output_info(self) -> StreamInfo:
        if self._output_info is None:
            raise ExecutionError(f"operator {self.name!r} is not bound")
        return self._output_info

    # -- run time -----------------------------------------------------------------
    @property
    def progress(self) -> Progress:
        """Merged progress across everything seen on all inputs."""
        return self._progress

    def on_message(self, port: int, message: Message) -> list[Message]:
        if not 0 <= port < self.n_inputs:
            raise ExecutionError(
                f"operator {self.name!r} got message on invalid port {port}"
            )
        if port in self._eof_ports:
            raise ExecutionError(
                f"operator {self.name!r} got message on closed port {port}"
            )
        self._progress = self._progress.merged(message.progress)
        return self._handle_message(port, message)

    def on_eof(self, port: int) -> list[Message]:
        """Mark a port closed; returns any flush messages.

        Subclasses override ``_handle_eof`` (per-port) and
        ``_final_flush`` (all ports closed).
        """
        if port in self._eof_ports:
            raise ExecutionError(
                f"operator {self.name!r} got duplicate EOF on port {port}"
            )
        self._eof_ports.add(port)
        out = self._handle_eof(port)
        if self.eof_complete:
            out = out + self._final_flush()
        return out

    @property
    def eof_complete(self) -> bool:
        return len(self._eof_ports) == self.n_inputs

    # -- subclass hooks -----------------------------------------------------------
    def _handle_message(self, port: int, message: Message) -> list[Message]:
        raise NotImplementedError

    def _handle_eof(self, port: int) -> list[Message]:
        return []

    def _final_flush(self) -> list[Message]:
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class SourceOperator(Operator):
    """A 0-input operator that produces its own message stream."""

    n_inputs = 0

    def stream(self):
        """Yield :class:`Message` objects; the executor appends EOF."""
        raise NotImplementedError

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        raise ExecutionError(f"source {self.name!r} cannot receive messages")

    def bind_source(self) -> StreamInfo:
        """Sources bind with no inputs."""
        return self.bind(())
