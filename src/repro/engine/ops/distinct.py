"""Distinct operator.

With DELTA input the operator is incremental (Case 1-like): it remembers
the keys already emitted and forwards only never-seen rows, keeping the
stream a DELTA stream.  With REPLACE input each snapshot is deduplicated
wholesale.

The seen-set is a persistent :class:`~repro.dataframe.groupby.Grouper`:
each partial is slot-encoded against the accumulated key index in
O(|partial| + new keys), and rows whose slot was handed out by this very
message are the never-seen ones.  (The previous implementation re-encoded
the entire seen history through ``shared_codes`` — a full ``np.unique``
over all consumed keys — and re-concatenated the seen frame on every
message: O(total-consumed) per message, violating the ROADMAP cost
model.)  NaN keys collapse to one group, exactly like the one-shot
``distinct_rows`` path (``np.unique`` with ``equal_nan``).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import QueryError
from repro.dataframe.groupby import Grouper, distinct_rows
from repro.core.properties import Delivery, StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import Operator


class DistinctOperator(Operator):
    """Deduplicate rows on ``subset`` columns (all columns if empty)."""

    def __init__(self, name: str, subset: Sequence[str] = ()) -> None:
        super().__init__(name)
        self.subset = tuple(subset)
        self._seen: Grouper | None = None
        self._incremental = False

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        (info,) = inputs
        keys = self.subset or info.schema.names
        for key in keys:
            if key not in info.schema:
                raise QueryError(
                    f"distinct {self.name!r}: unknown column {key!r}"
                )
        self._keys = tuple(keys)
        self._incremental = info.delivery == Delivery.DELTA
        self._seen = None
        return StreamInfo(
            schema=info.schema,
            primary_key=self._keys,
            clustering_key=info.clustering_key,
            delivery=info.delivery,
        )

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        if not self._incremental or message.kind == Delivery.REPLACE:
            return [
                message.replaced_frame(
                    distinct_rows(message.frame, self._keys)
                )
            ]
        fresh = distinct_rows(message.frame, self._keys)
        if fresh.n_rows:
            if self._seen is None:
                self._seen = Grouper(self._keys)
            before = self._seen.n_groups
            slots = self._seen.encode(fresh)
            # fresh is key-deduplicated, so a slot >= before marks the
            # first-ever occurrence of that key across the stream.
            fresh = fresh.mask(slots >= before)
        return [message.replaced_frame(fresh)]
