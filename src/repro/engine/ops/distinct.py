"""Distinct operator.

With DELTA input the operator is incremental (Case 1-like): it remembers
the keys already emitted and forwards only never-seen rows, keeping the
stream a DELTA stream.  With REPLACE input each snapshot is deduplicated
wholesale.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import QueryError
from repro.dataframe.frame import DataFrame
from repro.dataframe.groupby import distinct_rows
from repro.dataframe.join import anti_join_mask, shared_codes
from repro.core.properties import Delivery, StreamInfo
from repro.engine.message import Message
from repro.engine.ops.base import Operator


class DistinctOperator(Operator):
    """Deduplicate rows on ``subset`` columns (all columns if empty)."""

    def __init__(self, name: str, subset: Sequence[str] = ()) -> None:
        super().__init__(name)
        self.subset = tuple(subset)
        self._seen: DataFrame | None = None
        self._incremental = False

    def _derive_info(self, inputs: tuple[StreamInfo, ...]) -> StreamInfo:
        (info,) = inputs
        keys = self.subset or info.schema.names
        for key in keys:
            if key not in info.schema:
                raise QueryError(
                    f"distinct {self.name!r}: unknown column {key!r}"
                )
        self._keys = tuple(keys)
        self._incremental = info.delivery == Delivery.DELTA
        return StreamInfo(
            schema=info.schema,
            primary_key=self._keys,
            clustering_key=info.clustering_key,
            delivery=info.delivery,
        )

    def _handle_message(self, port: int, message: Message) -> list[Message]:
        if not self._incremental or message.kind == Delivery.REPLACE:
            return [
                message.replaced_frame(
                    distinct_rows(message.frame, self._keys)
                )
            ]
        fresh = distinct_rows(message.frame, self._keys)
        if self._seen is not None and fresh.n_rows:
            left_codes, right_codes = shared_codes(
                [fresh.column(k) for k in self._keys],
                [self._seen.column(k) for k in self._keys],
            )
            fresh = fresh.mask(anti_join_mask(left_codes, right_codes))
        if fresh.n_rows:
            key_frame = fresh.select(list(self._keys))
            self._seen = (
                key_frame if self._seen is None
                else DataFrame.concat([self._seen, key_frame])
            )
        return [message.replaced_frame(fresh)]
