"""Algebraic plan-rewrite engine: composable optimizer rules.

The planner used to be two hard-coded passes (``pushdown_plan`` +
``shard_plan``) welded together; every new rewrite meant more bespoke
graph surgery.  This module re-expresses planning as a small fixed-point
rule engine over the :class:`~repro.engine.graph.QueryGraph` algebra —
the shape dask-expr's ``.simplify()`` converges on, and the property the
paper's deep-OLA engine assumes (§4: logical plans can be freely
restructured without changing snapshot semantics).

Two rule tiers:

* **Logical rules** run to a fixed point (each pass re-applies every
  rule until none rewrites anything): :class:`CombineFilters`,
  :class:`AggregateProjectionPrune`, :class:`CommonSubplanElimination`.
  Each is individually idempotent and byte-parity preserving — an
  optimized plan's snapshot sequence is byte-identical to the
  unoptimized plan's (the engine's parity contract, enforced over all
  22 TPC-H queries by ``tests/tpch/test_optimizer_parity.py``).
* **Physical rules** run exactly once, after the logical fixed point:
  :class:`ProjectionPushdown` and :class:`PredicatePushdown` (the former
  ``pushdown_plan`` passes) and :class:`ExchangeRewrite` (the former
  ``shard_plan``).  They are one-shot because they are not idempotent
  under re-application (re-sharding a sharded plan would shard the
  replicas).

Every rule reports how many nodes it rewrote into an
:class:`OptimizerTrace`, which ``explain`` renders together with the
canonical :func:`~repro.engine.plan_node.plan_hash` of the optimized
plan.

Cost model (see ROADMAP performance notes): the optimizer runs once per
submit, never during execution.  Each fixed-point pass is O(nodes ·
rules); the loop converges in a handful of passes because every logical
rewrite strictly shrinks the plan or canonicalizes an ordering, so total
planning cost is O(nodes · rules · passes) with passes ≤ ~3 in practice
(guarded < 5 ms per TPC-H plan by ``benchmarks/bench_optimizer.py``).

Byte-parity arguments, per logical rule:

* ``combine-filters`` — two stacked filters keep exactly the rows whose
  conjunction of masks is true; ``np.logical_and`` over boolean masks is
  exact, commutative, and associative, so one filter evaluating the
  combined (re-ordered) conjunction emits the same rows in the same
  order, one message per input message, just like the chain head did.
* ``aggregate-projection`` — an aggregate reads only its group keys and
  spec columns; dropping other select outputs cannot change any state
  the aggregate accumulates, and ``clustered_on`` (clustering ⊆ keys)
  is decided by columns that are all kept, so ``local_mode`` and the
  message cadence are unchanged.
* ``common-subplan`` — merging structurally identical single-input
  subtrees is gated on an *event-order proof*: the duplicates must share
  the same input node, sit consecutively in that input's subscriber
  list, and their consumer edges must concatenate in global (consumer,
  port) order.  Under the FIFO breadth-first executor those conditions
  make the merged node's fan-out events literally the same queue
  sequence the separate nodes produced, so every downstream operator
  sees the same messages in the same order.  Groups failing the check
  are left alone (they may merge on a later pass once other rewrites
  make them adjacent).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.errors import PlanValidationError, QueryError, ReproError
from repro.dataframe.expr import (
    BinaryExpr,
    CaseExpr,
    Column,
    Expr,
    IsInExpr,
    Literal,
    StringExpr,
    SubstrExpr,
    UnaryExpr,
    YearExpr,
)
from repro.engine.graph import QueryGraph
from repro.engine.ops import (
    AggregateOperator,
    DistinctOperator,
    FilterOperator,
    SelectOperator,
    SortLimitOperator,
    UnionOperator,
)
from repro.engine.planner import (
    projection_pass,
    pruning_pass,
    shard_plan,
)
from repro.engine.plan_node import (
    duplicate_groups,
    flatten_conjuncts,
    plan_hash,
)

#: Names of every rule the default optimizer knows, in application order.
LOGICAL_RULE_NAMES = (
    "combine-filters",
    "aggregate-projection",
    "common-subplan",
)
PHYSICAL_RULE_NAMES = (
    "predicate-pushdown",
    "projection-pushdown",
    "exchange",
)
RULE_NAMES = LOGICAL_RULE_NAMES + PHYSICAL_RULE_NAMES

_MAX_PASSES = 10


# ---------------------------------------------------------------------------
# Trace
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RuleFiring:
    """One rule application that rewrote something."""

    rule: str
    rewrites: int


@dataclass(frozen=True)
class RewriteCheck:
    """Soundness verdict for one rule firing: did the rewritten plan keep
    the inferred output schema, delivery, and strict-digest-visible
    source set of the plan it replaced?"""

    rule: str
    ok: bool
    detail: str = ""


class OptimizerTrace:
    """What the optimizer did to one submitted plan."""

    def __init__(self) -> None:
        self.firings: list[RuleFiring] = []
        self.checks: list[RewriteCheck] = []
        self.passes = 0
        self.plan_hash: str | None = None

    def record(self, rule: str, rewrites: int) -> None:
        if rewrites:
            self.firings.append(RuleFiring(rule, rewrites))

    def record_check(self, check: RewriteCheck) -> None:
        self.checks.append(check)

    @property
    def rewrites_sound(self) -> bool:
        """True when every checked firing preserved the plan invariants
        (vacuously true when nothing fired or checking was off)."""
        return all(c.ok for c in self.checks)

    @property
    def total_rewrites(self) -> int:
        return sum(f.rewrites for f in self.firings)

    def by_rule(self) -> dict[str, int]:
        """Total nodes rewritten per rule, in first-fired order."""
        totals: dict[str, int] = {}
        for firing in self.firings:
            totals[firing.rule] = totals.get(firing.rule, 0) \
                + firing.rewrites
        return totals

    def render(self) -> list[str]:
        """Human-readable lines for ``explain``."""
        lines = [
            f"optimizer: {self.passes} pass(es), "
            f"plan hash={self.plan_hash}"
        ]
        totals = self.by_rule()
        if not totals:
            lines.append("  (no rewrites)")
        for rule, rewrites in totals.items():
            lines.append(f"  {rule}: {rewrites} node(s) rewritten")
        if self.checks:
            sound = sum(1 for c in self.checks if c.ok)
            lines.append(
                f"  rewrite checks: {sound}/{len(self.checks)} sound"
            )
            for check in self.checks:
                if not check.ok:
                    lines.append(
                        f"    UNSOUND {check.rule}: {check.detail}"
                    )
        return lines


# ---------------------------------------------------------------------------
# Graph rebuilding
# ---------------------------------------------------------------------------

def _resolve_skip(skip: dict[int, int], nid: int) -> int:
    while nid in skip:
        nid = skip[nid]
    return nid


def _rebuild(
    graph: QueryGraph,
    output: int,
    skip: dict[int, int],
    replace: dict[int, object],
) -> tuple[QueryGraph, int]:
    """Rebuild the graph, dropping ``skip`` nodes (each forwards to an
    earlier node id) and swapping ``replace`` operators in place.
    Relative node order — hence subscriber and scheduling order — is
    preserved."""
    new = QueryGraph()
    mapping: dict[int, int] = {}
    for nid in sorted(graph.nodes):
        if nid in skip:
            continue
        node = graph.node(nid)
        operator = replace.get(nid, node.operator)
        inputs = tuple(
            mapping[_resolve_skip(skip, i)] for i in node.inputs
        )
        mapping[nid] = new.add(operator, inputs)
    return new, mapping[_resolve_skip(skip, output)]


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class Rule:
    """One rewrite: ``apply`` returns the (possibly new) graph, the new
    output id, and how many nodes it rewrote (0 = fixed point)."""

    name = "?"

    def apply(
        self, graph: QueryGraph, output: int
    ) -> tuple[QueryGraph, int, int]:
        raise NotImplementedError


def _conjunct_rank(expr: Expr) -> int:
    """Evaluation-cost rank for conjunct ordering: sargable bare-column
    comparisons first (cheapest, and the shapes zone maps can use), then
    other numeric predicates, then string predicates (per-row unicode
    work) last."""
    if _has_string_work(expr):
        return 2
    if _is_sargable_shape(expr):
        return 0
    return 1


def _is_sargable_shape(expr: Expr) -> bool:
    if isinstance(expr, BinaryExpr) and expr.symbol in (
        "<", "<=", ">", ">=", "=="
    ):
        sides = (expr.left, expr.right)
        return any(isinstance(s, Column) for s in sides) and any(
            isinstance(s, Literal) for s in sides
        )
    return False


def _has_string_work(expr: Expr) -> bool:
    if isinstance(expr, (StringExpr, SubstrExpr)):
        return True
    if isinstance(expr, BinaryExpr):
        return _has_string_work(expr.left) or _has_string_work(expr.right)
    if isinstance(expr, (UnaryExpr, YearExpr, IsInExpr)):
        return _has_string_work(expr.inner)
    if isinstance(expr, CaseExpr):
        return (
            _has_string_work(expr.cond)
            or _has_string_work(expr.then)
            or _has_string_work(expr.otherwise)
        )
    return False


def _conjoin(conjuncts: list[Expr]) -> Expr:
    pred = conjuncts[0]
    for term in conjuncts[1:]:
        pred = BinaryExpr(pred, term, np.logical_and, "&")
    return pred


class CombineFilters(Rule):
    """Collapse single-subscriber filter chains into one filter and
    order the conjuncts cheapest-sargable first.

    Mask conjunction over booleans is exact and commutative, so the
    combined filter keeps identical rows in identical order and emits
    one message per input message exactly as the chain head did —
    byte-identical sequences, fewer frame copies, and the sargable
    conjuncts run first so later, costlier conjuncts see short-circuit
    benefit in evaluation cost (not semantics).
    """

    name = "combine-filters"

    def apply(self, graph, output):
        subs = graph.subscribers()
        skip: dict[int, int] = {}
        replace: dict[int, object] = {}
        rewrites = 0
        for nid in sorted(graph.nodes):
            node = graph.node(nid)
            op = node.operator
            if not isinstance(op, FilterOperator):
                continue
            # Only chain heads rewrite; an absorbed filter is one whose
            # single subscriber is another filter.
            if len(subs[nid]) == 1:
                consumer, _port = subs[nid][0]
                if isinstance(
                    graph.node(consumer).operator, FilterOperator
                ):
                    continue
            chain: list[int] = []
            cur = node.inputs[0]
            while True:
                upstream = graph.node(cur)
                if not isinstance(upstream.operator, FilterOperator):
                    break
                if len(subs[cur]) != 1:
                    break
                chain.append(cur)
                cur = upstream.inputs[0]
            conjuncts: list[Expr] = []
            for cid in reversed(chain):  # outermost-upstream first
                conjuncts.extend(
                    flatten_conjuncts(graph.node(cid).operator.predicate)
                )
            conjuncts.extend(flatten_conjuncts(op.predicate))
            ordered = sorted(conjuncts, key=_conjunct_rank)
            # Expr overloads ==, so compare object identity per slot.
            reordered = [id(e) for e in ordered] != [
                id(e) for e in conjuncts
            ]
            if not chain and not reordered:
                continue
            for cid in chain:
                skip[cid] = graph.node(cid).inputs[0]
            replace[nid] = FilterOperator(op.name, _conjoin(ordered))
            rewrites += len(chain) + (1 if reordered else 0)
        if not rewrites:
            return graph, output, 0
        graph, output = _rebuild(graph, output, skip, replace)
        return graph, output, rewrites


class AggregateProjectionPrune(Rule):
    """Drop select outputs nothing downstream of an aggregate can read.

    When an aggregate is the sole consumer of a select, every output
    except the group keys and spec columns is computed and thrown away.
    Pruning them cannot change aggregate state, and ``local_mode``
    (clustering ⊆ group keys) is decided by columns that are all kept,
    so cadence and content are untouched.  Selects with
    ``propagate_ci`` are left alone (their sigma side-channel is not
    visible in ``exprs``).
    """

    name = "aggregate-projection"

    def apply(self, graph, output):
        subs = graph.subscribers()
        replace: dict[int, object] = {}
        rewrites = 0
        for nid in sorted(graph.nodes):
            op = graph.node(nid).operator
            if not isinstance(op, AggregateOperator):
                continue
            sid = graph.node(nid).inputs[0]
            if sid in replace or len(subs[sid]) != 1:
                continue
            sop = graph.node(sid).operator
            if not isinstance(sop, SelectOperator) or sop.propagate_ci:
                continue
            needed = set(op.by) | {
                spec.column for spec in op.specs
                if spec.column is not None
            }
            kept = [(name, e) for name, e in sop.exprs if name in needed]
            if len(kept) == len(sop.exprs):
                continue
            if not kept:
                # Count-style aggregates read no columns; keep one output
                # so the frame keeps its row count.
                kept = [sop.exprs[0]]
            replace[sid] = SelectOperator(
                sop.name, kept, propagate_ci=False
            )
            rewrites += 1
        if not rewrites:
            return graph, output, 0
        graph, output = _rebuild(graph, output, {}, replace)
        return graph, output, rewrites


#: Operator types CSE may merge: single-input, deterministic, and
#: message-per-message (their event interleaving is what the order proof
#: below reasons about).  Sources are excluded (progress counters are
#: per-source), exchanges are excluded (siblings share a hash cache with
#: a reads-remaining count), MapPartitions is excluded (arbitrary
#: callables may be stateful).
_CSE_TYPES = (
    FilterOperator,
    SelectOperator,
    DistinctOperator,
    SortLimitOperator,
    AggregateOperator,
)


class CommonSubplanElimination(Rule):
    """Merge structurally identical subtrees into one operator with
    fan-out.

    A duplicate group merges only when doing so provably preserves the
    executor's FIFO event order (see module docstring): same input node,
    consecutive in the input's subscriber list, and consumer edges that
    concatenate already-sorted.  Everything else is left for a later
    pass or not merged at all — correctness first, savings second.
    """

    name = "common-subplan"

    def apply(self, graph, output):
        groups = duplicate_groups(graph, _CSE_TYPES)
        if not groups:
            return graph, output, 0
        subs = graph.subscribers()
        skip: dict[int, int] = {}
        rewrites = 0
        for ids in sorted(groups.values()):
            candidates = [i for i in ids if i != output]
            # Partition by exact input node ids: digests prove the input
            # *subtrees* match, merging needs the very same node.
            by_inputs: dict[tuple[int, ...], list[int]] = {}
            for nid in candidates:
                by_inputs.setdefault(
                    graph.node(nid).inputs, []
                ).append(nid)
            for inputs, members in sorted(by_inputs.items()):
                if len(members) < 2 or not inputs:
                    continue
                if not self._order_preserved(subs, inputs[0], members):
                    continue
                rep = members[0]
                for dup in members[1:]:
                    skip[dup] = rep
                    rewrites += 1
        if not rewrites:
            return graph, output, 0
        graph, output = _rebuild(graph, output, skip, {})
        return graph, output, rewrites

    @staticmethod
    def _order_preserved(subs, input_id, members):
        """True when merging ``members`` (ascending ids, all single-input
        consumers of ``input_id``) cannot change the executor's event
        sequence."""
        # (1) Consecutive in the input's subscriber list: the separate
        # (node, msg) events were adjacent in the FIFO queue, so their
        # emissions landed back-to-back — exactly what the merged node's
        # single emission produces.
        member_set = set(members)
        positions = [
            i for i, (cid, _p) in enumerate(subs[input_id])
            if cid in member_set
        ]
        if len(positions) != len(members):
            return False
        if positions != list(range(positions[0], positions[-1] + 1)):
            return False
        # (2) The merged node fans out to all consumers in (consumer,
        # port) order; that must equal the concatenation of the members'
        # own consumer lists (rep's consumers first, then each dup's).
        concatenated = [
            edge for member in members for edge in subs[member]
        ]
        return concatenated == sorted(concatenated)


class PredicatePushdown(Rule):
    """Thread sargable filter conjuncts into the scans for zone-map
    partition pruning (the former ``pushdown_plan`` pruning half)."""

    name = "predicate-pushdown"

    def apply(self, graph, output):
        return graph, output, pruning_pass(graph, output)


class ProjectionPushdown(Rule):
    """Narrow scans to downstream-referenced columns (the former
    ``pushdown_plan`` projection half)."""

    name = "projection-pushdown"

    def apply(self, graph, output):
        return graph, output, projection_pass(graph, output)


class ExchangeRewrite(Rule):
    """K-way shard rewrite of shuffle aggregates and aligned join chains
    (the former ``shard_plan``).  One-shot: re-running would shard the
    replicas."""

    name = "exchange"

    def __init__(self, parallelism: int) -> None:
        self.parallelism = parallelism

    def apply(self, graph, output):
        before = sum(
            1 for n in graph.nodes.values()
            if isinstance(n.operator, UnionOperator)
        )
        graph, output = shard_plan(graph, output, self.parallelism)
        after = sum(
            1 for n in graph.nodes.values()
            if isinstance(n.operator, UnionOperator)
        )
        return graph, output, after - before


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def _strict_rewrite_env() -> bool:
    """True when ``REPRO_CHECK_REWRITES`` asks for hard failure on
    rewrite drift (the CI mode)."""
    return os.environ.get("REPRO_CHECK_REWRITES", "") not in ("", "0")


class Optimizer:
    """Run logical rules to a fixed point, then physical rules once.

    Every firing is followed by a rewrite-soundness check: the rewritten
    plan's statically inferred output schema (names + dtypes), delivery,
    and strict-digest-visible source set must equal the pre-rewrite
    plan's (see :mod:`repro.analysis.schema_check`).  Verdicts land in
    :attr:`OptimizerTrace.checks`; with ``strict`` (or the
    ``REPRO_CHECK_REWRITES`` environment variable) set, drift raises
    :class:`PlanValidationError` instead of merely being recorded.
    Plans whose output schema cannot be inferred (unknown operator
    types) skip checking rather than guessing.
    """

    def __init__(
        self,
        logical: list[Rule],
        physical: list[Rule],
        max_passes: int = _MAX_PASSES,
        strict: bool | None = None,
    ) -> None:
        self.logical = logical
        self.physical = physical
        self.max_passes = max_passes
        self.strict = _strict_rewrite_env() if strict is None else strict

    def optimize(
        self, graph: QueryGraph, output: int
    ) -> tuple[QueryGraph, int, OptimizerTrace]:
        trace = OptimizerTrace()
        expected = self._fingerprint(graph, output)
        if self.logical:
            for _ in range(self.max_passes):
                trace.passes += 1
                changed = 0
                for rule in self.logical:
                    graph, output, rewrites = rule.apply(graph, output)
                    trace.record(rule.name, rewrites)
                    if rewrites:
                        self._check(
                            trace, rule.name, expected, graph, output
                        )
                    changed += rewrites
                if not changed:
                    break
        for rule in self.physical:
            graph, output, rewrites = rule.apply(graph, output)
            trace.record(rule.name, rewrites)
            if rewrites:
                self._check(trace, rule.name, expected, graph, output)
        trace.plan_hash = plan_hash(graph, output)
        return graph, output, trace

    @staticmethod
    def _fingerprint(graph: QueryGraph, output: int):
        # Imported here: repro.analysis imports repro.engine.ops, so a
        # module-level import would tie this module's load order to the
        # whole analysis package; deferring keeps the engine importable
        # on its own.
        from repro.analysis.schema_check import plan_fingerprint

        try:
            return plan_fingerprint(graph, output)
        except ReproError:
            # A plan the checker itself rejects (or cannot infer) is not
            # checkable; submit-time validation owns that failure.
            return None

    def _check(
        self,
        trace: OptimizerTrace,
        rule: str,
        expected,
        graph: QueryGraph,
        output: int,
    ) -> None:
        if expected is None:
            return
        try:
            got = self._fingerprint(graph, output)
            detail = "" if got == expected else (
                f"plan invariant drifted: expected {expected!r}, "
                f"got {got!r}"
            )
        except ReproError as exc:  # pragma: no cover - defensive
            got, detail = None, f"rewritten plan fails inference: {exc}"
        ok = not detail
        trace.record_check(RewriteCheck(rule, ok, detail))
        if not ok and self.strict:
            raise PlanValidationError(
                "unsound-rewrite",
                f"optimizer rule {rule!r} produced an unsound rewrite: "
                f"{detail}",
                operator=rule,
            )


def validate_rule_names(names) -> frozenset[str]:
    """Normalize and validate a user-supplied rule-name collection."""
    names = frozenset(names)
    unknown = names - set(RULE_NAMES)
    if unknown:
        raise QueryError(
            f"unknown optimizer rule(s) {sorted(unknown)}; known rules: "
            f"{list(RULE_NAMES)}"
        )
    return names


def build_optimizer(
    parallelism: int = 1,
    pushdown: bool = True,
    optimize: bool = True,
    disable=(),
) -> Optimizer:
    """The default rule stack, honoring every escape hatch.

    ``optimize=False`` turns off every optimization rule; the exchange
    rewrite still honors an *explicit* ``parallelism`` > 1 (a resource
    request, not an optimization — disable it with ``parallelism=1`` or
    ``disable={"exchange"}``).  ``pushdown=False`` is the historical
    scan-pushdown switch (projection + pruning only).  ``disable``
    removes individual rules by name.
    """
    off = set(validate_rule_names(disable))
    if not optimize:
        off |= set(LOGICAL_RULE_NAMES)
        off |= {"predicate-pushdown", "projection-pushdown"}
    if not pushdown:
        off |= {"predicate-pushdown", "projection-pushdown"}
    logical: list[Rule] = [
        rule
        for rule in (
            CombineFilters(),
            AggregateProjectionPrune(),
            CommonSubplanElimination(),
        )
        if rule.name not in off
    ]
    physical: list[Rule] = [
        rule
        for rule in (PredicatePushdown(), ProjectionPushdown())
        if rule.name not in off
    ]
    if parallelism > 1 and "exchange" not in off:
        physical.append(ExchangeRewrite(parallelism))
    return Optimizer(logical, physical)
