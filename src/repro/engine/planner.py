"""Plan rewriting: scan pushdowns and sharded data parallelism.

``pushdown_plan`` runs first (before any shard rewrite): it walks the
graph from the output back to the sources collecting, per
:class:`ReadOperator`, (1) the set of columns any downstream operator can
ever reference — threaded into the scan as a *projection* so npz
partitions decompress only the needed arrays — and (2) the sargable
conjuncts of downstream single-subscriber filters, evaluated against the
catalog's per-partition zone maps to *skip* partitions entirely
(predicate pushdown; see :mod:`repro.storage.zonemap`).  Both pushdowns
are semantically invisible: projection only removes columns nothing
reads, and a pruned partition still advances progress by its tuple count
via an empty partial, so snapshot cadence, growth-inference ``t``, and
exact finals are byte-identical to the unpushed plan.

``shard_plan`` rewrites a resolved (already pushed-down)
:class:`QueryGraph` so that stateful shuffle subplans run as K parallel
replicas, each owning a disjoint hash range of the keys:

* A shuffle-mode grouped :class:`AggregateOperator` becomes K exchange
  ports on its group keys feeding K aggregate replicas, combined by a
  :class:`UnionOperator` that key-sorts the concatenated REPLACE
  snapshots.  Because a group's rows are masked — never re-batched — the
  per-shard accumulation sequence is bit-identical to the unsharded
  operator's, so exact final frames are byte-identical.
* When the aggregate's input chain (single-subscriber Filter/Select
  nodes) bottoms out at a single-subscriber :class:`HashJoinOperator`
  whose join keys align with the group keys (some ``left_on`` column is
  — possibly through bare-column renames — one of the group keys), the
  *whole* join→…→aggregate subplan is replicated instead: both join
  inputs are exchanged on the aligned key pair, so each replica joins
  and aggregates only its shard.  Rows with equal full join keys share
  the aligned sub-key, hence the shard, so inner/left/semi/anti match
  sets are preserved per shard.

Under the threaded executor every replica node is its own thread with
bounded channels, so throughput scales with cores instead of pipeline
depth alone.  ``parallelism <= 1`` returns the graph untouched — plans
and snapshot sequences stay byte-identical to the unsharded engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.dataframe.expr import Column
from repro.engine.graph import QueryGraph
from repro.engine.ops import (
    AggregateOperator,
    CrossJoinOperator,
    DistinctOperator,
    ExchangeOperator,
    FilterOperator,
    HashJoinOperator,
    MergeJoinOperator,
    ReadOperator,
    SelectOperator,
    SortLimitOperator,
    UnionOperator,
)
from repro.engine.ops.base import Operator
from repro.engine.ops.exchange import ShardHashCache
from repro.storage.zonemap import SargablePredicate

#: Row-local operators a fused shard chain may pass through (their output
#: for a masked message equals the mask of their output — Case 1 ops).
_CHAIN_TYPES = (FilterOperator, SelectOperator)


@dataclass(frozen=True)
class _ShardGroup:
    """One sharded subplan, headed by its aggregate node."""

    agg_id: int
    #: Chain node ids from the aggregate's input down toward the join.
    chain_ids: tuple[int, ...]
    #: The fused hash join, or None for an exchange directly on the
    #: aggregate input.
    join_id: int | None
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]


def _trace_chain(
    graph: QueryGraph, subs: dict[int, list[tuple[int, int]]], agg_id: int
) -> tuple[list[int], int, set[str]]:
    """Walk from the aggregate's input through single-subscriber
    Filter/Select nodes, tracking which base-side column each group key
    is a bare rename of.  Returns (chain ids top-down, base id, surviving
    key names at the base node's output)."""
    agg = graph.node(agg_id)
    names = set(agg.operator.by)
    chain: list[int] = []
    cur = agg.inputs[0]
    while True:
        node = graph.node(cur)
        op = node.operator
        if not isinstance(op, _CHAIN_TYPES) or len(subs[cur]) != 1:
            break
        if isinstance(op, SelectOperator):
            mapped: set[str] = set()
            for out_name, expr in op.exprs:
                if out_name in names and isinstance(expr, Column):
                    mapped.add(expr.name)
            names = mapped
        chain.append(cur)
        cur = node.inputs[0]
    return chain, cur, names


def _clone(op: Operator, tag: str) -> Operator:
    """A fresh, unbound replica of a shardable operator."""
    name = f"{op.name}{tag}"
    if isinstance(op, AggregateOperator):
        # always_emit: a shard replica must report on every message even
        # while it owns zero groups, so the union can align combined
        # progress to the slowest shard instead of guessing about ports
        # that have never spoken.
        return AggregateOperator(
            name, op.specs, by=op.by, ci=op.ci,
            growth_mode=op.growth_mode, quantile_mode=op.quantile_mode,
            sketch_size=op.sketch_size, always_emit=True,
        )
    if isinstance(op, HashJoinOperator):
        return HashJoinOperator(
            name, op.left_on, op.right_on, how=op.how, suffix=op.suffix
        )
    if isinstance(op, FilterOperator):
        return FilterOperator(name, op.predicate)
    if isinstance(op, SelectOperator):
        return SelectOperator(name, op.exprs, propagate_ci=op.propagate_ci)
    raise QueryError(
        f"cannot replicate operator {op.name!r} for sharding"
    )


def _plan_groups(
    graph: QueryGraph, subs: dict[int, list[tuple[int, int]]]
) -> tuple[dict[int, _ShardGroup], set[int]]:
    """Pick the shardable subplans: shuffle-mode grouped aggregates, each
    optionally fused with the hash join feeding it."""
    groups: dict[int, _ShardGroup] = {}
    claimed: set[int] = set()
    for nid in sorted(graph.nodes):
        op = graph.node(nid).operator
        if not isinstance(op, AggregateOperator):
            continue
        if op.local_mode or not op.by:
            continue
        chain, base_id, names = _trace_chain(graph, subs, nid)
        base_op = graph.node(base_id).operator
        group: _ShardGroup | None = None
        if (
            isinstance(base_op, HashJoinOperator)
            and len(subs[base_id]) == 1
            and base_id not in claimed
        ):
            pairs = [
                (left, right)
                for left, right in zip(base_op.left_on, base_op.right_on)
                if left in names
            ]
            if pairs:
                group = _ShardGroup(
                    agg_id=nid,
                    chain_ids=tuple(chain),
                    join_id=base_id,
                    left_keys=tuple(left for left, _ in pairs),
                    right_keys=tuple(right for _, right in pairs),
                )
                claimed.update(chain)
                claimed.add(base_id)
        if group is None:
            group = _ShardGroup(
                agg_id=nid, chain_ids=(), join_id=None,
                left_keys=op.by, right_keys=(),
            )
        groups[nid] = group
    return groups, claimed


def _add_exchange_fan(
    new: QueryGraph,
    keys: tuple[str, ...],
    src: int,
    parallelism: int,
    label: str,
) -> list[int]:
    """K sibling exchange ports over ``src``, sharing one hash cache."""
    cache = ShardHashCache(keys, parallelism)
    return [
        new.add(
            ExchangeOperator(
                f"exchange[s{shard}/{parallelism}]({label})",
                keys, shard, parallelism, cache=cache,
            ),
            (src,),
        )
        for shard in range(parallelism)
    ]


def _build_group(
    new: QueryGraph,
    graph: QueryGraph,
    infos: dict,
    group: _ShardGroup,
    mapping: dict[int, int],
    parallelism: int,
) -> int:
    agg_node = graph.node(group.agg_id)
    agg_op = agg_node.operator
    shard_tops: list[int] = []
    if group.join_id is None:
        src = mapping[agg_node.inputs[0]]
        ports = _add_exchange_fan(
            new, group.left_keys, src, parallelism, agg_op.name
        )
        for shard, port in enumerate(ports):
            tag = f"[s{shard}/{parallelism}]"
            shard_tops.append(new.add(_clone(agg_op, tag), (port,)))
    else:
        join_node = graph.node(group.join_id)
        join_op = join_node.operator
        probe_ports = _add_exchange_fan(
            new, group.left_keys, mapping[join_node.inputs[0]],
            parallelism, f"{join_op.name}.probe",
        )
        build_ports = _add_exchange_fan(
            new, group.right_keys, mapping[join_node.inputs[1]],
            parallelism, f"{join_op.name}.build",
        )
        chain_ops = [
            graph.node(cid).operator for cid in reversed(group.chain_ids)
        ]
        for shard in range(parallelism):
            tag = f"[s{shard}/{parallelism}]"
            cur = new.add(
                _clone(join_op, tag),
                (probe_ports[shard], build_ports[shard]),
            )
            for chain_op in chain_ops:
                cur = new.add(_clone(chain_op, tag), (cur,))
            shard_tops.append(new.add(_clone(agg_op, tag), (cur,)))
    return new.add(
        UnionOperator(
            f"union({agg_op.name})", len(shard_tops),
            sort_keys=agg_op.by, info=infos[group.agg_id],
        ),
        tuple(shard_tops),
    )


# -- scan pushdowns -----------------------------------------------------------

def _join_output_renames(
    left_names: tuple[str, ...],
    right_names: tuple[str, ...],
    dropped_right: tuple[str, ...],
    suffix: str,
) -> dict[str, str]:
    """Right-input column → output name, mirroring the join assembly rule:
    ``dropped_right`` columns vanish (they duplicate the left keys for
    equi-joins; empty for cross joins), collisions get ``suffix``."""
    taken = set(left_names)
    mapping: dict[str, str] = {}
    for name in right_names:
        if name in dropped_right:
            continue
        out = name if name not in taken else name + suffix
        mapping[name] = out
        taken.add(out)
    return mapping


def _two_sided_required(
    required: set[str] | None,
    left_names: tuple[str, ...],
    right_names: tuple[str, ...],
    left_keys: tuple[str, ...],
    right_keys: tuple[str, ...],
    dropped_right: tuple[str, ...],
    suffix: str,
) -> list[set[str] | None]:
    """Per-side required columns for a binary (join-shaped) operator."""
    if required is None:
        return [None, None]
    renames = _join_output_renames(
        left_names, right_names, dropped_right, suffix
    )
    left_req = (required & set(left_names)) | set(left_keys)
    right_req = {
        name for name, out in renames.items() if out in required
    } | set(right_keys)
    return [left_req, right_req]


#: Per-operator-type column-demand functions.  Each takes
#: ``(op, input_schemas, required)`` and returns the columns each input
#: port must supply (``None`` = everything).  A registry — rather than an
#: isinstance chain — so a *missing* entry is an explicit, visible state
#: that falls back to the conservative default instead of silently
#: hitting the bottom of a chain: new operator types cannot break
#: projection pushdown, they can only fail to benefit from it.
_REQUIRED_INPUTS: dict[type, object] = {}


def register_required_inputs(*op_types: type):
    """Register the column-demand function for one or more operator
    types (see :data:`_REQUIRED_INPUTS`)."""

    def decorate(fn):
        for op_type in op_types:
            _REQUIRED_INPUTS[op_type] = fn
        return fn

    return decorate


def _required_inputs(
    op: Operator,
    input_schemas: tuple,
    required: set[str] | None,
) -> list[set[str] | None]:
    """Columns each input port must supply so that ``op`` can produce the
    ``required`` output columns — a single registry lookup.  Unregistered
    types (MapPartitionsOperator, anything new) get the conservative
    default: every input port may be read in full."""
    fn = _REQUIRED_INPUTS.get(type(op))
    if fn is None:
        return [None] * op.n_inputs
    return fn(op, input_schemas, required)


@register_required_inputs(FilterOperator)
def _req_filter(op, input_schemas, required):
    if required is None:
        return [None]
    return [required | set(op.predicate.columns())]


@register_required_inputs(SelectOperator)
def _req_select(op, input_schemas, required):
    # A select *evaluates* every expression regardless of what is
    # consumed downstream, so its demand is exactly what the
    # expressions reference — it never passes columns through.
    needed: set[str] = set()
    for _out, expr in op.exprs:
        needed |= set(expr.columns())
    return [needed]


@register_required_inputs(AggregateOperator)
def _req_aggregate(op, input_schemas, required):
    needed = set(op.by)
    for spec in op.specs:
        if spec.column is not None:
            needed.add(spec.column)
    return [needed]


@register_required_inputs(SortLimitOperator)
def _req_sort(op, input_schemas, required):
    if required is None:
        return [None]
    return [required | set(op.by)]


@register_required_inputs(DistinctOperator)
def _req_distinct(op, input_schemas, required):
    if required is None:
        return [None]
    # An empty subset means "distinct over all columns".
    return [required | set(op.subset) if op.subset else None]


@register_required_inputs(HashJoinOperator)
def _req_hash_join(op, input_schemas, required):
    left, right = input_schemas
    if op.how in ("semi", "anti"):
        left_req = (
            None if required is None
            else (required & set(left.names)) | set(op.left_on)
        )
        return [left_req, set(op.right_on)]
    return _two_sided_required(
        required, left.names, right.names,
        op.left_on, op.right_on, op.right_on, op.suffix,
    )


@register_required_inputs(MergeJoinOperator)
def _req_merge_join(op, input_schemas, required):
    left, right = input_schemas
    return _two_sided_required(
        required, left.names, right.names,
        (op.left_on,), (op.right_on,), (op.right_on,), op.suffix,
    )


@register_required_inputs(CrossJoinOperator)
def _req_cross_join(op, input_schemas, required):
    left, right = input_schemas
    return _two_sided_required(
        required, left.names, right.names, (), (), (), op.suffix,
    )


@register_required_inputs(ExchangeOperator)
def _req_exchange(op, input_schemas, required):
    if required is None:
        return [None]
    return [required | set(op.keys)]


@register_required_inputs(UnionOperator)
def _req_union(op, input_schemas, required):
    return [required] * op.n_inputs


def _collect_scan_predicates(
    graph: QueryGraph,
    subs: dict[int, list[tuple[int, int]]],
    read_id: int,
) -> list[SargablePredicate]:
    """Sargable conjuncts guarding the scan at ``read_id``.

    Walks the *single-subscriber* chain above the scan through
    Filter/Select nodes.  Every row the scan emits flows through each
    collected filter before anything else observes it, so a partition no
    row of which can satisfy some conjunct contributes nothing
    downstream — skipping it is invisible (except progress, which the
    scan preserves).  Select nodes translate column names through bare
    renames; derived expressions end the translation for their columns.
    """
    read_op = graph.node(read_id).operator
    assert isinstance(read_op, ReadOperator)
    mapping = {name: name for name in read_op.meta.schema.names}
    predicates: list[SargablePredicate] = []
    cur = read_id
    while True:
        edges = subs.get(cur, [])
        if len(edges) != 1:
            break  # fan-out: another consumer sees unfiltered rows
        nxt, _port = edges[0]
        op = graph.node(nxt).operator
        if isinstance(op, FilterOperator):
            for pred in op.sargable():
                base = mapping.get(pred.column)
                if base is not None:
                    predicates.append(pred.renamed(base))
        elif isinstance(op, SelectOperator):
            mapping = {
                out: mapping[expr.name]
                for out, expr in op.exprs
                if isinstance(expr, Column) and expr.name in mapping
            }
            if not mapping:
                break
        else:
            break
        cur = nxt
    return predicates


def projection_pass(graph: QueryGraph, output: int) -> int:
    """Narrow each scan to the columns anything downstream can read.

    Mutates :class:`ReadOperator` instances in place (each execution
    materializes fresh operators, so no plan state leaks across runs)
    and invalidates the graph's cached resolution.  Returns the number
    of scans narrowed.
    """
    graph.validate_output(output)
    infos = graph.resolve()
    subs = graph.subscribers()
    required: dict[int, set[str] | None] = {
        nid: set() for nid in graph.nodes
    }
    required[output] = None
    # Insertion order is topological, so a reverse sweep sees every
    # consumer before its producers.
    for nid in sorted(graph.nodes, reverse=True):
        node = graph.node(nid)
        if nid != output and not subs[nid]:
            required[nid] = None  # dangling node: demand unknown
        reqs = _required_inputs(
            node.operator,
            tuple(infos[i].schema for i in node.inputs),
            required[nid],
        )
        for input_id, req in zip(node.inputs, reqs):
            if req is None:
                required[input_id] = None
            elif required[input_id] is not None:
                required[input_id] |= req

    narrowed = 0
    for nid in graph.source_ids():
        op = graph.node(nid).operator
        if not isinstance(op, ReadOperator):
            continue
        req = required[nid]
        names = set(op.meta.schema.names)
        if req is not None and (req & names) != names:
            wanted = req & names
            if not wanted:
                # Count-style queries reference no columns, but a
                # frame with zero columns has zero rows — keep the
                # cheapest single column to preserve row counts.
                wanted = {
                    op.meta.primary_key[0]
                    if op.meta.primary_key
                    else op.meta.schema.names[0]
                }
            op.set_columns(wanted)
            narrowed += 1
    if narrowed:
        graph.invalidate()
    return narrowed


def pruning_pass(graph: QueryGraph, output: int) -> int:
    """Thread sargable filter conjuncts into each scan for zone-map
    partition pruning.  Returns the number of scans that received
    predicates."""
    graph.validate_output(output)
    graph.resolve()
    subs = graph.subscribers()
    pushed = 0
    for nid in graph.source_ids():
        op = graph.node(nid).operator
        if not isinstance(op, ReadOperator):
            continue
        predicates = _collect_scan_predicates(graph, subs, nid)
        if predicates:
            op.set_predicates(predicates)
            pushed += 1
    if pushed:
        graph.invalidate()
    return pushed


def pushdown_plan(
    graph: QueryGraph,
    output: int,
    projection: bool = True,
    pruning: bool = True,
) -> tuple[QueryGraph, int]:
    """Push projections and sargable predicates into the base scans.

    Back-compat façade over :func:`pruning_pass` + :func:`projection_pass`
    (the optimizer invokes the passes as individual rules).  Must run
    *before* :func:`shard_plan` so the shard rewrite replicates the
    already-narrowed scans.
    """
    if pruning:
        pruning_pass(graph, output)
    if projection:
        projection_pass(graph, output)
    return graph, output


def shard_plan(
    graph: QueryGraph, output: int, parallelism: int
) -> tuple[QueryGraph, int]:
    """Rewrite ``graph`` for K-way sharded execution.

    Returns ``(graph, output)`` unchanged when ``parallelism <= 1`` or
    nothing in the plan is shardable.
    """
    if parallelism <= 1:
        return graph, output
    graph.validate_output(output)
    infos = graph.resolve()
    subs = graph.subscribers()
    groups, claimed = _plan_groups(graph, subs)
    if not groups:
        return graph, output
    new = QueryGraph()
    mapping: dict[int, int] = {}
    for nid in sorted(graph.nodes):
        if nid in claimed:
            continue  # rebuilt inside its group, reachable only from it
        node = graph.node(nid)
        group = groups.get(nid)
        if group is None:
            mapping[nid] = new.add(
                node.operator, tuple(mapping[i] for i in node.inputs)
            )
        else:
            mapping[nid] = _build_group(
                new, graph, infos, group, mapping, parallelism
            )
    return new, mapping[output]
