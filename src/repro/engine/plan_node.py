"""Canonical structural plan forms and stable plan hashing.

The optimizer (``repro.engine.optimizer``) needs two related notions of
"the same plan":

* **strict structural equality** — two nodes compute byte-identical
  message streams when fed the same inputs.  This is what common-subplan
  elimination may merge.  Operator *names* are excluded (they carry a
  per-plan counter), but anything that affects output bytes — select
  output order, aggregate spec order — is kept verbatim.
* **α-equivalence** — a coarser, order-insensitive form used for
  :func:`plan_hash`: commuted conjuncts (``a & b`` vs ``b & a``),
  literal-on-the-left comparisons (``5 < x`` vs ``x > 5``), select
  rename order, and scan source labels are all normalized away.  Two
  α-equivalent plans answer the same query, so the hash is a sound cache
  key for shared-scan / snapshot caching (ROADMAP item 1).

Both are built from one registry of per-operator signature functions
(:func:`register_signature`), mirroring the planner's required-columns
registry: an operator type the registry does not know gets a globally
*unique* opaque signature, so unknown operators can never be merged by
CSE and two plans containing them can never collide to one hash —
conservative by construction.

Canonicalization of expressions is bit-exactness-preserving: only
transforms that cannot change a single output byte are applied (operand
swaps of commutative ufuncs, flattening of associative boolean chains,
comparison flips).  Floating-point *re-association* is never performed.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Sequence

from repro.dataframe.expr import (
    BinaryExpr,
    CaseExpr,
    Column,
    Expr,
    IsInExpr,
    Literal,
    StringExpr,
    SubstrExpr,
    UnaryExpr,
    YearExpr,
)
from repro.engine.graph import QueryGraph
from repro.engine.ops import (
    AggregateOperator,
    CrossJoinOperator,
    DistinctOperator,
    ExchangeOperator,
    FilterOperator,
    HashJoinOperator,
    MapPartitionsOperator,
    MergeJoinOperator,
    ReadOperator,
    SelectOperator,
    SortLimitOperator,
    UnionOperator,
)
from repro.engine.ops.base import Operator

#: Binary symbols whose numpy kernels are elementwise-commutative, so
#: swapping operands is bitwise invisible (IEEE-754 + and * commute
#: exactly; only re-association is lossy, and we never re-associate).
_COMMUTATIVE = {"+", "*", "==", "!=", "&", "|"}

#: Comparison flips for moving literals to the right-hand side.
_FLIPPED = {">": "<", ">=": "<=", "<": ">", "<=": ">="}


# ---------------------------------------------------------------------------
# Expression canonicalization
# ---------------------------------------------------------------------------

def flatten_conjuncts(expr: Expr) -> list[Expr]:
    """The top-level ``&`` conjuncts of ``expr`` in syntactic order."""
    if isinstance(expr, BinaryExpr) and expr.symbol == "&":
        return flatten_conjuncts(expr.left) + flatten_conjuncts(expr.right)
    return [expr]


def canon_expr(expr: Expr) -> tuple:
    """A hashable canonical form of ``expr``.

    Two expressions with equal canonical forms evaluate to bitwise the
    same array on every frame: commuted operands of commutative ops,
    flattened/sorted ``&``/``|`` chains, flipped literal-on-left
    comparisons, and sorted ``isin`` sets all collapse to one form.
    Unknown :class:`Expr` subclasses get a unique opaque form (never
    equal to anything else).
    """
    if isinstance(expr, Column):
        return ("col", expr.name)
    if isinstance(expr, Literal):
        value = expr.value
        return ("lit", type(value).__name__, repr(value))
    if isinstance(expr, BinaryExpr):
        symbol = expr.symbol
        left, right = expr.left, expr.right
        if symbol in _FLIPPED and isinstance(left, Literal) \
                and not isinstance(right, Literal):
            left, right = right, left
            symbol = _FLIPPED[symbol]
        if symbol in ("&", "|"):
            terms = _flatten(expr, symbol)
            return (symbol, tuple(sorted(canon_expr(t) for t in terms)))
        lhs, rhs = canon_expr(left), canon_expr(right)
        if symbol in _COMMUTATIVE and rhs < lhs:
            lhs, rhs = rhs, lhs
        return ("bin", symbol, lhs, rhs)
    if isinstance(expr, UnaryExpr):
        return ("un", expr.symbol, canon_expr(expr.inner))
    if isinstance(expr, StringExpr):
        return ("str", expr.kind, expr.needle, canon_expr(expr.inner))
    if isinstance(expr, IsInExpr):
        values = tuple(sorted(repr(v) for v in expr.values))
        return ("isin", canon_expr(expr.inner), values)
    if isinstance(expr, YearExpr):
        return ("year", canon_expr(expr.inner))
    if isinstance(expr, SubstrExpr):
        return ("substr", expr.start, expr.length, canon_expr(expr.inner))
    if isinstance(expr, CaseExpr):
        return ("case", canon_expr(expr.cond), canon_expr(expr.then),
                canon_expr(expr.otherwise))
    return ("opaque-expr", type(expr).__name__, id(expr))


def _flatten(expr: Expr, symbol: str) -> list[Expr]:
    if isinstance(expr, BinaryExpr) and expr.symbol == symbol:
        return _flatten(expr.left, symbol) + _flatten(expr.right, symbol)
    return [expr]


# ---------------------------------------------------------------------------
# Operator signatures (registry)
# ---------------------------------------------------------------------------

_SIGNATURES: dict[type, Callable[[Operator, bool], tuple]] = {}


def register_signature(*op_types: type):
    """Register a signature function for one or more operator types.

    The function receives ``(op, alpha)`` and returns a tuple of plain
    hashable values.  ``alpha=True`` asks for the order-insensitive
    α-form; ``alpha=False`` must keep every byte-relevant detail.
    """

    def decorate(fn: Callable[[Operator, bool], tuple]):
        for op_type in op_types:
            _SIGNATURES[op_type] = fn
        return fn

    return decorate


def operator_signature(op: Operator, alpha: bool = False) -> tuple:
    """Canonical signature of one operator (excluding its inputs).

    Unknown operator types yield a unique opaque signature — never equal
    to any other operator's, so CSE cannot merge them and plan hashes
    cannot collide through them.
    """
    fn = _SIGNATURES.get(type(op))
    if fn is None:
        return ("opaque", type(op).__name__, op.name, id(op))
    return (type(op).__name__,) + tuple(fn(op, alpha))


@register_signature(ReadOperator)
def _sig_read(op: ReadOperator, alpha: bool) -> tuple:
    preds = tuple(sorted(repr(p) for p in op.predicates))
    order = tuple(op.order) if op.order is not None else None
    # The source label carries a per-context scan counter; α-equivalent
    # plans reading the same table must hash together, but strict
    # equality keeps it (progress counters are keyed by it).
    label = op.meta.name if alpha else op.source_name
    return (op.meta.name, label, order, op.columns, preds)


@register_signature(FilterOperator)
def _sig_filter(op: FilterOperator, alpha: bool) -> tuple:
    return (canon_expr(op.predicate),)


@register_signature(SelectOperator)
def _sig_select(op: SelectOperator, alpha: bool) -> tuple:
    exprs = [(name, canon_expr(expr)) for name, expr in op.exprs]
    if alpha:
        exprs = sorted(exprs)
    return (tuple(exprs), op.propagate_ci)


@register_signature(AggregateOperator)
def _sig_aggregate(op: AggregateOperator, alpha: bool) -> tuple:
    specs = tuple(
        (s.agg, s.column, s.alias, s.param) for s in op.specs
    )
    ci = repr(op.ci) if op.ci is not None else None
    return (specs, op.by, ci, op.growth_mode, op.quantile_mode,
            op.sketch_size, op.always_emit)


@register_signature(SortLimitOperator)
def _sig_sort(op: SortLimitOperator, alpha: bool) -> tuple:
    ascending = op.ascending
    if not isinstance(ascending, bool):
        ascending = tuple(bool(a) for a in ascending)
    return (op.by, ascending, op.limit)


@register_signature(DistinctOperator)
def _sig_distinct(op: DistinctOperator, alpha: bool) -> tuple:
    return (op.subset,)


@register_signature(HashJoinOperator)
def _sig_hash_join(op: HashJoinOperator, alpha: bool) -> tuple:
    pairs = tuple(zip(op.left_on, op.right_on))
    if alpha:
        pairs = tuple(sorted(pairs))
    return (pairs, op.how, op.suffix)


@register_signature(MergeJoinOperator)
def _sig_merge_join(op: MergeJoinOperator, alpha: bool) -> tuple:
    return (op.left_on, op.right_on, op.suffix)


@register_signature(CrossJoinOperator)
def _sig_cross_join(op: CrossJoinOperator, alpha: bool) -> tuple:
    return (op.suffix,)


@register_signature(ExchangeOperator)
def _sig_exchange(op: ExchangeOperator, alpha: bool) -> tuple:
    return (op.keys, op.shard, op.n_shards)


@register_signature(UnionOperator)
def _sig_union(op: UnionOperator, alpha: bool) -> tuple:
    return (op.n_inputs, op.sort_keys)


@register_signature(MapPartitionsOperator)
def _sig_map(op: MapPartitionsOperator, alpha: bool) -> tuple:
    # An arbitrary callable's behaviour is opaque: identity is the only
    # sound equality, so two *different* function objects never compare
    # equal (and never hash together).
    fn = op.fn
    return (getattr(fn, "__qualname__", repr(fn)), id(fn))


# ---------------------------------------------------------------------------
# Whole-plan digests
# ---------------------------------------------------------------------------

def node_digests(graph: QueryGraph, alpha: bool = False) -> dict[int, str]:
    """Per-node digest of the subtree rooted at each node.

    Two nodes share a digest iff their operator signatures and their
    whole input subtrees match (port order preserved — joins are not
    symmetric).  Insertion order is topological, so one forward sweep
    suffices.
    """
    digests: dict[int, str] = {}
    for nid in sorted(graph.nodes):
        node = graph.node(nid)
        signature = operator_signature(node.operator, alpha=alpha)
        payload = repr(
            (signature, tuple(digests[i] for i in node.inputs))
        )
        digests[nid] = hashlib.sha256(payload.encode()).hexdigest()
    return digests


def plan_hash(graph: QueryGraph, output: int) -> str:
    """Stable α-equivalence hash of the plan rooted at ``output``.

    Equal for plans that differ only in select rename order, commuted
    conjuncts/commutative operands, flipped comparisons, scan source
    labels, or operator-name counters; different whenever any literal,
    column, aggregate spec, join shape, or table differs.  16 hex chars
    (64 bits) — the shared-scan/snapshot-cache key of ROADMAP item 1.
    """
    graph.validate_output(output)
    return node_digests(graph, alpha=True)[output][:16]


def plans_alpha_equal(
    a: QueryGraph, a_output: int, b: QueryGraph, b_output: int
) -> bool:
    """True when the two plans are α-equivalent (same :func:`plan_hash`
    preimage, compared at full digest width)."""
    return (
        node_digests(a, alpha=True)[a_output]
        == node_digests(b, alpha=True)[b_output]
    )


def duplicate_groups(
    graph: QueryGraph, mergeable: Sequence[type]
) -> dict[str, list[int]]:
    """Strict-digest groups with more than one node, restricted to
    ``mergeable`` operator types (the CSE candidates), keyed by digest,
    node ids ascending."""
    digests = node_digests(graph, alpha=False)
    groups: dict[str, list[int]] = {}
    for nid in sorted(graph.nodes):
        if isinstance(graph.node(nid).operator, tuple(mergeable)):
            groups.setdefault(digests[nid], []).append(nid)
    return {d: ids for d, ids in groups.items() if len(ids) > 1}
