"""Inter-node messages (paper §7.2).

A message carries (1) a shared reference to a data frame and (2) metadata
on query progress.  ``kind`` distinguishes DELTA partials (append to the
consumer's current version) from REPLACE snapshots (begin a new version).
A special EOF marker ends a channel; once a node has EOF on all inputs it
flushes, forwards EOF, and terminates (threaded executor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataframe.frame import DataFrame
from repro.core.properties import Delivery, Progress


@dataclass(frozen=True)
class Message:
    """One unit of data flow: a frame plus progress metadata."""

    frame: DataFrame
    progress: Progress
    kind: Delivery = Delivery.DELTA

    @property
    def t(self) -> float:
        return self.progress.fraction

    def replaced_frame(self, frame: DataFrame) -> "Message":
        return Message(frame=frame, progress=self.progress, kind=self.kind)


@dataclass(frozen=True)
class Eof:
    """End-of-stream marker for one channel."""

    progress: Progress


StreamItem = Message | Eof
