"""Query graph (paper §7.1 "Query Service").

Users (via the fluent API) build an execution graph of operator nodes and
data-flow edges.  Nodes are added bottom-up, so the graph is a DAG by
construction; ``resolve`` binds every operator in insertion order,
propagating :class:`StreamInfo` (schema, keys, clustering, delivery) along
the edges, and computes source drain priorities (hash-join build subtrees
are drained first, mirroring the paper's parallel hash-table construction
for right-deep join chains).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.core.properties import StreamInfo
from repro.engine.ops.base import Operator, SourceOperator
from repro.engine.ops.join import CrossJoinOperator, HashJoinOperator


@dataclass
class Node:
    """One graph node: an operator plus its input node ids (by port)."""

    node_id: int
    operator: Operator
    inputs: tuple[int, ...] = ()


@dataclass
class QueryGraph:
    """A DAG of operator nodes."""

    nodes: dict[int, Node] = field(default_factory=dict)
    _next_id: int = 0
    _resolved: dict[int, StreamInfo] | None = None

    def add(self, operator: Operator, inputs: tuple[int, ...] = ()) -> int:
        """Register an operator; ``inputs`` are existing node ids in port
        order.  Returns the new node id."""
        if len(inputs) != operator.n_inputs:
            raise QueryError(
                f"operator {operator.name!r} needs {operator.n_inputs} "
                f"inputs, got {len(inputs)}"
            )
        for input_id in inputs:
            if input_id not in self.nodes:
                raise QueryError(
                    f"operator {operator.name!r}: input node {input_id} "
                    f"does not exist"
                )
        node_id = self._next_id
        self._next_id += 1
        self.nodes[node_id] = Node(node_id, operator, tuple(inputs))
        self._resolved = None
        return node_id

    # -- structure queries --------------------------------------------------------
    def node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise QueryError(f"no node with id {node_id}") from None

    def subscribers(self) -> dict[int, list[tuple[int, int]]]:
        """Map node id → [(consumer id, consumer port), ...] in id order."""
        out: dict[int, list[tuple[int, int]]] = {
            nid: [] for nid in self.nodes
        }
        for node in self.nodes.values():
            for port, src in enumerate(node.inputs):
                out[src].append((node.node_id, port))
        return out

    def source_ids(self) -> list[int]:
        return [
            nid
            for nid, node in sorted(self.nodes.items())
            if isinstance(node.operator, SourceOperator)
        ]

    def upstream_sources(self, node_id: int) -> set[int]:
        """All source node ids reachable upstream of ``node_id``
        (inclusive if it is itself a source)."""
        seen: set[int] = set()
        stack = [node_id]
        sources: set[int] = set()
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            node = self.nodes[nid]
            if isinstance(node.operator, SourceOperator):
                sources.add(nid)
            stack.extend(node.inputs)
        return sources

    # -- planning -----------------------------------------------------------------
    def resolve(self) -> dict[int, StreamInfo]:
        """Bind all operators (insertion order = topological order)."""
        if self._resolved is not None:
            return self._resolved
        infos: dict[int, StreamInfo] = {}
        for nid in sorted(self.nodes):
            node = self.nodes[nid]
            input_infos = tuple(infos[i] for i in node.inputs)
            infos[nid] = node.operator.bind(input_infos)
        self._resolved = infos
        return infos

    def source_priorities(self) -> dict[int, int]:
        """0 = drain first (feeds a buffered build side), 1 = stream.

        Must be called after :meth:`resolve` (cross-join liveness is a
        plan-time property).
        """
        self.resolve()
        priorities = {nid: 1 for nid in self.source_ids()}
        for node in self.nodes.values():
            op = node.operator
            buffered_port: int | None = None
            if isinstance(op, HashJoinOperator):
                buffered_port = 1
            elif isinstance(op, CrossJoinOperator) and not op._live:
                buffered_port = 1
            if buffered_port is None:
                continue
            build_input = node.inputs[buffered_port]
            for source in self.upstream_sources(build_input):
                priorities[source] = 0
        return priorities

    def invalidate(self) -> None:
        """Drop the cached resolution.

        Planner passes that mutate operators in place (e.g. scan
        pushdowns) call this so the next :meth:`resolve` re-binds every
        operator against the updated plan.
        """
        self._resolved = None

    def validate_output(self, node_id: int) -> None:
        if node_id not in self.nodes:
            raise QueryError(f"output node {node_id} does not exist")
