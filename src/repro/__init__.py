"""repro — a Python reproduction of "A Step Toward Deep Online Aggregation"
(Wake, SIGMOD 2023).

Quickstart::

    from repro import WakeContext, col, F

    ctx = WakeContext.from_catalog("path/to/catalog.json")
    lineitem = ctx.table("lineitem")
    order_qty = lineitem.agg(F.sum("l_quantity").alias("sum_qty"),
                             by=["l_orderkey"])
    lg_orders = order_qty.filter(col("sum_qty") > 300)
    for snapshot in ctx.run(lg_orders):
        print(snapshot.progress, snapshot.frame)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module mapping.
"""

from repro.dataframe import (
    AggSpec,
    AttributeKind,
    DataFrame,
    DType,
    Field,
    Schema,
    col,
    date,
    date_str,
    lit,
    when,
)
from repro.errors import (
    ColumnNotFoundError,
    ExecutionError,
    InferenceError,
    QueryError,
    ReproError,
    SchemaError,
    ServiceError,
    StorageError,
)
from repro.api import EdfFrame, ExecutionOptions, F, WakeContext
from repro.core import CIConfig, EdfSnapshot, EvolvingDataFrame
from repro.storage import Catalog, TableMeta, write_table

__version__ = "1.0.0"

__all__ = [
    "AggSpec",
    "AttributeKind",
    "CIConfig",
    "Catalog",
    "ColumnNotFoundError",
    "DType",
    "DataFrame",
    "EdfFrame",
    "EdfSnapshot",
    "EvolvingDataFrame",
    "ExecutionError",
    "ExecutionOptions",
    "F",
    "Field",
    "InferenceError",
    "QueryError",
    "ReproError",
    "Schema",
    "SchemaError",
    "ServiceError",
    "StorageError",
    "TableMeta",
    "WakeContext",
    "col",
    "date",
    "date_str",
    "lit",
    "when",
    "write_table",
]
