"""Unit tests for partition file IO (npz + csv)."""

import numpy as np
import pytest

from repro.dataframe import (
    AttributeKind,
    DataFrame,
    DType,
    Field,
    Schema,
    date,
)
from repro.errors import StorageError
from repro.storage.partition import (
    estimate_csv_bytes,
    read_partition,
    read_partition_csv,
    read_partition_npz,
    write_partition,
    write_partition_csv,
    write_partition_npz,
)


@pytest.fixture
def frame():
    schema = Schema(
        [
            Field("k", DType.INT64),
            Field("d", DType.DATE),
            Field("name", DType.STRING),
            Field("flag", DType.BOOL),
            Field("est", DType.FLOAT64, AttributeKind.MUTABLE),
        ]
    )
    return DataFrame(
        {
            "k": np.array([1, 2, 3], dtype=np.int64),
            "d": np.array([date("1994-01-01"), date("1995-06-01"), 0]),
            "name": np.array(["alpha", "beta", "gamma"]),
            "flag": np.array([True, False, True]),
            "est": np.array([1.5, 2.5, 3.5]),
        },
        schema=schema,
    )


class TestNpz:
    def test_roundtrip_preserves_schema(self, tmp_path, frame):
        path = tmp_path / "part.npz"
        write_partition_npz(path, frame)
        loaded = read_partition_npz(path)
        assert loaded.equals(frame)
        assert loaded.schema == frame.schema  # kinds + DATE logical type

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            read_partition_npz(tmp_path / "nope.npz")

    def test_column_selection(self, tmp_path, frame):
        path = tmp_path / "part.npz"
        write_partition_npz(path, frame)
        loaded = read_partition_npz(path, columns=["name", "k"])
        # Schema order wins, not request order; kinds survive.
        assert loaded.column_names == ("k", "name")
        assert loaded.schema.field("k") == frame.schema.field("k")
        assert loaded.column("name").tolist() == ["alpha", "beta",
                                                  "gamma"]

    def test_unknown_column_selection(self, tmp_path, frame):
        path = tmp_path / "part.npz"
        write_partition_npz(path, frame)
        with pytest.raises(StorageError, match="nope"):
            read_partition_npz(path, columns=["k", "nope"])

    def test_non_partition_npz_rejected(self, tmp_path):
        path = tmp_path / "raw.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(StorageError, match="no schema"):
            read_partition_npz(path)

    def test_empty_frame_roundtrip(self, tmp_path, frame):
        path = tmp_path / "empty.npz"
        empty = frame.head(0)
        write_partition_npz(path, empty)
        loaded = read_partition_npz(path)
        assert loaded.n_rows == 0
        assert loaded.schema == frame.schema


class TestCsv:
    def test_roundtrip(self, tmp_path, frame):
        path = tmp_path / "part.csv"
        write_partition_csv(path, frame)
        loaded = read_partition_csv(path, frame.schema)
        assert loaded.equals(frame)

    def test_header_mismatch(self, tmp_path, frame):
        path = tmp_path / "part.csv"
        write_partition_csv(path, frame.rename({"k": "other"}))
        with pytest.raises(StorageError, match="header"):
            read_partition_csv(path, frame.schema)

    def test_column_selection(self, tmp_path, frame):
        path = tmp_path / "part.csv"
        write_partition_csv(path, frame)
        loaded = read_partition_csv(path, frame.schema,
                                    columns=["flag", "d"])
        assert loaded.column_names == ("d", "flag")
        assert loaded.column("flag").tolist() == [True, False, True]
        assert loaded.equals(frame.select(["d", "flag"]))

    def test_csv_requires_schema_via_dispatch(self, tmp_path, frame):
        path = tmp_path / "part.csv"
        write_partition(path, frame)
        with pytest.raises(StorageError, match="requires a schema"):
            read_partition(path)

    def test_empty_file(self, tmp_path, frame):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(StorageError, match="empty"):
            read_partition_csv(path, frame.schema)


class TestDispatch:
    def test_npz_dispatch(self, tmp_path, frame):
        path = tmp_path / "part.npz"
        write_partition(path, frame)
        assert read_partition(path).equals(frame)

    def test_unknown_suffix(self, tmp_path, frame):
        with pytest.raises(StorageError, match="unknown partition format"):
            write_partition(tmp_path / "part.parquet", frame)
        with pytest.raises(StorageError, match="unknown partition format"):
            read_partition(tmp_path / "part.parquet")

    def test_estimate_csv_bytes_scales(self, frame):
        small = estimate_csv_bytes(frame)
        big = estimate_csv_bytes(
            DataFrame.concat([frame] * 200)
        )
        assert big > small * 50
