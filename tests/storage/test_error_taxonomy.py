"""Transient vs permanent storage-error classification.

The retry layer's contract rests on this taxonomy: a
:class:`TransientStorageError` means a retry may succeed (mid-write,
locked, truncated file); a :class:`PermanentStorageError` means it
never will (corrupt schema, unknown format).  Every classified error
carries the partition path — and, through the catalog, the table name
and partition index — with the original failure chained as the cause.
"""

import json

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.errors import (
    PermanentStorageError,
    StorageError,
    TransientStorageError,
    is_transient,
)
from repro.storage import Catalog
from repro.storage.partition import read_partition, write_partition


@pytest.fixture
def frame():
    return DataFrame({
        "k": np.arange(6, dtype=np.int64),
        "v": np.linspace(0.0, 1.0, 6),
    })


class TestIsTransient:
    def test_classification_helper(self):
        assert is_transient(TransientStorageError("x"))
        assert not is_transient(PermanentStorageError("x"))
        assert not is_transient(StorageError("x"))  # unclassified
        assert not is_transient(RuntimeError("x"))


class TestNpzClassification:
    def test_missing_file_is_transient(self, tmp_path):
        missing = tmp_path / "p0.npz"
        with pytest.raises(TransientStorageError) as info:
            read_partition(missing)
        assert info.value.path == str(missing)

    def test_truncated_file_is_transient(self, tmp_path, frame):
        path = tmp_path / "p0.npz"
        write_partition(path, frame)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])  # torn write
        with pytest.raises(TransientStorageError) as info:
            read_partition(path)
        assert info.value.path == str(path)
        assert info.value.__cause__ is not None

    def test_garbage_bytes_are_transient(self, tmp_path):
        path = tmp_path / "p0.npz"
        path.write_bytes(b"\x00" * 64)  # could still be mid-write
        with pytest.raises(TransientStorageError):
            read_partition(path)

    def test_foreign_npz_without_schema_is_permanent(self, tmp_path):
        path = tmp_path / "p0.npz"
        np.savez(path, data=np.arange(3))  # no embedded schema
        with pytest.raises(PermanentStorageError) as info:
            read_partition(path)
        assert info.value.path == str(path)

    def test_corrupt_embedded_schema_is_permanent(self, tmp_path):
        path = tmp_path / "p0.npz"
        np.savez(path, __schema__=np.array("not valid json {"),
                 k=np.arange(3))
        with pytest.raises(PermanentStorageError) as info:
            read_partition(path)
        assert "schema" in str(info.value)

    def test_unknown_selected_column_is_permanent(self, tmp_path, frame):
        path = tmp_path / "p0.npz"
        write_partition(path, frame)
        with pytest.raises(PermanentStorageError):
            read_partition(path, columns=["nope"])


class TestCsvClassification:
    def test_missing_and_empty_are_transient(self, tmp_path, frame):
        missing = tmp_path / "p0.csv"
        with pytest.raises(TransientStorageError):
            read_partition(missing, frame.schema)
        missing.write_text("")  # writer opened it, nothing flushed yet
        with pytest.raises(TransientStorageError):
            read_partition(missing, frame.schema)

    def test_header_mismatch_is_permanent(self, tmp_path, frame):
        path = tmp_path / "p0.csv"
        path.write_text("wrong,header\n1,2\n")
        with pytest.raises(PermanentStorageError):
            read_partition(path, frame.schema)

    def test_unparseable_cells_are_transient(self, tmp_path, frame):
        path = tmp_path / "p0.csv"
        path.write_text("k,v\n1,0.5\nnot-an-int,oops\n")  # torn row
        with pytest.raises(TransientStorageError):
            read_partition(path, frame.schema)

    def test_csv_without_schema_is_permanent(self, tmp_path, frame):
        path = tmp_path / "p0.csv"
        write_partition(path, frame)
        with pytest.raises(PermanentStorageError):
            read_partition(path)

    def test_unknown_format_is_permanent(self, tmp_path, frame):
        with pytest.raises(PermanentStorageError):
            write_partition(tmp_path / "p0.parquet", frame)
        with pytest.raises(PermanentStorageError):
            read_partition(tmp_path / "p0.parquet")


class TestCatalogContext:
    def test_table_read_attaches_context_and_chains(self, catalog,
                                                    tmp_path):
        """The catalog re-raises the *same class* with table name,
        partition index, and path attached, original error chained."""
        meta = catalog.table("sales")
        victim = meta.files[2]
        from pathlib import Path
        payload = Path(victim).read_bytes()
        Path(victim).unlink()  # simulate a mid-move partition
        try:
            with pytest.raises(TransientStorageError) as info:
                meta.read_partition(2)
            exc = info.value
            assert exc.table == "sales"
            assert exc.partition == 2
            assert exc.path == str(victim)
            assert isinstance(exc.__cause__, TransientStorageError)
            assert "sales" in str(exc) and "partition 2" in str(exc)
        finally:
            Path(victim).write_bytes(payload)

    def test_out_of_range_partition_is_permanent(self, catalog):
        meta = catalog.table("sales")
        with pytest.raises(PermanentStorageError) as info:
            meta.read_partition(meta.n_partitions)
        assert info.value.table == "sales"

    def test_catalog_load_missing_is_transient(self, tmp_path):
        with pytest.raises(TransientStorageError):
            Catalog.load(tmp_path / "catalog.json")

    def test_catalog_load_corrupt_is_permanent(self, tmp_path):
        path = tmp_path / "catalog.json"
        path.write_text("{not json")
        with pytest.raises(PermanentStorageError):
            Catalog.load(path)

    def test_catalog_roundtrip_still_works(self, catalog, tmp_path):
        path = tmp_path / "cat.json"
        catalog.save(path)
        loaded = Catalog.load(path)
        assert loaded.names() == catalog.names()
        assert json.loads(path.read_text())["tables"]
