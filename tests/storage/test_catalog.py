"""Unit tests for the catalog and table writer."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.errors import StorageError
from repro.storage import (
    Catalog,
    TableMeta,
    partition_boundaries,
    write_table,
)


@pytest.fixture
def frame():
    return DataFrame(
        {
            "okey": np.arange(100, dtype=np.int64),
            "qty": np.arange(100, dtype=np.float64) * 2.0,
        }
    )


@pytest.fixture
def catalog(tmp_path, frame):
    cat = Catalog(root=str(tmp_path))
    write_table(
        cat, tmp_path, "orders", frame, rows_per_partition=30,
        primary_key=["okey"], clustering_key=["okey"],
    )
    return cat


class TestPartitionBoundaries:
    def test_even_split(self):
        assert partition_boundaries(10, 5) == [(0, 5), (5, 10)]

    def test_ragged_tail(self):
        assert partition_boundaries(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_single_partition(self):
        assert partition_boundaries(3, 100) == [(0, 3)]

    def test_empty_table(self):
        assert partition_boundaries(0, 10) == [(0, 0)]

    def test_invalid_size(self):
        with pytest.raises(StorageError):
            partition_boundaries(10, 0)


class TestWriteTable:
    def test_partition_layout(self, catalog):
        meta = catalog.table("orders")
        assert meta.n_partitions == 4
        assert meta.tuple_counts == (30, 30, 30, 10)
        assert meta.total_tuples == 100
        assert meta.clustering_key == ("okey",)

    def test_read_partition_contents(self, catalog, frame):
        meta = catalog.table("orders")
        part1 = meta.read_partition(1)
        assert part1.column("okey").tolist() == list(range(30, 60))

    def test_read_partition_out_of_range(self, catalog):
        meta = catalog.table("orders")
        with pytest.raises(StorageError, match="out of range"):
            meta.read_partition(4)

    def test_read_all_reconstructs(self, catalog, frame):
        assert catalog.table("orders").read_all().equals(frame)

    def test_iter_partitions_shuffled(self, catalog):
        meta = catalog.table("orders")
        order = [3, 0, 2, 1]
        seen = [idx for idx, _ in meta.iter_partitions(order)]
        assert seen == order

    def test_csv_format(self, tmp_path, frame):
        cat = Catalog()
        meta = write_table(
            cat, tmp_path / "csvdir", "orders", frame, 40,
            primary_key=["okey"], fmt="csv",
        )
        assert meta.files[0].endswith(".csv")
        assert cat.table("orders").read_all().equals(frame)

    def test_unknown_format(self, tmp_path, frame):
        with pytest.raises(StorageError):
            write_table(Catalog(), tmp_path, "t", frame, 10,
                        primary_key=["okey"], fmt="orc")


class TestCatalog:
    def test_duplicate_table_rejected(self, catalog, tmp_path, frame):
        with pytest.raises(StorageError, match="already registered"):
            write_table(catalog, tmp_path, "orders", frame, 10,
                        primary_key=["okey"])

    def test_missing_table(self, catalog):
        with pytest.raises(StorageError, match="not in catalog"):
            catalog.table("lineitem")

    def test_contains_and_names(self, catalog):
        assert "orders" in catalog
        assert catalog.names() == ("orders",)

    def test_save_load_roundtrip(self, catalog, tmp_path, frame):
        path = tmp_path / "catalog.json"
        catalog.save(path)
        loaded = Catalog.load(path)
        meta = loaded.table("orders")
        assert meta.tuple_counts == (30, 30, 30, 10)
        assert meta.primary_key == ("okey",)
        assert meta.schema == catalog.table("orders").schema
        assert loaded.table("orders").read_all().equals(frame)

    def test_load_missing(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            Catalog.load(tmp_path / "none.json")

    def test_load_corrupt(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StorageError, match="corrupt"):
            Catalog.load(path)

    def test_meta_validates_keys(self, catalog):
        meta = catalog.table("orders")
        with pytest.raises(StorageError, match="missing from"):
            TableMeta(
                name="x", files=("a",), tuple_counts=(1,),
                schema=meta.schema, primary_key=("nope",),
            )

    def test_meta_validates_file_counts(self, catalog):
        meta = catalog.table("orders")
        with pytest.raises(StorageError, match="tuple counts"):
            TableMeta(
                name="x", files=("a", "b"), tuple_counts=(1,),
                schema=meta.schema, primary_key=("okey",),
            )


class TestZoneMapStats:
    def test_writer_records_stats(self, catalog):
        meta = catalog.table("orders")
        assert meta.stats is not None
        assert len(meta.stats) == meta.n_partitions
        first = meta.stats[0]
        assert first["okey"] == {"min": 0, "max": 29, "nulls": 0}
        assert first["qty"]["min"] == 0.0
        assert first["qty"]["max"] == 58.0

    def test_stats_survive_json_roundtrip(self, catalog, tmp_path):
        path = tmp_path / "catalog.json"
        catalog.save(path)
        loaded = Catalog.load(path)
        reloaded = loaded.table("orders")
        original = catalog.table("orders")
        assert reloaded.stats is not None
        assert list(map(dict, reloaded.stats)) == list(
            map(dict, original.stats)
        )

    def test_legacy_catalog_loads_without_stats(self, catalog, tmp_path):
        """Catalogs written before zone maps existed load fine: stats
        are None and pruning is simply disabled."""
        import json

        path = tmp_path / "catalog.json"
        catalog.save(path)
        doc = json.loads(path.read_text())
        for table in doc["tables"].values():
            table.pop("stats")
        path.write_text(json.dumps(doc))
        loaded = Catalog.load(path)
        meta = loaded.table("orders")
        assert meta.stats is None
        assert meta.partition_stats(0) is None
        # ... and the table still reads back in full.
        assert meta.read_all().n_rows == 100

    def test_stats_backfill(self, catalog, tmp_path):
        from repro.storage import add_catalog_stats

        path = tmp_path / "catalog.json"
        catalog.save(path)
        import json

        doc = json.loads(path.read_text())
        for table in doc["tables"].values():
            table.pop("stats")
        path.write_text(json.dumps(doc))
        loaded = Catalog.load(path)
        updated = add_catalog_stats(loaded)
        assert updated == ["orders"]
        backfilled = loaded.table("orders").stats
        assert list(map(dict, backfilled)) == list(
            map(dict, catalog.table("orders").stats)
        )
        # Idempotent unless forced.
        assert add_catalog_stats(loaded) == []
        assert add_catalog_stats(loaded, force=True) == ["orders"]

    def test_stats_length_validated(self, catalog):
        meta = catalog.table("orders")
        with pytest.raises(StorageError, match="partition stats"):
            TableMeta(
                name="x", files=meta.files,
                tuple_counts=meta.tuple_counts, schema=meta.schema,
                primary_key=("okey",), stats=(meta.stats[0],),
            )

    def test_stats_disabled_write(self, tmp_path, frame):
        cat = Catalog()
        meta = write_table(
            cat, tmp_path / "nostats", "orders", frame, 40,
            primary_key=["okey"], stats=False,
        )
        assert meta.stats is None

    def test_nan_and_string_stats(self, tmp_path):
        from repro.storage.zonemap import column_stats

        assert column_stats(
            np.array([1.0, np.nan, 3.0])
        ) == {"min": 1.0, "max": 3.0, "nulls": 1}
        assert column_stats(
            np.array([np.nan, np.nan])
        ) == {"min": None, "max": None, "nulls": 2}
        assert column_stats(np.array([], dtype=np.int64)) == {
            "min": None, "max": None, "nulls": 0,
        }
        assert column_stats(np.array(["b", "a", "c"])) == {
            "min": "a", "max": "c", "nulls": 0,
        }
