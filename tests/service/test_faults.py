"""FaultInjector: deterministic, site-keyed fault schedules."""

import pytest

from repro import F, WakeContext
from repro.errors import (
    PermanentStorageError,
    QueryError,
    TransientStorageError,
)
from repro.testing import FaultInjector


def _read_all_with_retries(meta, index, max_tries=10):
    """Retry a wrapped read until it succeeds; returns (frame, tries)."""
    for attempt in range(1, max_tries + 1):
        try:
            return meta.read_partition(index), attempt
        except TransientStorageError:
            continue
    raise AssertionError("fault never cleared")


class TestPlannedFaults:
    def test_transient_fires_n_times_then_clears(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 2, kind="transient", times=3)
        meta = injector.wrap_catalog(catalog).table("sales")
        frame, tries = _read_all_with_retries(meta, 2)
        assert tries == 4  # 3 injected failures + 1 success
        assert frame.n_rows == 10
        assert [f.kind for f in injector.injected] == ["transient"] * 3
        assert all(f.table == "sales" and f.partition == 2
                   for f in injector.injected)

    def test_fault_error_carries_site_context(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 1)
        meta = injector.wrap_catalog(catalog).table("sales")
        with pytest.raises(TransientStorageError) as info:
            meta.read_partition(1)
        assert info.value.table == "sales"
        assert info.value.partition == 1

    def test_permanent_fault_kind(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 0, kind="permanent")
        meta = injector.wrap_catalog(catalog).table("sales")
        with pytest.raises(PermanentStorageError):
            meta.read_partition(0)
        assert meta.read_partition(0).n_rows == 10  # one-shot

    def test_slow_fault_succeeds(self, catalog):
        injector = FaultInjector(slow_delay=0.0)
        injector.plan_fault("sales", 0, kind="slow")
        meta = injector.wrap_catalog(catalog).table("sales")
        assert meta.read_partition(0).n_rows == 10
        assert [f.kind for f in injector.injected] == ["slow"]

    def test_unfaulted_sites_read_clean(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 3)
        wrapped = injector.wrap_catalog(catalog)
        assert wrapped.table("sales").read_partition(0).n_rows == 10
        assert wrapped.table("customers").read_partition(0).n_rows == 5
        assert injector.injected == []

    def test_original_catalog_untouched(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 0, times=99)
        injector.wrap_catalog(catalog)
        assert catalog.table("sales").read_partition(0).n_rows == 10

    def test_max_faults_caps_total(self, catalog):
        injector = FaultInjector(max_faults=2)
        injector.plan_fault("sales", 0, times=5)
        meta = injector.wrap_catalog(catalog).table("sales")
        _frame, tries = _read_all_with_retries(meta, 0)
        assert tries == 3  # capped at 2 injected failures
        assert len(injector.injected) == 2


class TestSeededSchedules:
    def test_rate_one_faults_every_site(self, catalog):
        injector = FaultInjector(seed=7, transient_rate=1.0,
                                 fault_times=2)
        meta = injector.wrap_catalog(catalog).table("sales")
        for index in range(meta.n_partitions):
            _frame, tries = _read_all_with_retries(meta, index)
            assert tries == 3

    def test_rate_zero_never_faults(self, catalog):
        injector = FaultInjector(seed=7, transient_rate=0.0)
        meta = injector.wrap_catalog(catalog).table("sales")
        for index in range(meta.n_partitions):
            meta.read_partition(index)
        assert injector.injected == []

    def test_site_decisions_independent_of_touch_order(self, catalog):
        """The fault schedule is a function of (seed, site) — reading
        partitions in a different order meets the same faults."""
        def fault_map(order):
            injector = FaultInjector(seed=11, transient_rate=0.5)
            meta = injector.wrap_catalog(catalog).table("sales")
            hits = {}
            for index in order:
                try:
                    meta.read_partition(index)
                    hits[index] = False
                except TransientStorageError:
                    hits[index] = True
            return hits

        n = catalog.table("sales").n_partitions
        forward = fault_map(range(n))
        backward = fault_map(reversed(range(n)))
        assert forward == backward
        assert any(forward.values()) and not all(forward.values())


class TestStepFaults:
    def test_step_fault_is_retry_safe(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        executor = ctx.executor_for(plan)
        injector = FaultInjector()
        injector.plan_step_fault(times=2)
        injector.wrap_executor(executor)
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                executor.step()
            assert executor.step_retry_safe
        edf = executor.run()  # faults cleared; completes normally
        ref = WakeContext(catalog)
        expected = ref.run(
            ref.table("sales").agg(F.sum("qty").alias("s"), by=["cust"])
        ).get_final()
        assert (edf.get_final().column("s").tobytes()
                == expected.column("s").tobytes())


class TestValidation:
    def test_bad_rate_and_kind_raise(self, catalog):
        with pytest.raises(QueryError):
            FaultInjector(transient_rate=1.5)
        with pytest.raises(QueryError):
            FaultInjector(fault_times=0)
        injector = FaultInjector()
        with pytest.raises(QueryError):
            injector.plan_fault("sales", 0, kind="gremlins")
        with pytest.raises(QueryError):
            injector.plan_step_fault(kind="gremlins")
