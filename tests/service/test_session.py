"""SnapshotBuffer / Subscription / QuerySession unit tests."""

import threading

import pytest

from repro import F, WakeContext
from repro.errors import QueryError
from repro.service import (
    QuerySession,
    SessionState,
    SnapshotBuffer,
    Subscription,
)


def _snapshots(ctx_catalog, n=None):
    ctx = WakeContext(ctx_catalog)
    plan = ctx.table("sales").agg(F.sum("qty").alias("s"), by=["cust"])
    edf = ctx.run(plan)
    snaps = list(edf.snapshots)
    return snaps if n is None else snaps[:n]


class TestSnapshotBuffer:
    def test_append_then_read_in_order(self, catalog):
        snaps = _snapshots(catalog)
        buffer = SnapshotBuffer()
        for s in snaps:
            buffer.append(s)
        sub = Subscription(buffer)
        got = [sub.next(timeout=0.1) for _ in snaps]
        assert [s.sequence for s in got] == [s.sequence for s in snaps]
        assert sub.dropped == 0

    def test_read_blocks_until_append(self, catalog):
        snaps = _snapshots(catalog, 1)
        buffer = SnapshotBuffer()
        sub = Subscription(buffer)
        result = []

        def reader():
            result.append(sub.next(timeout=5.0))

        thread = threading.Thread(target=reader)
        thread.start()
        buffer.append(snaps[0])
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result[0] is snaps[0]

    def test_timeout_returns_none(self):
        sub = Subscription(SnapshotBuffer())
        assert sub.next(timeout=0.01) is None
        assert not sub.finished

    def test_close_wakes_waiters_and_finishes(self, catalog):
        snaps = _snapshots(catalog, 2)
        buffer = SnapshotBuffer()
        for s in snaps:
            buffer.append(s)
        buffer.close()
        sub = Subscription(buffer)
        assert list(sub) == snaps  # replay still works after close
        assert sub.finished
        assert sub.next(timeout=0.01) is None

    def test_bounded_buffer_evicts_and_reports_drops(self, catalog):
        snaps = _snapshots(catalog)
        assert len(snaps) >= 4
        buffer = SnapshotBuffer(maxlen=2)
        slow = Subscription(buffer)
        for s in snaps:
            buffer.append(s)  # producer never blocks
        buffer.close()
        got = list(slow)
        assert len(got) == 2  # only the newest two retained
        assert got == snaps[-2:]
        assert slow.dropped == len(snaps) - 2
        assert len(buffer) == len(snaps)  # total appended, not retained

    def test_fresh_cursor_is_not_penalized(self, catalog):
        snaps = _snapshots(catalog, 3)
        buffer = SnapshotBuffer()
        for s in snaps:
            buffer.append(s)
        late = Subscription(buffer, start=len(snaps))
        assert late.next(timeout=0.01) is None  # nothing new yet

    def test_bad_maxlen_rejected(self):
        with pytest.raises(QueryError):
            SnapshotBuffer(maxlen=0)


class TestQuerySession:
    def _session(self, catalog, **kwargs):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        return QuerySession("s1", "sum", ctx.executor_for(plan),
                            **kwargs)

    def test_initial_state(self, catalog):
        session = self._session(catalog)
        assert session.state is SessionState.SUBMITTED
        assert not session.terminal
        status = session.status()
        assert status["state"] == "submitted"
        assert status["snapshots"] == 0

    def test_pump_moves_new_snapshots_only(self, catalog):
        session = self._session(catalog)
        while session.executor.step():
            session.pump_snapshots()
        total = len(session.executor.edf)
        assert len(session.buffer) == total
        assert session.pump_snapshots() == 0  # idempotent

    def test_status_reports_progress(self, catalog):
        session = self._session(catalog)
        while session.executor.step():
            pass
        session.pump_snapshots()
        status = session.status()
        assert status["t"] == 1.0
        assert status["final"] is True

    def test_bad_priority_rejected(self, catalog):
        with pytest.raises(QueryError):
            self._session(catalog, priority=0)

    def test_late_subscriber_replays_everything(self, catalog):
        session = self._session(catalog)
        while session.executor.step():
            session.pump_snapshots()
        session.buffer.close()
        sub = session.subscribe()
        replayed = list(sub)
        assert [s.sequence for s in replayed] == list(
            range(len(session.executor.edf)))
