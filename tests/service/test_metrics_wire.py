"""Wire-level tests for the observability surface: the ``metrics`` and
``trace`` NDJSON ops, the Prometheus ``GET /metrics`` responder, and
the always-on buffer-health fields in ``status`` replies."""

import json
import socket

import pytest

from repro import F, WakeContext
from repro.errors import ServiceError
from repro.service import QueryService, ServiceClient, SnapshotServer


def _plans():
    return {
        "sum_by_cust": lambda ctx, **p: ctx.table("sales").agg(
            F.sum("qty").alias("s"), by=["cust"]
        ),
        "total": lambda ctx, **p: ctx.table("sales").sum("qty"),
    }


@pytest.fixture
def server(catalog):
    ctx = WakeContext(catalog)
    service = QueryService(ctx, plans=_plans(), telemetry=True)
    server = SnapshotServer(service, port=0).start()
    yield server
    server.stop()


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port, timeout=30) as client:
        yield client


@pytest.fixture
def dark_server(catalog):
    """A server with telemetry off (the default)."""
    ctx = WakeContext(catalog)
    service = QueryService(ctx, plans=_plans())
    server = SnapshotServer(service, port=0).start()
    yield server
    server.stop()


def _run_to_end(client, name):
    session = client.submit(name)
    for event in client.subscribe(session):
        if event.get("event") == "end":
            assert event["state"] == "done"
    return session


def _raw_request(port, payload):
    """One request over a raw socket — proves the wire format without
    the client's helpers."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=30) as sock:
        stream = sock.makefile("rwb")
        stream.write((json.dumps(payload) + "\n").encode())
        stream.flush()
        return json.loads(stream.readline())


class TestMetricsOp:
    def test_raw_socket_metrics_reply(self, server, client):
        _run_to_end(client, "total")
        reply = _raw_request(server.port, {"op": "metrics"})
        assert reply["ok"] is True
        assert reply["enabled"] is True
        # Every counter the acceptance bar names, present and sane.
        assert reply["steps_total"] >= 1
        assert reply["steps_per_second"] > 0
        assert reply["partitions_read_total"] >= 1
        assert reply["partitions_pruned_total"] >= 0
        assert reply["partitions_quarantined_total"] == 0
        assert reply["retries_total"] == 0
        assert reply["backoff_seconds_total"] == 0
        assert reply["scan_rows_total"] == 60
        assert reply["scan_bytes_total"] > 0
        assert reply["snapshots_published_total"] >= 1
        assert reply["buffer_drops_total"] == 0
        assert reply["result_cache_attaches_total"] == 0
        assert "physical_reads" in reply["scan_share"]
        assert "hits" in reply["cache"]
        assert reply["run_queue_depth"] == 0
        assert reply["uptime_seconds"] > 0

    def test_per_session_lag_and_series(self, server, client):
        session = _run_to_end(client, "total")
        reply = client.metrics()
        per_session = reply["sessions"][str(session)]
        assert per_session["state"] == "done"
        assert per_session["steps"] >= 1
        # The subscriber consumed every snapshot, so lag was measured.
        assert per_session["snapshot_lag_seconds"] >= 0
        assert per_session["drops"] == 0
        assert per_session["subscribers"] == 1
        # The full labeled series dump rides along.
        assert "repro_steps_total" in reply["series"]
        lag = reply["series"]["repro_session_snapshot_lag_seconds"]
        assert any(
            s["labels"].get("session") == str(session)
            for s in lag["samples"]
        )

    def test_result_cache_attach_counted(self, server, client):
        first = client.submit("total", result_cache=True)
        for event in client.subscribe(first):
            if event.get("event") == "end":
                assert event["state"] == "done"
        second = client.submit("total", result_cache=True)
        assert second.cache_hit is True
        reply = client.metrics()
        assert reply["result_cache_attaches_total"] == 1

    def test_prometheus_format_over_ndjson(self, server, client):
        _run_to_end(client, "total")
        reply = client.metrics(format="prometheus")
        text = reply["prometheus"]
        assert "# TYPE repro_steps_total counter" in text
        assert "# TYPE repro_step_seconds histogram" in text
        assert "repro_step_seconds_bucket" in text
        assert "repro_scan_rows_total 60" in text

    def test_unknown_format_rejected(self, server, client):
        with pytest.raises(ServiceError, match="format"):
            client.metrics(format="xml")

    def test_retry_and_backoff_counters_fire(self, catalog):
        from repro.service import RetryPolicy
        from repro.testing import FaultInjector

        injector = FaultInjector()
        injector.plan_fault("sales", 0, times=1)
        ctx = WakeContext(injector.wrap_catalog(catalog))
        retry = RetryPolicy(max_attempts=3, backoff_base=0.001,
                            backoff_max=0.002)
        service = QueryService(ctx, plans=_plans(), retry=retry,
                               telemetry=True)
        server = SnapshotServer(service, port=0).start()
        try:
            with ServiceClient(port=server.port, timeout=30) as client:
                _run_to_end(client, "total")
                reply = client.metrics()
                assert reply["retries_total"] == 1
                assert reply["backoff_seconds_total"] > 0
        finally:
            server.stop()


class TestBufferHealth:
    def test_bounded_buffer_drops_surface_everywhere(self, catalog):
        ctx = WakeContext(catalog)
        service = QueryService(ctx, plans=_plans(), buffer_size=1,
                               telemetry=True)
        server = SnapshotServer(service, port=0).start()
        try:
            with ServiceClient(port=server.port, timeout=30) as client:
                session = client.submit("sum_by_cust")
                while client.status(session)["state"] != "done":
                    pass
                # Subscribe only after completion: with a 1-slot buffer
                # every earlier snapshot was evicted, so the late
                # subscriber skips ahead (drops > 0).
                final = [
                    e for e in client.subscribe(session)
                    if e.get("event") == "snapshot"
                ]
                assert len(final) == 1
                assert final[0]["final"] is True
                status = client.status(session)["buffer"]
                assert status["evictions"] >= 1
                assert status["drops"] >= 1
                reply = client.metrics()
                assert reply["buffer_evictions_total"] >= 1
                assert reply["buffer_drops_total"] >= 1
                per_session = reply["sessions"][str(session)]
                assert per_session["evictions"] >= 1
        finally:
            server.stop()

    def test_status_reports_buffer_health_without_telemetry(
        self, dark_server
    ):
        with ServiceClient(port=dark_server.port,
                           timeout=30) as client:
            session = _run_to_end(client, "total")
            buffer = client.status(session)["buffer"]
            assert buffer["drops"] == 0
            assert buffer["evictions"] == 0
            assert buffer["subscribers"] == 1

    def test_status_cache_fields_alias_metrics_surface(self, server,
                                                       client):
        """The loose ``cache``/``scan_share`` status dicts are kept as
        wire-compat aliases; they must agree with the metrics op."""
        _run_to_end(client, "total")
        status = client.status()
        reply = client.metrics()
        assert status["cache"] == reply["cache"]
        assert status["scan_share"] == reply["scan_share"]


class TestTraceOp:
    def test_trace_for_one_session(self, server, client):
        session = _run_to_end(client, "total")
        reply = _raw_request(server.port,
                             {"op": "trace", "session": str(session)})
        assert reply["ok"] is True
        trace = reply["trace"]
        assert trace["session"] == str(session)
        assert trace["plan_hash"]
        assert trace["steps_total"] >= 1
        assert trace["publishes_total"] >= 1
        names = [c["name"] for c in trace["spans"]["children"]]
        assert "submit" in names
        submit = trace["spans"]["children"][names.index("submit")]
        inner = [c["name"] for c in submit["children"]]
        assert "validate" in inner
        assert "optimize" in inner

    def test_trace_listing(self, server, client):
        _run_to_end(client, "total")
        reply = client.trace()
        assert any(t["name"] == "total" for t in reply["traces"])

    def test_unknown_session_trace_rejected(self, server, client):
        with pytest.raises(ServiceError, match="no trace"):
            client.trace(session="s999")


class TestDisabledTelemetry:
    def test_metrics_op_still_answers_always_on_section(
        self, dark_server
    ):
        with ServiceClient(port=dark_server.port,
                           timeout=30) as client:
            session = _run_to_end(client, "total")
            reply = client.metrics()
            assert reply["enabled"] is False
            # Always-on counters survive without a registry.
            assert "cache" in reply and "scan_share" in reply
            assert reply["sessions"][str(session)]["steps"] >= 1
            # Telemetry-only fields are absent, not zero-faked.
            assert "steps_total" not in reply
            assert "series" not in reply

    def test_prometheus_rejected_when_disabled(self, dark_server):
        with ServiceClient(port=dark_server.port,
                           timeout=30) as client:
            with pytest.raises(ServiceError, match="telemetry"):
                client.metrics(format="prometheus")

    def test_trace_rejected_when_disabled(self, dark_server):
        with ServiceClient(port=dark_server.port,
                           timeout=30) as client:
            with pytest.raises(ServiceError, match="telemetry"):
                client.trace()


def _http_get(port, path):
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=30) as sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0].decode(), body.decode()


class TestHttpScrape:
    def test_get_metrics_serves_prometheus_text(self, server, client):
        _run_to_end(client, "total")
        status, body = _http_get(server.port, "/metrics")
        assert status == "HTTP/1.0 200 OK"
        assert "# TYPE repro_steps_total counter" in body
        assert "repro_scan_rows_total 60" in body

    def test_get_unknown_path_404(self, server):
        status, _ = _http_get(server.port, "/nope")
        assert "404" in status

    def test_get_metrics_503_when_disabled(self, dark_server):
        status, body = _http_get(dark_server.port, "/metrics")
        assert "503" in status
        assert "telemetry disabled" in body

    def test_ndjson_still_works_after_http_requests(self, server,
                                                    client):
        _http_get(server.port, "/metrics")
        reply = _raw_request(server.port, {"op": "metrics"})
        assert reply["ok"] is True
