"""Scheduler fault tolerance: retry, backoff, budget, skip-and-degrade.

Uses the deterministic :class:`FaultInjector` to make partition reads
fail on schedule, then asserts the scheduler's recovery contract:
transient errors retry (off-lock backoff) and still produce the exact
fault-free answer; exhausted retries fail or — in skip mode —
quarantine the partition and keep refining a degraded answer.
"""

import dataclasses
import time

import pytest

from repro import F, WakeContext
from repro.errors import QueryError, TransientStorageError
from repro.service import FairShareScheduler, RetryPolicy, SessionState
from repro.storage import Catalog
from repro.testing import FaultInjector

#: Millisecond-scale backoff so retry paths run at full test speed.
FAST = RetryPolicy(max_attempts=3, backoff_base=0.001,
                   backoff_max=0.002)


def _plan(ctx):
    return ctx.table("sales").agg(F.sum("qty").alias("s"), by=["cust"])


def _executor(catalog):
    ctx = WakeContext(catalog)
    return ctx.executor_for(_plan(ctx))


def _reference_final(catalog):
    ctx = WakeContext(catalog)
    return ctx.run(_plan(ctx)).get_final()


def _without_partitions(catalog, table, skipped):
    """A catalog whose ``table`` drops the ``skipped`` partitions —
    ground truth for what a degraded (quarantined) run should answer."""
    meta = catalog.table(table)
    keep = [i for i in range(meta.n_partitions) if i not in skipped]
    reduced = dataclasses.replace(
        meta,
        files=tuple(meta.files[i] for i in keep),
        tuple_counts=tuple(meta.tuple_counts[i] for i in keep),
        stats=(tuple(meta.stats[i] for i in keep)
               if meta.stats is not None else None),
    )
    tables = dict(catalog.tables)
    tables[table] = reduced
    return Catalog(tables=tables, root=catalog.root)


class TestRetrySuccess:
    def test_transient_fault_retries_to_exact_answer(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 2, times=2)  # < max_attempts
        scheduler = FairShareScheduler(retry=FAST)
        session = scheduler.submit(
            _executor(injector.wrap_catalog(catalog)), name="retrying"
        )
        scheduler.run_until_idle()
        assert session.state is SessionState.DONE
        assert session.retries_used == 2
        assert session.degraded() is None
        assert session.status()["retries"] == 2
        expected = _reference_final(catalog)
        assert (session.executor.edf.get_final().column("s").tobytes()
                == expected.column("s").tobytes())

    def test_retry_does_not_skip_or_double_count(self, catalog):
        """Snapshot count and progress match a fault-free run exactly —
        the retried partition is read once, never skipped."""
        injector = FaultInjector()
        injector.plan_fault("sales", 0, times=1)
        injector.plan_fault("sales", 5, times=2)
        scheduler = FairShareScheduler(retry=FAST)
        session = scheduler.submit(
            _executor(injector.wrap_catalog(catalog))
        )
        scheduler.run_until_idle()
        clean = FairShareScheduler()
        baseline = clean.submit(_executor(catalog))
        clean.run_until_idle()
        assert session.state is SessionState.DONE
        got = session.executor.edf
        want = baseline.executor.edf
        assert len(got) == len(want)
        for a, b in zip(got.snapshots, want.snapshots):
            assert dict(a.progress.done) == dict(b.progress.done)

    def test_healthy_sessions_keep_stepping_during_backoff(self,
                                                           catalog):
        """A cooling session must not stall the scheduler: a healthy
        session submitted alongside it completes meanwhile."""
        injector = FaultInjector()
        injector.plan_fault("sales", 0, times=2)
        slow = RetryPolicy(max_attempts=3, backoff_base=0.2,
                           backoff_max=0.2)
        scheduler = FairShareScheduler(retry=slow)
        faulty = scheduler.submit(
            _executor(injector.wrap_catalog(catalog)), name="faulty"
        )
        healthy = scheduler.submit(_executor(catalog), name="healthy")
        start = time.monotonic()
        while not healthy.terminal:
            assert scheduler.run_once() is not None or \
                scheduler.next_ready_in() is not None
            if scheduler.run_once() is None:
                time.sleep(0.005)
        healthy_done_at = time.monotonic() - start
        assert healthy.state is SessionState.DONE
        # the healthy query never waited out the 0.2 s+0.2 s backoffs
        assert healthy_done_at < 0.2
        scheduler.run_until_idle()
        assert faulty.state is SessionState.DONE

    def test_background_loop_retries_to_done(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 1, times=2)
        scheduler = FairShareScheduler(retry=FAST)
        scheduler.start()
        try:
            session = scheduler.submit(
                _executor(injector.wrap_catalog(catalog))
            )
            deadline = time.monotonic() + 10
            while not session.terminal and time.monotonic() < deadline:
                time.sleep(0.01)
            assert session.state is SessionState.DONE
            assert session.retries_used == 2
        finally:
            scheduler.stop()


class TestRetryExhaustion:
    def test_attempts_exhausted_fails_with_sealed_error(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 2, times=FAST.max_attempts)
        scheduler = FairShareScheduler(retry=FAST)
        session = scheduler.submit(
            _executor(injector.wrap_catalog(catalog))
        )
        scheduler.run_until_idle()
        assert session.state is SessionState.FAILED
        assert session.retries_used == FAST.max_attempts - 1
        assert isinstance(session.error, TransientStorageError)
        assert session.buffer.closed
        assert session.buffer.error is session.error
        assert session.status()["error"] is not None

    def test_retry_budget_bounds_total_retries(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 0, times=5)
        policy = RetryPolicy(max_attempts=10, backoff_base=0.001,
                             backoff_max=0.002, retry_budget=2)
        scheduler = FairShareScheduler(retry=policy)
        session = scheduler.submit(
            _executor(injector.wrap_catalog(catalog))
        )
        scheduler.run_until_idle()
        assert session.state is SessionState.FAILED
        assert session.retries_used == 2

    def test_permanent_fault_never_retries(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 3, kind="permanent")
        scheduler = FairShareScheduler(retry=FAST)
        session = scheduler.submit(
            _executor(injector.wrap_catalog(catalog))
        )
        scheduler.run_until_idle()
        assert session.state is SessionState.FAILED
        assert session.retries_used == 0
        assert len(injector.injected) == 1

    def test_no_policy_keeps_fail_fast_semantics(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 0, times=1)
        scheduler = FairShareScheduler()  # no RetryPolicy
        session = scheduler.submit(
            _executor(injector.wrap_catalog(catalog))
        )
        scheduler.run_until_idle()
        assert session.state is SessionState.FAILED
        assert session.retries_used == 0

    def test_dispatch_phase_failure_never_retries(self, catalog):
        """An operator raising mid-dispatch may have half-updated state;
        even a transient error class must fail the session there."""
        ctx = WakeContext(catalog)

        def boom(frame):
            raise TransientStorageError("flaky operator")

        plan = ctx.table("sales").map_partitions(
            boom, schema=ctx.table("sales").schema
        )
        scheduler = FairShareScheduler(retry=FAST)
        session = scheduler.submit(ctx.executor_for(plan))
        scheduler.run_until_idle()
        assert session.state is SessionState.FAILED
        assert session.retries_used == 0
        assert not session.executor.step_retry_safe


class TestSkipAndDegrade:
    SKIP_POLICY = RetryPolicy(max_attempts=1, backoff_base=0.0,
                              on_partition_error="skip")

    def test_quarantine_reports_degraded_and_matches_reduced(
        self, catalog
    ):
        injector = FaultInjector()
        injector.plan_fault("sales", 4, kind="permanent")
        scheduler = FairShareScheduler(retry=self.SKIP_POLICY)
        session = scheduler.submit(
            _executor(injector.wrap_catalog(catalog)), name="degraded"
        )
        scheduler.run_until_idle()
        assert session.state is SessionState.DONE
        degraded = session.degraded()
        assert degraded is not None
        assert degraded["rows_lost"] == 10
        (record,) = degraded["partitions"]
        assert record["table"] == "sales" and record["index"] == 4
        assert degraded["last_error"] is not None
        assert session.status()["degraded"] == degraded
        # the degraded final == fault-free final minus exactly that
        # partition's rows
        expected = _reference_final(
            _without_partitions(catalog, "sales", {4})
        )
        got = session.executor.edf.get_final()
        assert got.column("s").tobytes() == expected.column("s").tobytes()

    def test_multiple_quarantines_accumulate(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 1, kind="permanent")
        injector.plan_fault("sales", 5, kind="permanent")
        scheduler = FairShareScheduler(retry=self.SKIP_POLICY)
        session = scheduler.submit(
            _executor(injector.wrap_catalog(catalog))
        )
        scheduler.run_until_idle()
        assert session.state is SessionState.DONE
        assert session.degraded()["rows_lost"] == 20
        expected = _reference_final(
            _without_partitions(catalog, "sales", {1, 5})
        )
        got = session.executor.edf.get_final()
        assert got.column("s").tobytes() == expected.column("s").tobytes()

    def test_skip_mode_still_retries_transients_first(self, catalog):
        """Transient faults within the attempt budget recover fully —
        skip only triggers once retries are exhausted."""
        injector = FaultInjector()
        injector.plan_fault("sales", 0, times=1)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.001,
                             backoff_max=0.002,
                             on_partition_error="skip")
        scheduler = FairShareScheduler(retry=policy)
        session = scheduler.submit(
            _executor(injector.wrap_catalog(catalog))
        )
        scheduler.run_until_idle()
        assert session.state is SessionState.DONE
        assert session.degraded() is None  # recovered, nothing lost
        expected = _reference_final(catalog)
        got = session.executor.edf.get_final()
        assert got.column("s").tobytes() == expected.column("s").tobytes()


class TestControlPlaneInteraction:
    def test_keyboard_interrupt_propagates_and_session_survives(
        self, catalog
    ):
        """A Ctrl-C during a step must re-raise, not melt the session
        into FAILED — and the session must still be runnable after."""
        scheduler = FairShareScheduler(retry=FAST)
        session = scheduler.submit(_executor(catalog))
        fired = []

        def interrupt(executor):
            if not fired:
                fired.append(True)
                raise KeyboardInterrupt

        session.executor.before_step = interrupt
        with pytest.raises(KeyboardInterrupt):
            scheduler.run_once()
        assert session.state is not SessionState.FAILED
        scheduler.run_until_idle()
        assert session.state is SessionState.DONE

    def test_cancel_while_cooling_is_honored(self, catalog):
        injector = FaultInjector()
        injector.plan_fault("sales", 0, times=2)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.05,
                             backoff_max=0.05)
        scheduler = FairShareScheduler(retry=policy)
        session = scheduler.submit(
            _executor(injector.wrap_catalog(catalog))
        )
        while scheduler.run_once() is not None:
            pass  # drains until the session is cooling
        assert scheduler.next_ready_in() is not None
        scheduler.cancel(session.session_id)
        assert scheduler.next_ready_in() is None  # stale entry dropped
        scheduler.run_until_idle()  # returns without waiting
        assert session.state is SessionState.CANCELLED


class TestPolicy:
    def test_backoff_is_deterministic_capped_exponential(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0,
                             backoff_max=0.15)
        assert policy.backoff(1) == pytest.approx(0.05)
        assert policy.backoff(2) == pytest.approx(0.10)
        assert policy.backoff(3) == pytest.approx(0.15)  # capped
        assert policy.backoff(9) == pytest.approx(0.15)

    def test_validation(self):
        with pytest.raises(QueryError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(QueryError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(QueryError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(QueryError):
            RetryPolicy(retry_budget=-1)
        with pytest.raises(QueryError):
            RetryPolicy(on_partition_error="explode")
        with pytest.raises(QueryError):
            RetryPolicy().backoff(0)
