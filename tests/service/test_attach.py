"""Result-cache attach semantics: an identical submit replays an
in-flight (or retained) session instead of re-executing.

Scheduler-level tests drive ``QueryService.submit`` +
``scheduler.run_once`` by hand (the scheduler thread is never started),
so exactly how many steps ran before each attach is deterministic.
Wire-level tests cover the same surface through
``ServiceClient``/:class:`SessionHandle` over a real socket.
"""

import pytest

from repro import ExecutionOptions, F, WakeContext, col
from repro.service import (
    AttachedSession,
    QueryService,
    QuerySession,
    ServiceClient,
    SessionHandle,
    SessionState,
    SnapshotServer,
)
from repro.testing.faults import FaultInjector


def _plans():
    return {
        "sum_by_cust": lambda ctx, **p: ctx.table("sales").agg(
            F.sum("qty").alias("s"), by=["cust"]
        ),
        "total": lambda ctx, **p: ctx.table("sales").sum("qty"),
        "filtered": lambda ctx, threshold=30: (
            ctx.table("sales").filter(col("qty") > threshold)
            .agg(F.count(None).alias("n"))
        ),
    }


def _service(catalog, **service_kwargs):
    ctx = WakeContext(catalog)
    return QueryService(
        ctx, plans=_plans(),
        options=ExecutionOptions(result_cache=True),
        **service_kwargs,
    )


def drain(session):
    """Every snapshot in the session's buffer (never blocks: only used
    once the session is terminal)."""
    assert session.terminal
    return list(iter(session.subscribe()))


class TestAttach:
    def test_midflight_attach_replays_prefix(self, catalog):
        service = _service(catalog)
        primary = service.submit("sum_by_cust")
        assert isinstance(primary, QuerySession)
        for _ in range(3):
            service.scheduler.run_once()
        attached = service.submit("sum_by_cust")
        assert isinstance(attached, AttachedSession)
        assert attached.primary is primary
        # The already-produced prefix was seeded at attach time ...
        assert attached.buffer.retained() == primary.buffer.retained()
        while service.scheduler.run_once() is not None:
            pass
        assert primary.state is SessionState.DONE
        assert attached.state is SessionState.DONE
        # ... and the full replay is the *same* snapshot objects, in
        # order — byte-identical by construction.
        got, expected = drain(attached), drain(primary)
        assert len(got) == len(expected) > 0
        assert all(a is b for a, b in zip(got, expected))
        assert got[-1].is_final

    def test_attach_after_done_replays_everything(self, catalog):
        service = _service(catalog)
        primary = service.submit("total")
        while service.scheduler.run_once() is not None:
            pass
        attached = service.submit("total")
        assert isinstance(attached, AttachedSession)
        assert attached.state is SessionState.DONE
        assert all(a is b for a, b in
                   zip(drain(attached), drain(primary)))
        # The cold submit is the one miss; the duplicate is the hit.
        assert service.cache_stats() == {
            "hits": 1, "misses": 1, "entries": 1,
        }

    def test_status_reports_attach_provenance(self, catalog):
        service = _service(catalog)
        primary = service.submit("total")
        while service.scheduler.run_once() is not None:
            pass
        attached = service.submit("total")
        status = attached.status()
        assert status["cache_hit"] is True
        assert status["attached_to"] == primary.session_id
        assert status["steps"] == primary.steps
        assert status["snapshots"] == len(primary.buffer)
        assert primary.status()["cache_hit"] is False

    def test_different_params_do_not_attach(self, catalog):
        service = _service(catalog)
        a = service.submit("filtered", params={"threshold": 30})
        b = service.submit("filtered", params={"threshold": 45})
        assert isinstance(b, QuerySession)
        assert a.plan_hash != b.plan_hash

    def test_different_parallelism_does_not_attach(self, catalog):
        service = _service(catalog)
        a = service.submit("sum_by_cust")
        b = service.submit("sum_by_cust", parallelism=2)
        assert isinstance(b, QuerySession)
        assert a.plan_hash != b.plan_hash

    def test_distinct_plans_never_collide(self, catalog):
        service = _service(catalog)
        service.submit("total")
        other = service.submit("sum_by_cust")
        assert isinstance(other, QuerySession)
        assert service.cache_stats()["entries"] == 2


class TestLifecycle:
    def test_cancel_on_attached_detaches_only(self, catalog):
        service = _service(catalog)
        primary = service.submit("sum_by_cust")
        service.scheduler.run_once()
        attached = service.submit("sum_by_cust")
        state = service.scheduler.cancel(attached.session_id)
        assert state is SessionState.CANCELLED
        assert attached not in primary.fanout
        # The primary and the cache entry are untouched.
        while service.scheduler.run_once() is not None:
            pass
        assert primary.state is SessionState.DONE
        assert service.submit("sum_by_cust").status()["cache_hit"]

    def test_primary_cancel_propagates(self, catalog):
        service = _service(catalog)
        primary = service.submit("sum_by_cust")
        service.scheduler.run_once()
        attached = service.submit("sum_by_cust")
        service.scheduler.cancel(primary.session_id)
        assert attached.state is SessionState.CANCELLED
        assert attached.buffer.closed

    def test_primary_failure_propagates_same_error(self, catalog):
        injector = FaultInjector(seed=11)
        injector.plan_fault("sales", 1, "permanent", times=1)
        faulty = injector.wrap_catalog(catalog)
        service = QueryService(
            WakeContext(faulty), plans=_plans(),
            options=ExecutionOptions(result_cache=True),
        )
        primary = service.submit("sum_by_cust")
        service.scheduler.run_once()
        attached = service.submit("sum_by_cust")
        while service.scheduler.run_once() is not None:
            pass
        assert primary.state is SessionState.FAILED
        assert attached.state is SessionState.FAILED
        assert attached.error is primary.error
        assert attached.subscribe().error is primary.error

    def test_pause_resume_are_noops_on_attached(self, catalog):
        service = _service(catalog)
        service.submit("sum_by_cust")
        service.scheduler.run_once()
        attached = service.submit("sum_by_cust")
        assert service.scheduler.pause(attached.session_id) \
            is SessionState.RUNNING
        assert service.scheduler.resume(attached.session_id) \
            is SessionState.RUNNING

    def test_detach_is_idempotent_after_terminal(self, catalog):
        service = _service(catalog)
        service.submit("total")
        while service.scheduler.run_once() is not None:
            pass
        attached = service.submit("total")
        attached.detach()  # already DONE: stays DONE
        assert attached.state is SessionState.DONE


class TestCacheHygiene:
    def test_evicted_prefix_is_a_miss(self, catalog):
        service = _service(catalog, buffer_size=1)
        primary = service.submit("sum_by_cust")
        while service.scheduler.run_once() is not None:
            pass
        assert primary.buffer.evicted
        fresh = service.submit("sum_by_cust")
        # A replay could not be byte-identical, so it re-executes (and
        # the entry is re-primed to the fresh session).
        assert isinstance(fresh, QuerySession)
        stats = service.cache_stats()
        assert stats == {"hits": 0, "misses": 2, "entries": 1}

    def test_cancelled_entry_self_heals(self, catalog):
        service = _service(catalog)
        primary = service.submit("total")
        service.scheduler.cancel(primary.session_id)
        fresh = service.submit("total")
        assert isinstance(fresh, QuerySession)
        assert fresh is not primary
        assert service.cache_stats()["misses"] == 2
        while service.scheduler.run_once() is not None:
            pass
        # The re-primed entry serves the next identical submit.
        assert service.submit("total").status()["cache_hit"]

    def test_pruned_entry_self_heals(self, catalog):
        service = _service(catalog)
        service.submit("total")
        while service.scheduler.run_once() is not None:
            pass
        service.scheduler.prune()
        fresh = service.submit("total")
        assert isinstance(fresh, QuerySession)
        assert service.cache_stats()["misses"] == 2

    def test_paused_submit_bypasses_cache(self, catalog):
        service = _service(catalog)
        primary = service.submit("total")
        while service.scheduler.run_once() is not None:
            pass
        paused = service.submit("total", paused=True)
        assert isinstance(paused, QuerySession)
        assert paused.state is SessionState.PAUSED
        # Bypassed entirely: no hit, no extra miss, no new entry
        # (the one miss is the primary's cold submit).
        assert service.cache_stats() == {
            "hits": 0, "misses": 1, "entries": 1,
        }
        assert (service._result_cache and next(iter(
            service._result_cache.values())) == primary.session_id)

    def test_result_cache_off_never_attaches(self, catalog):
        service = QueryService(WakeContext(catalog), plans=_plans())
        service.submit("total")
        again = service.submit("total")
        assert isinstance(again, QuerySession)
        assert service.cache_stats()["entries"] == 0

    def test_invalidate_cache(self, catalog):
        service = _service(catalog)
        service.submit("total")
        service.submit("sum_by_cust")
        assert service.invalidate_cache() == 2
        assert service.cache_stats()["entries"] == 0
        fresh = service.submit("total")
        assert isinstance(fresh, QuerySession)


class TestWire:
    @pytest.fixture
    def server(self, catalog):
        ctx = WakeContext(catalog)
        service = QueryService(
            ctx, plans=_plans(),
            options=ExecutionOptions(scan_share=True,
                                     result_cache=True),
        )
        server = SnapshotServer(service, port=0).start()
        yield server
        server.stop()

    def test_handle_is_a_string_and_more(self, server):
        with ServiceClient(port=server.port, timeout=30) as client:
            handle = client.submit("total")
            assert isinstance(handle, SessionHandle)
            assert isinstance(handle, str)
            assert handle.cache_hit is False
            # Bare-string call sites keep working.
            assert client.status(str(handle))["session"] == handle
            assert handle in {str(handle)}
            events = list(handle.subscribe())
            assert events[-1]["event"] == "end"
            assert handle.status()["state"] == "done"

    def test_duplicate_submit_attaches_over_the_wire(self, server):
        with ServiceClient(port=server.port, timeout=30) as client:
            first = client.submit("sum_by_cust")
            done = list(first.subscribe(include_frame=True))
            second = client.submit("sum_by_cust")
            assert second.cache_hit is True
            assert second.attached_to == str(first)
            assert second != first  # its own session id
            replay = list(second.subscribe(include_frame=True))
            # The replayed stream differs only in the session id field.
            def norm(events):
                return [
                    {k: v for k, v in e.items()
                     if k not in ("session", "name")}
                    for e in events
                ]
            assert norm(replay) == norm(done)

    def test_per_submit_result_cache_override(self, server):
        with ServiceClient(port=server.port, timeout=30) as client:
            first = client.submit("total", result_cache=False)
            list(first.subscribe())
            second = client.submit("total", result_cache=False)
            assert second.cache_hit is False
            assert second != first

    def test_status_reports_cache_and_scan_share(self, server):
        with ServiceClient(port=server.port, timeout=30) as client:
            first = client.submit("sum_by_cust")
            list(first.subscribe())
            client.submit("sum_by_cust")
            listing = client.status()
            assert listing["cache"]["hits"] == 1
            assert set(listing["scan_share"]) >= {
                "physical_reads", "shared_hits",
            }
            by_id = {s["session"]: s for s in listing["sessions"]}
            assert by_id[str(first)]["cache_hit"] is False
