"""ScanShareManager unit tests: one physical read per (table,
partition, column-superset), refcounted fan-out, LRU bounding, and the
failure contract (a failed read is never published).

All tests drive the manager directly through ``subscribe``/``fetch``/
``release``/``close`` — the same seam :class:`PartitionStream` uses —
against the small ``sales`` table (6 partitions of 10 rows).
"""

import pytest

from repro.errors import TransientStorageError
from repro.service import ScanShareManager
from repro.testing.faults import FaultInjector


def frames_equal(a, b):
    """Byte-level equality including column order."""
    if a.column_names != b.column_names or a.n_rows != b.n_rows:
        return False
    return all(
        a.column(name).tobytes() == b.column(name).tobytes()
        for name in a.column_names
    )


@pytest.fixture
def sales(catalog):
    return catalog.table("sales")


class TestSharing:
    def test_second_fetch_is_a_hit(self, sales):
        manager = ScanShareManager()
        a = manager.subscribe(sales, range(6), None)
        b = manager.subscribe(sales, range(6), None)
        direct = sales.read_partition(0)
        got_a = a.fetch(0)
        got_b = b.fetch(0)
        assert frames_equal(got_a, direct)
        assert got_b is got_a  # fan-out shares the reference
        stats = manager.stats()
        assert stats["physical_reads"] == 1
        assert stats["shared_hits"] == 1

    def test_last_consumer_evicts(self, sales):
        manager = ScanShareManager()
        a = manager.subscribe(sales, range(6), None)
        b = manager.subscribe(sales, range(6), None)
        a.fetch(0)
        assert manager.stats()["entries"] == 1
        b.fetch(0)
        assert manager.stats()["entries"] == 0

    def test_no_publish_without_other_waiters(self, sales):
        manager = ScanShareManager()
        solo = manager.subscribe(sales, range(6), None)
        solo.fetch(0)
        # Nobody else pends partition 0, so nothing is retained.
        assert manager.stats()["entries"] == 0

    def test_all_partitions_shared(self, sales):
        manager = ScanShareManager()
        subs = [manager.subscribe(sales, range(6), None)
                for _ in range(4)]
        for index in range(6):
            frames = [sub.fetch(index) for sub in subs]
            assert all(f is frames[0] for f in frames)
        for sub in subs:
            sub.close()
        stats = manager.stats()
        assert stats["physical_reads"] == 6
        assert stats["shared_hits"] == 18
        assert stats["entries"] == 0
        assert stats["subscribers"] == 0

    def test_distinct_tables_do_not_share(self, catalog):
        manager = ScanShareManager()
        a = manager.subscribe(catalog.table("sales"), range(6), None)
        b = manager.subscribe(
            catalog.table("customers"), range(1), None
        )
        a.fetch(0)
        b.fetch(0)
        assert manager.stats()["physical_reads"] == 2
        assert manager.stats()["shared_hits"] == 0


class TestColumnUnion:
    def test_union_read_serves_both_projections(self, sales):
        manager = ScanShareManager()
        a = manager.subscribe(sales, range(6), ("qty",))
        b = manager.subscribe(sales, range(6), ("okey",))
        got_a = a.fetch(0)
        got_b = b.fetch(0)
        # Each sees exactly its own projection, byte-identical to a
        # direct projected read.
        assert frames_equal(got_a, sales.read_partition(
            0, columns=("qty",)))
        assert frames_equal(got_b, sales.read_partition(
            0, columns=("okey",)))
        assert manager.stats()["physical_reads"] == 1
        assert manager.stats()["shared_hits"] == 1

    def test_projection_preserves_requested_order(self, sales):
        manager = ScanShareManager()
        a = manager.subscribe(sales, range(6), ("qty", "okey"))
        b = manager.subscribe(sales, range(6), ("qty", "okey"))
        a.fetch(0)
        got = b.fetch(0)  # the hit path projects the superset frame
        assert got.column_names == ("qty", "okey")
        # A direct projected read normalizes to schema order; the
        # shared fetch honours the subscriber's requested order with
        # the same bytes per column.
        direct = sales.read_partition(0, columns=("qty", "okey"))
        assert frames_equal(got, direct.select(["qty", "okey"]))

    def test_full_schema_subscriber_widens_to_none(self, sales):
        manager = ScanShareManager()
        a = manager.subscribe(sales, range(6), ("qty",))
        manager.subscribe(sales, range(6), None)
        got = a.fetch(0)  # union must be the full schema
        assert got.column_names == ("qty",)
        entry = next(iter(manager._entries.values()))
        assert entry.columns is None

    def test_narrow_entry_does_not_cover_wider_need(self, sales):
        manager = ScanShareManager()
        a = manager.subscribe(sales, range(6), ("qty",))
        a.fetch(0)  # publishes nothing (no other subscriber yet)
        b = manager.subscribe(sales, range(6), None)
        got = b.fetch(0)  # no usable entry -> its own physical read
        assert got.column_names == sales.schema.names
        assert manager.stats()["physical_reads"] == 2


class TestReleaseAndClose:
    def test_release_stops_waiting_and_widening(self, sales):
        manager = ScanShareManager()
        a = manager.subscribe(sales, range(6), ("qty",))
        b = manager.subscribe(sales, range(6), ("region",))
        b.release(0)  # e.g. quarantined by b's session
        got = a.fetch(0)
        # b no longer pends partition 0: nothing is retained for it and
        # the union excluded its column.
        assert manager.stats()["entries"] == 0
        assert frames_equal(got, sales.read_partition(
            0, columns=("qty",)))

    def test_close_releases_all_pending(self, sales):
        manager = ScanShareManager()
        a = manager.subscribe(sales, range(6), None)
        b = manager.subscribe(sales, range(6), None)
        a.fetch(0)  # published, waiting on b
        assert manager.stats()["entries"] == 1
        b.close()
        stats = manager.stats()
        assert stats["entries"] == 0
        assert stats["subscribers"] == 1
        b.close()  # idempotent
        a.close()
        assert manager.stats()["subscribers"] == 0


class TestLru:
    def test_eviction_falls_back_to_own_read(self, sales):
        manager = ScanShareManager(max_cached=1)
        a = manager.subscribe(sales, range(6), None)
        b = manager.subscribe(sales, range(6), None)
        a.fetch(0)
        a.fetch(1)  # pool cap 1: partition 0's entry is evicted
        stats = manager.stats()
        assert stats["lru_evictions"] == 1
        assert stats["entries"] == 1
        direct = sales.read_partition(0)
        assert frames_equal(b.fetch(0), direct)  # a miss, not an error
        assert frames_equal(b.fetch(1), sales.read_partition(1))
        stats = manager.stats()
        assert stats["physical_reads"] == 3
        assert stats["shared_hits"] == 1

    def test_max_cached_validated(self):
        with pytest.raises(ValueError, match="max_cached must be >= 1"):
            ScanShareManager(max_cached=0)


class TestFailureContract:
    def test_failed_read_is_not_published_and_is_retryable(
        self, catalog
    ):
        injector = FaultInjector(seed=3)
        injector.plan_fault("sales", 0, "transient", times=1)
        faulty = injector.wrap_catalog(catalog).table("sales")
        manager = ScanShareManager()
        a = manager.subscribe(faulty, range(6), None)
        b = manager.subscribe(faulty, range(6), None)
        with pytest.raises(TransientStorageError):
            a.fetch(0)
        stats = manager.stats()
        assert stats["physical_reads"] == 0
        assert stats["entries"] == 0
        # The retry succeeds and b then shares the published frame.
        got = a.fetch(0)
        assert b.fetch(0) is got
        assert manager.stats()["shared_hits"] == 1

    def test_peer_fetch_unaffected_by_anothers_fault(self, catalog):
        injector = FaultInjector(seed=3)
        injector.plan_fault("sales", 2, "transient", times=1)
        faulty = injector.wrap_catalog(catalog).table("sales")
        manager = ScanShareManager()
        a = manager.subscribe(faulty, range(6), None)
        b = manager.subscribe(faulty, range(6), None)
        with pytest.raises(TransientStorageError):
            a.fetch(2)
        # b pulls a different partition meanwhile: unaffected.
        got = b.fetch(1)
        assert frames_equal(got, catalog.table("sales")
                            .read_partition(1))
