"""Server smoke tests: the NDJSON wire protocol over a real socket."""

import json
import socket

import pytest

from repro import F, WakeContext, col
from repro.errors import ServiceError
from repro.service import QueryService, ServiceClient, SnapshotServer


def _plans():
    return {
        "sum_by_cust": lambda ctx, **p: ctx.table("sales").agg(
            F.sum("qty").alias("s"), by=["cust"]
        ),
        "total": lambda ctx, **p: ctx.table("sales").sum("qty"),
        "filtered": lambda ctx, threshold=30: (
            ctx.table("sales").filter(col("qty") > threshold)
            .agg(F.count(None).alias("n"))
        ),
    }


@pytest.fixture
def server(catalog):
    ctx = WakeContext(catalog)
    service = QueryService(ctx, plans=_plans())
    server = SnapshotServer(service, port=0).start()
    yield server
    server.stop()


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port, timeout=30) as client:
        yield client


class TestSubmitSubscribe:
    def test_submit_subscribe_to_final(self, server, client, catalog):
        session = client.submit("sum_by_cust")
        events = list(client.subscribe(session))
        assert events[-1]["event"] == "end"
        assert events[-1]["state"] == "done"
        snapshots = [e for e in events if e["event"] == "snapshot"]
        assert snapshots, "no snapshots streamed"
        assert snapshots[-1]["final"] is True
        ts = [e["t"] for e in snapshots]
        assert ts == sorted(ts)
        # the streamed final matches a direct local run byte-for-byte
        ctx = WakeContext(catalog)
        expected = ctx.run(_plans()["sum_by_cust"](ctx)).get_final()
        final_cols = snapshots[-1]["columns"]
        assert final_cols["cust"] == expected.column("cust").tolist()
        assert final_cols["s"] == pytest.approx(
            expected.column("s").tolist())

    def test_params_and_priority_accepted(self, server, client):
        session = client.submit("filtered", params={"threshold": 45},
                                priority=2.5)
        events = list(client.subscribe(session))
        assert events[-1]["state"] == "done"
        status = client.status(session)
        assert status["priority"] == 2.5

    def test_subscribe_without_frames(self, server, client):
        session = client.submit("total")
        events = list(client.subscribe(session, include_frame=False))
        snapshots = [e for e in events if e["event"] == "snapshot"]
        assert snapshots and all("columns" not in e for e in snapshots)

    def test_late_subscriber_replays_full_refinement(self, server,
                                                     client):
        session = client.submit("sum_by_cust")
        first = list(client.subscribe(session))  # runs to completion
        again = list(client.subscribe(session))  # replay after DONE
        assert [e.get("sequence") for e in again] == \
            [e.get("sequence") for e in first]

    def test_status_lists_sessions(self, server, client):
        a = client.submit("total")
        b = client.submit("sum_by_cust")
        listing = client.status()
        ids = {s["session"] for s in listing["sessions"]}
        assert {a, b} <= ids


class TestControlOps:
    def test_pause_resume_cancel_lifecycle(self, server, catalog):
        with ServiceClient(port=server.port, timeout=30) as control:
            # pause immediately: the scheduler may or may not have
            # stepped yet, but after the ack no further steps run
            session = control.submit("sum_by_cust", priority=0.001)
            state = control.pause(session)
            assert state in ("paused", "done")
            if state == "paused":
                assert control.resume(session) in ("running",
                                                   "submitted")
            events = list(control.subscribe(session))
            assert events[-1]["state"] == "done"

    def test_paused_submit_runs_only_after_resume(self, server,
                                                  catalog):
        with ServiceClient(port=server.port, timeout=30) as control:
            session = control.submit("sum_by_cust", paused=True)
            assert control.status(session)["state"] == "paused"
            assert control.status(session)["steps"] == 0
            assert control.resume(session) == "submitted"
            events = list(control.subscribe(session))
            assert events[-1]["state"] == "done"

    def test_cancel_ends_subscription(self, server, catalog):
        with ServiceClient(port=server.port, timeout=30) as control:
            # paused submission: the query cannot finish (or even
            # start) before the cancel lands — deterministic
            session = control.submit("sum_by_cust", paused=True)
            with ServiceClient(port=server.port, timeout=30) as sub:
                stream = sub.subscribe(session)
                assert control.cancel(session) == "cancelled"
                events = list(stream)
                assert events[-1]["event"] == "end"
                assert events[-1]["state"] == "cancelled"
            assert control.status(session)["state"] == "cancelled"

    def test_cancelled_session_releases_executor(self, server, catalog):
        with ServiceClient(port=server.port, timeout=30) as control:
            session = control.submit("sum_by_cust", paused=True)
            control.cancel(session)
            live = server.service.scheduler.get(session)
            assert live.executor.closed
            assert live.executor.graph is None


class TestPrune:
    def test_prune_drops_finished_sessions(self, server, client):
        a = client.submit("total")
        b = client.submit("sum_by_cust")
        list(client.subscribe(a))
        list(client.subscribe(b))  # both DONE
        removed = client.prune(keep_latest=1)
        assert len(removed) == 1
        remaining = {s["session"]
                     for s in client.status()["sessions"]}
        assert len(remaining) == 1
        with pytest.raises(ServiceError, match="no session"):
            client.status(removed[0])

    def test_prune_never_touches_running_sessions(self, server,
                                                  client):
        session = client.submit("sum_by_cust", paused=True)
        assert client.prune() == []
        assert client.status(session)["state"] == "paused"
        client.cancel(session)


class TestProtocolErrors:
    def test_bad_field_types_get_error_reply(self, server, client):
        """Untrusted wire fields must produce an error reply, not kill
        the connection."""
        with pytest.raises(ServiceError):
            client.submit("total", priority="high")
        with pytest.raises(ServiceError):
            client.submit("filtered", params={"no_such_param": 1})
        # the connection survives both
        assert client.status()["ok"] is True

    def test_unknown_query(self, server, client):
        with pytest.raises(ServiceError, match="unknown query"):
            client.submit("nope")

    def test_unknown_session(self, server, client):
        with pytest.raises(ServiceError, match="no session"):
            client.status("s999")

    def test_unknown_op_and_bad_json(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=30) as sock:
            file = sock.makefile("rwb")
            file.write(b'{"op": "frobnicate"}\n')
            file.flush()
            reply = json.loads(file.readline())
            assert reply["ok"] is False
            assert "unknown op" in reply["error"]
            file.write(b'this is not json\n')
            file.flush()
            reply = json.loads(file.readline())
            assert reply["ok"] is False
            # the connection survives both errors
            file.write(b'{"op": "status"}\n')
            file.flush()
            assert json.loads(file.readline())["ok"] is True
