"""FairShareScheduler: fairness, priorities, pause/resume/cancel."""

import threading
import time

import pytest

from repro import F, WakeContext
from repro.errors import QueryError
from repro.service import FairShareScheduler, SessionState


def _executor(catalog):
    ctx = WakeContext(catalog)
    plan = ctx.table("sales").agg(F.sum("qty").alias("s"), by=["cust"])
    return ctx.executor_for(plan)


def _reference_final(catalog):
    ctx = WakeContext(catalog)
    plan = ctx.table("sales").agg(F.sum("qty").alias("s"), by=["cust"])
    return ctx.run(plan).get_final()


class TestScheduling:
    def test_all_queries_complete(self, catalog):
        scheduler = FairShareScheduler()
        sessions = [
            scheduler.submit(_executor(catalog), name=f"q{i}")
            for i in range(3)
        ]
        scheduler.run_until_idle()
        expected = _reference_final(catalog)
        for session in sessions:
            assert session.state is SessionState.DONE
            final = session.executor.edf.get_final()
            assert final.column("s").tobytes() == \
                expected.column("s").tobytes()

    def test_equal_priorities_interleave_fairly(self, catalog):
        scheduler = FairShareScheduler()
        a = scheduler.submit(_executor(catalog), name="a")
        b = scheduler.submit(_executor(catalog), name="b")
        order = []
        while (s := scheduler.run_once()) is not None:
            order.append(s.session_id)
        # while both run, neither gets two steps in a row
        both_active = order[: 2 * min(a.steps, b.steps)]
        for first, second in zip(both_active, both_active[1:]):
            assert first != second

    def test_priority_weights_step_shares(self, catalog):
        """A priority-3 session gets ~3x the steps of a priority-1 one
        while both are runnable (stride scheduling)."""
        scheduler = FairShareScheduler()
        low = scheduler.submit(_executor(catalog), name="low",
                               priority=1.0)
        high = scheduler.submit(_executor(catalog), name="high",
                                priority=3.0)
        taken = {low.session_id: 0, high.session_id: 0}
        while (s := scheduler.run_once()) is not None:
            if low.terminal or high.terminal:
                break
            taken[s.session_id] += 1
        assert taken[high.session_id] >= 2 * taken[low.session_id]
        scheduler.run_until_idle()
        assert low.state is SessionState.DONE
        assert high.state is SessionState.DONE

    def test_deterministic_interleaving(self, catalog):
        def trace():
            scheduler = FairShareScheduler()
            for i, priority in enumerate([1.0, 2.0, 1.5]):
                scheduler.submit(_executor(catalog), name=f"q{i}",
                                 priority=priority)
            order = []
            while (s := scheduler.run_once()) is not None:
                order.append(s.name)
            return order

        assert trace() == trace()

    def test_unknown_session_raises(self, catalog):
        scheduler = FairShareScheduler()
        with pytest.raises(QueryError):
            scheduler.pause("nope")


class TestPauseResumeCancel:
    def test_pause_stops_stepping(self, catalog):
        scheduler = FairShareScheduler()
        a = scheduler.submit(_executor(catalog), name="a")
        b = scheduler.submit(_executor(catalog), name="b")
        scheduler.run_once()
        scheduler.run_once()
        assert scheduler.pause(a.session_id) is SessionState.PAUSED
        paused_steps = a.steps
        scheduler.run_until_idle()
        assert a.steps == paused_steps
        assert a.state is SessionState.PAUSED
        assert b.state is SessionState.DONE

    def test_resume_completes_with_correct_answer(self, catalog):
        scheduler = FairShareScheduler()
        a = scheduler.submit(_executor(catalog), name="a")
        scheduler.run_once()
        scheduler.pause(a.session_id)
        scheduler.run_until_idle()
        assert a.state is SessionState.PAUSED
        assert scheduler.resume(a.session_id) in (
            SessionState.RUNNING, SessionState.SUBMITTED
        )
        scheduler.run_until_idle()
        assert a.state is SessionState.DONE
        expected = _reference_final(catalog)
        assert (a.executor.edf.get_final().column("s").tobytes()
                == expected.column("s").tobytes())

    def test_resume_noop_on_running(self, catalog):
        scheduler = FairShareScheduler()
        a = scheduler.submit(_executor(catalog))
        assert scheduler.resume(a.session_id) is SessionState.SUBMITTED

    def test_paused_submission_waits_for_resume(self, catalog):
        scheduler = FairShareScheduler()
        a = scheduler.submit(_executor(catalog), paused=True)
        scheduler.run_until_idle()
        assert a.state is SessionState.PAUSED
        assert a.steps == 0
        scheduler.resume(a.session_id)
        scheduler.run_until_idle()
        assert a.state is SessionState.DONE

    def test_cancel_releases_executor_and_seals_buffer(self, catalog):
        scheduler = FairShareScheduler()
        a = scheduler.submit(_executor(catalog), name="a")
        for _ in range(3):
            scheduler.run_once()
        produced = len(a.buffer)
        assert scheduler.cancel(a.session_id) is SessionState.CANCELLED
        assert a.executor.closed
        assert a.executor.graph is None  # operator state released
        assert a.buffer.closed
        scheduler.run_until_idle()
        assert a.steps == 3
        # subscribers still see the snapshots produced before cancel
        assert len(list(a.subscribe())) == produced

    def test_cancel_is_idempotent_and_terminal(self, catalog):
        scheduler = FairShareScheduler()
        a = scheduler.submit(_executor(catalog))
        scheduler.cancel(a.session_id)
        assert scheduler.cancel(a.session_id) is SessionState.CANCELLED
        assert scheduler.resume(a.session_id) is SessionState.CANCELLED

    def test_pause_then_cancel(self, catalog):
        scheduler = FairShareScheduler()
        a = scheduler.submit(_executor(catalog))
        scheduler.run_once()
        scheduler.pause(a.session_id)
        assert scheduler.cancel(a.session_id) is SessionState.CANCELLED


class TestFailure:
    def test_failed_session_records_error(self, catalog):
        ctx = WakeContext(catalog)

        def boom(frame):
            raise RuntimeError("injected service failure")

        plan = ctx.table("sales").map_partitions(
            boom, schema=ctx.table("sales").schema
        )
        scheduler = FairShareScheduler()
        healthy = scheduler.submit(_executor(catalog), name="ok")
        failing = scheduler.submit(ctx.executor_for(plan), name="bad")
        scheduler.run_until_idle()
        assert failing.state is SessionState.FAILED
        assert isinstance(failing.error, RuntimeError)
        assert failing.buffer.closed
        # the failure is isolated: the healthy query still completes
        assert healthy.state is SessionState.DONE


class TestBackgroundThread:
    def test_background_loop_drains_submissions(self, catalog):
        scheduler = FairShareScheduler()
        scheduler.start()
        try:
            sessions = [
                scheduler.submit(_executor(catalog), name=f"q{i}")
                for i in range(3)
            ]
            deadline = time.monotonic() + 10
            while (not all(s.terminal for s in sessions)
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert all(s.state is SessionState.DONE for s in sessions)
        finally:
            scheduler.stop()
        assert not any(
            t.name == "wake-scheduler" and t.is_alive()
            for t in threading.enumerate()
        )
