"""Failure surfacing on the wire: FAILED sessions end their snapshot
streams with a terminal error event, and a client read timeout turns a
hung server into a :class:`ServiceError` instead of a forever-block."""

import pytest

from repro import F, WakeContext, col
from repro.errors import ServiceError
from repro.service import QueryService, ServiceClient, SnapshotServer


def _plans():
    def failing(ctx, **params):
        def boom(frame):
            # sales partitions are 10 rows of okey sorted ascending;
            # partitions 0-2 (okey < 15) pass, partition 3 raises —
            # so subscribers see real snapshots *before* the failure.
            if frame.column("okey").min() >= 15:
                raise RuntimeError("disk on fire")
            return frame

        return (ctx.table("sales")
                .map_partitions(boom, schema=ctx.table("sales").schema)
                .agg(F.sum("qty").alias("s"), by=["cust"]))

    return {
        "failing": failing,
        "sum_by_cust": lambda ctx, **p: ctx.table("sales").agg(
            F.sum("qty").alias("s"), by=["cust"]
        ),
        "filtered": lambda ctx, threshold=30: (
            ctx.table("sales").filter(col("qty") > threshold)
            .agg(F.count(None).alias("n"))
        ),
    }


@pytest.fixture
def server(catalog):
    ctx = WakeContext(catalog)
    service = QueryService(ctx, plans=_plans())
    server = SnapshotServer(service, port=0).start()
    yield server
    server.stop()


class TestFailedSessionStreaming:
    def test_mid_stream_subscriber_gets_terminal_error_event(
        self, server
    ):
        """Regression: a subscriber attached while the session runs must
        receive the ``end`` event carrying the failure — not hang, not
        see the stream drop silently."""
        with ServiceClient(port=server.port, timeout=30) as control:
            # paused submit: the subscriber attaches before any step
            session = control.submit("failing", paused=True)
            with ServiceClient(port=server.port, timeout=30) as sub:
                stream = sub.subscribe(session)
                control.resume(session)
                events = list(stream)  # terminates despite the failure
            assert events[-1]["event"] == "end"
            assert events[-1]["state"] == "failed"
            assert "disk on fire" in events[-1]["error"]
            snapshots = [e for e in events if e["event"] == "snapshot"]
            assert snapshots, "no snapshots before the failure"
            assert all(not e["final"] for e in snapshots)
            assert control.status(session)["state"] == "failed"

    def test_late_subscriber_to_failed_session_also_ends(self, server):
        with ServiceClient(port=server.port, timeout=30) as client:
            session = client.submit("failing")
            events = list(client.subscribe(session))
            assert events[-1]["state"] == "failed"
            replay = list(client.subscribe(session))  # after FAILED
            assert replay[-1]["event"] == "end"
            assert replay[-1]["state"] == "failed"
            assert "disk on fire" in replay[-1]["error"]

    def test_failure_event_in_scheduler_buffer(self, server):
        """The in-process view: the session buffer is sealed with the
        error, so embedded subscribers see it without the wire."""
        with ServiceClient(port=server.port, timeout=30) as client:
            session_id = client.submit("failing")
            list(client.subscribe(session_id))
        session = server.service.scheduler.get(session_id)
        assert session.buffer.closed
        assert isinstance(session.buffer.error, RuntimeError)
        assert session.subscribe().error is session.buffer.error


class TestClientReadTimeout:
    def test_hung_stream_raises_service_error(self, server):
        """A paused session produces no events; a read-timeout client
        must surface that as ServiceError instead of blocking forever."""
        with ServiceClient(port=server.port, timeout=30) as control:
            session = control.submit("sum_by_cust", paused=True)
            with ServiceClient(port=server.port, timeout=30,
                               read_timeout=0.2) as sub:
                stream = sub.subscribe(session)
                with pytest.raises(ServiceError, match="no reply"):
                    next(stream)
            control.cancel(session)

    def test_timeout_does_not_fire_on_healthy_traffic(self, server):
        with ServiceClient(port=server.port, timeout=30,
                           read_timeout=5.0) as client:
            session = client.submit("sum_by_cust")
            events = list(client.subscribe(session))
            assert events[-1]["state"] == "done"

    def test_read_timeout_defaults_to_connect_timeout(self, server):
        client = ServiceClient(port=server.port, timeout=0.2)
        try:
            session = client.submit("filtered", paused=True)
            with pytest.raises(ServiceError, match="no reply"):
                next(client.subscribe(session))
        finally:
            client.close()
