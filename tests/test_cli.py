"""CLI tests: generate / explain / run round trip."""

import subprocess
import sys

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def cli_catalog(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli_tpch")
    code = main([
        "generate", str(directory), "--scale-factor", "0.002",
        "--fact-partitions", "4", "--seed", "3",
    ])
    assert code == 0
    return directory / "catalog.json"


class TestGenerate:
    def test_writes_catalog(self, cli_catalog):
        assert cli_catalog.exists()

    def test_table_summary_printed(self, tmp_path, capsys):
        main(["generate", str(tmp_path), "--scale-factor", "0.002"])
        out = capsys.readouterr().out
        assert "lineitem" in out
        assert "catalog written" in out


class TestExplain:
    def test_explain_prints_plan(self, cli_catalog, capsys):
        assert main(["explain", str(cli_catalog), "6"]) == 0
        out = capsys.readouterr().out
        assert "read(lineitem)" in out
        assert "delivery=" in out


class TestRun:
    def test_run_prints_snapshots_and_final(self, cli_catalog, capsys):
        assert main(["run", str(cli_catalog), "6"]) == 0
        out = capsys.readouterr().out
        assert "snapshot" in out
        assert "final answer" in out

    def test_run_with_param_override(self, cli_catalog, capsys):
        assert main([
            "run", str(cli_catalog), "18", "--param", "threshold=100",
        ]) == 0
        out = capsys.readouterr().out
        assert "q18" in out

    def test_run_threaded(self, cli_catalog, capsys):
        assert main([
            "run", str(cli_catalog), "1", "--executor", "threads",
        ]) == 0
        assert "q01" in capsys.readouterr().out

    def test_bad_param_rejected(self, cli_catalog):
        with pytest.raises(SystemExit, match="bad --param"):
            main(["run", str(cli_catalog), "6", "--param", "oops"])

    def test_invalid_query_number(self, cli_catalog):
        with pytest.raises(SystemExit):
            main(["run", str(cli_catalog), "99"])


class TestProfile:
    def test_profile_prints_operator_breakdown(self, cli_catalog,
                                               capsys):
        assert main(["profile", str(cli_catalog), "6"]) == 0
        out = capsys.readouterr().out
        assert "profiling q06" in out
        assert "read(lineitem)" in out
        assert "time-ms" in out
        assert "total" in out

    def test_profile_with_param_override(self, cli_catalog, capsys):
        assert main([
            "profile", str(cli_catalog), "18",
            "--param", "threshold=100",
        ]) == 0
        assert "operator" in capsys.readouterr().out


def test_module_entrypoint():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True, timeout=120,
    )
    assert completed.returncode == 0
    assert "generate" in completed.stdout
