"""Tests for the growth-mode ablation knob on aggregates (§5.2)."""

import pytest

from repro import F, WakeContext
from repro.engine.ops import AggregateOperator
from repro.dataframe import AggSpec
from repro.errors import QueryError


class TestGrowthModeValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(QueryError, match="growth_mode"):
            AggregateOperator("a", [AggSpec("sum", "x", "s")],
                              growth_mode="quadratic")

    def test_modes_exposed(self):
        assert AggregateOperator.GROWTH_MODES == (
            "fitted", "uniform", "none")


class TestGrowthModeBehaviour:
    def total(self, catalog):
        return catalog.table("sales").read_all().column("qty").sum()

    def run_mode(self, catalog, mode):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(
            F.sum("qty").alias("s"), growth=mode
        )
        return ctx.run(plan)

    def test_uniform_scales_by_inverse_t(self, catalog):
        edf = self.run_mode(catalog, "uniform")
        first = edf.snapshots[0]
        raw_fraction = first.t
        # uniform: estimate = raw / t exactly
        expected_scale = 1.0 / raw_fraction
        # raw partial sum = estimate / expected_scale
        estimate = first.frame.column("s")[0]
        assert estimate == pytest.approx(
            self.total(catalog), rel=0.6
        )
        assert expected_scale > 1.0

    def test_none_reports_raw_partials(self, catalog):
        edf = self.run_mode(catalog, "none")
        first = edf.snapshots[0]
        # unscaled: the first estimate is roughly t * total
        assert first.frame.column("s")[0] == pytest.approx(
            self.total(catalog) * first.t, rel=0.5
        )

    @pytest.mark.parametrize("mode", ["fitted", "uniform", "none"])
    def test_all_modes_converge_exactly(self, catalog, mode):
        edf = self.run_mode(catalog, mode)
        assert edf.get_final().column("s")[0] == pytest.approx(
            self.total(catalog)
        )

    def test_fitted_tracks_uniform_on_linear_stream(self, catalog):
        fitted = self.run_mode(catalog, "fitted")
        uniform = self.run_mode(catalog, "uniform")
        # by mid-stream the fitted power should be ~1 (linear growth)
        for f, u in zip(fitted.snapshots[2:], uniform.snapshots[2:]):
            assert f.frame.column("s")[0] == pytest.approx(
                u.frame.column("s")[0], rel=0.15
            )

    def test_api_rejects_unknown_growth(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(
            F.sum("qty").alias("s"), growth="bogus"
        )
        with pytest.raises(QueryError):
            ctx.run(plan)
