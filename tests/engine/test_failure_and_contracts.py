"""Failure injection and operator-contract tests for the executors."""

import time

import numpy as np
import pytest

from repro.core.properties import Delivery, Progress, StreamInfo
from repro.dataframe import DataFrame, DType, Field, Schema, col
from repro.engine import Message, QueryGraph, SyncExecutor, ThreadedExecutor
from repro.engine.ops import (
    FilterOperator,
    MapPartitionsOperator,
    ReadOperator,
)
from repro.engine.ops.base import Operator, SourceOperator
from repro.errors import ExecutionError
from repro.storage import Catalog, write_table


class ExplodingOperator(Operator):
    """Raises after processing ``after`` messages."""

    def __init__(self, name="boom", after=1):
        super().__init__(name)
        self.after = after
        self.seen = 0

    def _derive_info(self, inputs):
        return inputs[0]

    def _handle_message(self, port, message):
        self.seen += 1
        if self.seen > self.after:
            raise RuntimeError("injected failure")
        return [message]


class TestFailureInjection:
    def build(self, catalog, after):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        boom = graph.add(ExplodingOperator(after=after), (read,))
        return graph, boom

    def test_sync_executor_propagates(self, catalog):
        graph, boom = self.build(catalog, after=2)
        with pytest.raises(RuntimeError, match="injected failure"):
            SyncExecutor(graph, boom).run()

    def test_threaded_executor_wraps_and_terminates(self, catalog):
        graph, boom = self.build(catalog, after=2)
        with pytest.raises(ExecutionError, match="injected failure"):
            ThreadedExecutor(graph, boom).run()

    def test_threaded_failure_in_mid_pipeline(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        boom = graph.add(ExplodingOperator(after=1), (read,))
        filt = graph.add(FilterOperator("f", col("qty") > 0), (boom,))
        with pytest.raises(ExecutionError):
            ThreadedExecutor(graph, filt).run()

    def test_error_path_does_not_hang_on_full_channels(self, tmp_path):
        """Regression: a consumer that dies while its bounded input
        channel is full used to leave the source thread parked in a
        blocking put forever — run() then burned the full 30 s join
        timeout and raised 'failed to terminate' instead of the original
        error.  With many more partitions than CHANNEL_CAPACITY the
        source is guaranteed to outrun the dead consumer; the original
        error must surface promptly."""
        n_parts = ThreadedExecutor.CHANNEL_CAPACITY * 4
        frame = DataFrame(
            {
                "k": np.arange(n_parts, dtype=np.int64),
                "qty": np.ones(n_parts),
            }
        )
        cat = Catalog(root=str(tmp_path))
        write_table(
            cat, tmp_path / "wide", "wide", frame, rows_per_partition=1,
            primary_key=["k"], clustering_key=["k"],
        )
        graph = QueryGraph()
        read = graph.add(ReadOperator(cat.table("wide")))
        boom = graph.add(ExplodingOperator(after=0), (read,))
        start = time.perf_counter()
        with pytest.raises(ExecutionError, match="injected failure"):
            ThreadedExecutor(graph, boom).run()
        assert time.perf_counter() - start < 15.0, (
            "error path should unblock producers, not ride out the join "
            "timeout"
        )


class TestOperatorContracts:
    def info(self):
        return StreamInfo(
            Schema([Field("x", DType.FLOAT64)]),
            delivery=Delivery.DELTA,
        )

    def message(self):
        return Message(
            frame=DataFrame({"x": np.array([1.0])}),
            progress=Progress(done={"t": 1}, total={"t": 2}),
        )

    def test_unbound_operator_rejects_access(self):
        op = FilterOperator("f", col("x") > 0)
        with pytest.raises(ExecutionError, match="not bound"):
            _ = op.output_info
        with pytest.raises(ExecutionError, match="not bound"):
            _ = op.input_infos

    def test_invalid_port(self):
        op = FilterOperator("f", col("x") > 0)
        op.bind((self.info(),))
        with pytest.raises(ExecutionError, match="invalid port"):
            op.on_message(3, self.message())

    def test_message_after_eof_rejected(self):
        op = FilterOperator("f", col("x") > 0)
        op.bind((self.info(),))
        op.on_eof(0)
        with pytest.raises(ExecutionError, match="closed port"):
            op.on_message(0, self.message())

    def test_duplicate_eof_rejected(self):
        op = FilterOperator("f", col("x") > 0)
        op.bind((self.info(),))
        op.on_eof(0)
        with pytest.raises(ExecutionError, match="duplicate EOF"):
            op.on_eof(0)

    def test_source_rejects_messages(self, catalog):
        op = ReadOperator(catalog.table("sales"))
        op.bind_source()
        with pytest.raises(ExecutionError, match="invalid port"):
            op.on_message(0, self.message())

    def test_source_stream_not_implemented(self):
        class Stub(SourceOperator):
            def _derive_info(self, inputs):
                return None

        with pytest.raises(NotImplementedError):
            Stub("s").stream()

    def test_progress_merges_across_messages(self):
        op = FilterOperator("f", col("x") > 0)
        op.bind((self.info(),))
        op.on_message(0, self.message())
        second = Message(
            frame=DataFrame({"x": np.array([2.0])}),
            progress=Progress(done={"t": 2}, total={"t": 2}),
        )
        op.on_message(0, second)
        assert op.progress.is_complete


class TestMapPartitionsContract:
    def test_schema_probe_on_empty(self, catalog):
        def project(frame):
            return frame.select(["qty"])

        op = MapPartitionsOperator("m", project)
        info = StreamInfo(
            catalog.table("sales").schema, delivery=Delivery.DELTA
        )
        out = op.bind((info,))
        assert out.schema.names == ("qty",)

    def test_declared_schema_wins(self, catalog):
        declared = Schema([Field("okey", DType.INT64)])

        def bad_probe(frame):
            raise AssertionError("must not be called")

        op = MapPartitionsOperator("m", bad_probe, schema=declared)
        info = StreamInfo(
            catalog.table("sales").schema, delivery=Delivery.DELTA
        )
        assert op.bind((info,)).schema == declared
