"""Canonical plan-hash properties (α-equivalence).

``plan_hash`` must be *equal* for plans that differ only in
presentation — commuted conjuncts, literal-on-the-left comparisons,
select output order, scan source labels, aggregate-name synonyms — and
*unequal* whenever the query actually differs (another literal, column,
aggregate, or table).  The commutation properties are checked with
hypothesis over random conjunct orderings.
"""

from functools import reduce

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

#: The catalog fixture is read-only across examples, so reuse is safe.
_FIXTURE_OK = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

from repro import WakeContext, col
from repro.api.functions import F
from repro.engine.graph import QueryGraph
from repro.engine.plan_node import (
    canon_expr,
    duplicate_groups,
    node_digests,
    plan_hash,
    plans_alpha_equal,
)
from repro.engine.ops import FilterOperator


def _graph(frame):
    graph = QueryGraph()
    output = frame.plan.materialize(graph, {})
    return graph, output


def _hash(frame):
    return plan_hash(*_graph(frame))


@pytest.fixture
def ctx(catalog):
    return WakeContext(catalog)


#: A pool of distinct conjuncts over the sales schema.
def _conjuncts():
    return [
        col("qty") > 5.0,
        col("qty") < 45.0,
        col("okey") >= 3,
        col("cust") == "c1",
        col("region") != "east",
    ]


# ---------------------------------------------------------------------------
# Equal for α-equivalent plans
# ---------------------------------------------------------------------------

@_FIXTURE_OK
@given(perm=st.permutations(list(range(5))))
def test_hash_invariant_under_conjunct_order(catalog, perm):
    ctx = WakeContext(catalog)
    pool = _conjuncts()
    base = ctx.table("sales").filter(
        reduce(lambda a, b: a & b, pool)
    ).agg(F.count().alias("n"))
    pool2 = _conjuncts()
    shuffled = ctx.table("sales").filter(
        reduce(lambda a, b: a & b, [pool2[i] for i in perm])
    ).agg(F.count().alias("n"))
    assert _hash(base) == _hash(shuffled)


@_FIXTURE_OK
@given(value=st.integers(min_value=-1000, max_value=1000))
def test_hash_flips_literal_side(catalog, value):
    ctx = WakeContext(catalog)
    v = float(value)
    a = ctx.table("sales").filter(col("qty") > v)
    b = ctx.table("sales").filter(v < col("qty"))  # noqa: SIM300
    assert _hash(a) == _hash(b)
    c = ctx.table("sales").filter(col("qty") > (v + 1.0))
    assert _hash(a) != _hash(c)


def test_hash_invariant_under_select_order(ctx):
    a = ctx.table("sales").select(x=col("qty") * 2.0, y="region")
    b = ctx.table("sales").select(y="region", x=col("qty") * 2.0)
    assert _hash(a) == _hash(b)


def test_hash_invariant_under_scan_label(ctx):
    """Two scans of one table carry distinct progress labels (sales,
    sales@2) but answer the same query — same hash."""
    a = ctx.table("sales").filter(col("qty") > 5.0)
    b = ctx.table("sales").filter(col("qty") > 5.0)
    assert _hash(a) == _hash(b)
    # …but the strict digests must differ (CSE may not merge them).
    ga, oa = _graph(a.cross_join(b))
    assert not duplicate_groups(ga, (FilterOperator,))


def test_hash_invariant_under_commuted_operands(ctx):
    a = ctx.table("sales").select(v=col("qty") * col("okey"))
    b = ctx.table("sales").select(v=col("okey") * col("qty"))
    assert _hash(a) == _hash(b)


def test_hash_invariant_under_agg_synonyms(ctx):
    a = ctx.table("sales").agg(F.std("qty").alias("s"), by=["region"])
    b = ctx.table("sales").agg(F.stddev("qty").alias("s"), by=["region"])
    assert _hash(a) == _hash(b)
    c = ctx.table("sales").agg(F.mean("qty").alias("m"), by=["region"])
    d = ctx.table("sales").agg(F.avg("qty").alias("m"), by=["region"])
    assert _hash(c) == _hash(d)


def test_plans_alpha_equal_matches_hash(ctx):
    a = ctx.table("sales").filter((col("qty") > 5.0) & (col("okey") >= 3))
    b = ctx.table("sales").filter((col("okey") >= 3) & (col("qty") > 5.0))
    assert plans_alpha_equal(*_graph(a), *_graph(b))
    c = ctx.table("sales").filter(col("qty") > 5.0)
    assert not plans_alpha_equal(*_graph(a), *_graph(c))


# ---------------------------------------------------------------------------
# Unequal for semantically different plans
# ---------------------------------------------------------------------------

def test_hash_distinguishes_literals_columns_aggs_tables(ctx):
    hashes = {
        _hash(ctx.table("sales").filter(col("qty") > 5.0)),
        _hash(ctx.table("sales").filter(col("qty") > 6.0)),
        _hash(ctx.table("sales").filter(col("qty") >= 5.0)),
        _hash(ctx.table("sales").filter(col("okey") > 5.0)),
        _hash(ctx.table("customers").filter(col("ckey") == "c1")),
        _hash(ctx.table("sales").agg(F.sum("qty").alias("x"))),
        _hash(ctx.table("sales").agg(F.prod("qty").alias("x"))),
        _hash(ctx.table("sales").agg(F.sem("qty").alias("x"))),
        _hash(ctx.table("sales").agg(F.first("qty").alias("x"))),
        _hash(ctx.table("sales").agg(F.last("qty").alias("x"))),
    }
    assert len(hashes) == 10


def test_hash_distinguishes_group_keys_and_aliases(ctx):
    a = ctx.table("sales").agg(F.sum("qty").alias("s"), by=["region"])
    b = ctx.table("sales").agg(F.sum("qty").alias("s"), by=["cust"])
    c = ctx.table("sales").agg(F.sum("qty").alias("total"), by=["region"])
    assert len({_hash(a), _hash(b), _hash(c)}) == 3


def test_hash_respects_join_input_order(ctx):
    """Joins are not symmetric: swapping build/probe sides must hash
    differently (probe-side columns survive with different suffixes)."""
    s = ctx.table("sales").agg(F.sum("qty").alias("s"), by=["cust"])
    c = ctx.table("customers")
    a = s.join(c, on=[("cust", "ckey")])
    b = c.join(s, on=[("ckey", "cust")])
    assert _hash(a) != _hash(b)


# ---------------------------------------------------------------------------
# Digest mechanics
# ---------------------------------------------------------------------------

def test_canon_expr_sorts_and_flattens():
    a = canon_expr((col("x") > 1.0) & (col("y") < 2.0) & (col("z") == 3.0))
    b = canon_expr((col("z") == 3.0) & ((col("y") < 2.0) & (col("x") > 1.0)))
    assert a == b
    assert canon_expr(col("x") > 1.0) == canon_expr(1.0 < col("x"))
    assert canon_expr(col("x") > 1.0) != canon_expr(col("x") < 1.0)


def test_strict_digests_find_separately_built_duplicates(ctx):
    t = ctx.table("sales")
    left = t.filter(col("qty") > 10.0)
    right = t.filter(col("qty") > 10.0)
    graph, _out = _graph(left.cross_join(right))
    groups = duplicate_groups(graph, (FilterOperator,))
    assert len(groups) == 1
    (ids,) = groups.values()
    assert len(ids) == 2


def test_hash_is_stable_across_materializations(ctx):
    """Same frame, fresh graphs: node ids differ, hash must not."""
    q = ctx.table("sales").filter(col("qty") > 5.0) \
        .agg(F.sum("qty").alias("s"), by=["region"])
    assert _hash(q) == _hash(q)
    digests_a = node_digests(_graph(q)[0], alpha=True)
    digests_b = node_digests(_graph(q)[0], alpha=True)
    assert sorted(digests_a.values()) == sorted(digests_b.values())
