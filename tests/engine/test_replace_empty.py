"""Regression tests: a REPLACE input that shrinks to zero groups must
retract the previous estimate with an empty snapshot — staying silent
leaves the stale estimate in every downstream sink forever."""

import numpy as np
import pytest

from repro.core.properties import Delivery, Progress, StreamInfo
from repro.dataframe import (
    AggSpec,
    DataFrame,
    DType,
    Field,
    Schema,
    col,
)
from repro.engine import Message, QueryGraph, SyncExecutor
from repro.engine.ops import AggregateOperator, FilterOperator, ReadOperator


def replace_info():
    return StreamInfo(
        Schema([
            Field("k", DType.INT64),
            Field("v", DType.FLOAT64),
        ]),
        delivery=Delivery.REPLACE,
    )


def message(frame, done, total=4, kind=Delivery.REPLACE):
    return Message(
        frame=frame,
        progress=Progress(done={"t": done}, total={"t": total}),
        kind=kind,
    )


def snapshot(n):
    return DataFrame(
        {
            "k": np.arange(n, dtype=np.int64),
            "v": np.arange(n, dtype=np.float64) + 1.0,
        }
    )


class TestOperatorLevel:
    def make_op(self):
        op = AggregateOperator(
            "a", [AggSpec("sum", "v", "s")], by=["k"]
        )
        op.bind((replace_info(),))
        return op

    def test_nonempty_to_empty_emits_empty_replace(self):
        op = self.make_op()
        out = op.on_message(0, message(snapshot(3), done=1))
        assert len(out) == 1 and out[0].frame.n_rows == 3

        out = op.on_message(0, message(snapshot(0), done=2))
        assert len(out) == 1, "stale estimate must be retracted"
        assert out[0].kind == Delivery.REPLACE
        assert out[0].frame.n_rows == 0
        # Planned layout preserved (2C consistency for the sink).
        assert out[0].frame.schema.names == ("k", "s")

    def test_final_flush_retracts_stale_estimate(self):
        op = self.make_op()
        op.on_message(0, message(snapshot(3), done=1))
        op.on_message(0, message(snapshot(0), done=4))
        flush = op.on_eof(0)
        # The empty input at t=1 already produced the empty final; EOF
        # must not resurrect the old estimate.
        assert all(m.frame.n_rows == 0 for m in flush)

    def test_eof_after_nonfinal_empty_emits_empty_final(self):
        op = self.make_op()
        op.on_message(0, message(snapshot(3), done=1))
        op.on_message(0, message(snapshot(0), done=2))
        flush = op.on_eof(0)
        assert len(flush) == 1
        assert flush[0].frame.n_rows == 0
        assert flush[0].kind == Delivery.REPLACE

    def test_empty_prefix_still_emits_nothing(self):
        """Before any estimate exists there is nothing to retract: empty
        input prefixes must not produce spurious empty snapshots."""
        op = self.make_op()
        out = op.on_message(0, message(snapshot(0), done=1))
        assert out == []
        out = op.on_message(0, message(snapshot(2), done=2))
        assert len(out) == 1 and out[0].frame.n_rows == 2

    def test_empty_delta_stream_unchanged(self):
        op = AggregateOperator("a", [AggSpec("sum", "v", "s")], by=["k"])
        info = StreamInfo(
            Schema([
                Field("k", DType.INT64),
                Field("v", DType.FLOAT64),
            ]),
            delivery=Delivery.DELTA,
        )
        op.bind((info,))
        out = op.on_message(
            0, message(snapshot(0), done=1, kind=Delivery.DELTA)
        )
        assert out == []
        assert op.on_eof(0) == []


class TestEndToEnd:
    def test_shrinking_replace_input_yields_empty_final(self, catalog):
        """agg -> filter(estimate < exact total) -> agg: intermediate
        raw-merge estimates pass the filter, the exact final does not, so
        the downstream count's final snapshot must be empty — not the
        stale count of the last non-empty snapshot."""
        total = float(catalog.table("sales").read_all().column("qty").sum())
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        inner = graph.add(
            AggregateOperator(
                "inner", [AggSpec("sum", "qty", "s")], by=[],
                growth_mode="none",  # raw merges: strictly below total
            ),
            (read,),
        )
        filt = graph.add(
            FilterOperator("shrink", col("s") < total), (inner,)
        )
        outer = graph.add(
            AggregateOperator("outer", [AggSpec("count", None, "n")]),
            (filt,),
        )
        edf = SyncExecutor(graph, outer).run()
        nonempty = [s for s in edf.snapshots if s.frame.n_rows > 0]
        assert nonempty, "intermediate estimates should pass the filter"
        assert max(
            s.frame.column("n")[0] for s in nonempty
        ) == pytest.approx(1.0)
        final = edf.get_final()
        assert final.n_rows == 0, (
            "non-empty -> empty REPLACE transition left a stale estimate"
        )
