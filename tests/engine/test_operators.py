"""Unit tests for individual operators through small graphs."""

import numpy as np
import pytest

from repro.dataframe import AggSpec, col, group_aggregate
from repro.dataframe.join import hash_join
from repro.core.properties import Delivery
from repro.engine import QueryGraph, SyncExecutor
from repro.engine.ops import (
    AggregateOperator,
    CrossJoinOperator,
    DistinctOperator,
    FilterOperator,
    HashJoinOperator,
    MapPartitionsOperator,
    MergeJoinOperator,
    ReadOperator,
    SelectOperator,
    SortLimitOperator,
)
from repro.errors import QueryError


def run(graph, output, **kwargs):
    return SyncExecutor(graph, output, **kwargs).run()


class TestReadOperator:
    def test_streams_one_message_per_partition(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        edf = run(graph, read)
        assert len(edf) == 6  # 6 partitions
        assert edf.snapshots[0].t == pytest.approx(1 / 6)
        assert edf.snapshots[-1].t == 1.0
        assert edf.is_final

    def test_accumulates_delta(self, catalog, sales_frame):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        edf = run(graph, read)
        assert edf.get_final().equals(sales_frame)
        assert edf.snapshots[0].frame.n_rows == 10

    def test_shuffled_order(self, catalog, sales_frame):
        graph = QueryGraph()
        read = graph.add(
            ReadOperator(catalog.table("sales"), order=[5, 4, 3, 2, 1, 0])
        )
        edf = run(graph, read)
        got = edf.get_final()
        assert got.n_rows == 60
        assert sorted(got.column("okey").tolist()) == sorted(
            sales_frame.column("okey").tolist()
        )

    def test_stream_info(self, catalog):
        op = ReadOperator(catalog.table("sales"))
        info = op.bind_source()
        assert info.delivery == Delivery.DELTA
        assert info.clustering_key == ("okey",)


class TestFilterOperator:
    def test_constant_filter_stays_delta(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        filt = graph.add(
            FilterOperator("f", col("region") == "east"), (read,)
        )
        infos = graph.resolve()
        assert infos[filt].delivery == Delivery.DELTA
        edf = run(graph, filt)
        final = edf.get_final()
        assert (final.column("region") == "east").all()
        assert final.n_rows == 30

    def test_unknown_column_rejected(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        graph.add(FilterOperator("f", col("nope") > 1), (read,))
        with pytest.raises(QueryError, match="unknown column"):
            graph.resolve()

    def test_filter_on_mutable_snapshot_input(self, catalog):
        # shuffle agg output (REPLACE, mutable) -> filter recomputes
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        agg = graph.add(
            AggregateOperator(
                "a", [AggSpec("sum", "qty", "s")], by=["cust"]
            ),
            (read,),
        )
        filt = graph.add(FilterOperator("f", col("s") > 0), (agg,))
        infos = graph.resolve()
        assert infos[filt].delivery == Delivery.REPLACE
        edf = run(graph, filt)
        assert edf.is_final


class TestSelectOperator:
    def test_projection_and_derivation(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        sel = graph.add(
            SelectOperator(
                "s",
                [("okey", col("okey")), ("double_qty", col("qty") * 2)],
            ),
            (read,),
        )
        edf = run(graph, sel)
        final = edf.get_final()
        assert final.column_names == ("okey", "double_qty")
        assert final.column("double_qty")[0] == pytest.approx(
            2 * catalog.table("sales").read_all().column("qty")[0]
        )

    def test_clustering_preserved_iff_projected(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        keep = graph.add(
            SelectOperator("k", [("okey", col("okey"))]), (read,)
        )
        drop = graph.add(
            SelectOperator("d", [("qty", col("qty"))]), (read,)
        )
        infos = graph.resolve()
        assert infos[keep].clustering_key == ("okey",)
        assert infos[drop].clustering_key == ()

    def test_duplicate_names_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            SelectOperator("s", [("a", col("x")), ("a", col("y"))])

    def test_mutable_propagation(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        agg = graph.add(
            AggregateOperator(
                "a", [AggSpec("sum", "qty", "s")], by=["cust"]
            ),
            (read,),
        )
        sel = graph.add(
            SelectOperator("m", [("cust", col("cust")),
                                 ("s2", col("s") * 2)]),
            (agg,),
        )
        infos = graph.resolve()
        assert infos[sel].schema.kind("s2").value == "mutable"
        assert infos[sel].schema.kind("cust").value == "constant"


class TestMapPartitions:
    def test_custom_function(self, catalog):
        def square_qty(frame):
            return frame.with_column("qty", frame.column("qty") ** 2)

        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        mp = graph.add(MapPartitionsOperator("sq", square_qty), (read,))
        edf = run(graph, mp)
        expected = catalog.table("sales").read_all().column("qty") ** 2
        np.testing.assert_allclose(
            edf.get_final().column("qty"), expected
        )


class TestAggregateOperator:
    def test_local_mode_on_clustering_key(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        agg = graph.add(
            AggregateOperator(
                "a", [AggSpec("sum", "qty", "sum_qty")], by=["okey"]
            ),
            (read,),
        )
        infos = graph.resolve()
        op = graph.node(agg).operator
        assert op.local_mode
        assert infos[agg].delivery == Delivery.DELTA
        assert infos[agg].schema.kind("sum_qty").value == "constant"
        edf = run(graph, agg)
        expected = group_aggregate(
            catalog.table("sales").read_all(), ["okey"],
            [AggSpec("sum", "qty", "sum_qty")],
        )
        got = edf.get_final()
        got_map = dict(zip(got.column("okey").tolist(),
                           got.column("sum_qty").tolist()))
        exp_map = dict(zip(expected.column("okey").tolist(),
                           expected.column("sum_qty").tolist()))
        assert got_map == pytest.approx(exp_map)

    def test_local_mode_values_never_change(self, catalog):
        """Local-mode rows are exact on first emission (recall grows,
        values constant — §8.3 category 2)."""
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        agg = graph.add(
            AggregateOperator(
                "a", [AggSpec("sum", "qty", "s")], by=["okey"]
            ),
            (read,),
        )
        edf = run(graph, agg)
        final = dict(zip(edf.get_final().column("okey").tolist(),
                         edf.get_final().column("s").tolist()))
        seen: dict[int, float] = {}
        running = 0
        for snap in edf.snapshots:
            assert snap.frame.n_rows >= running  # recall monotone
            running = snap.frame.n_rows
            for k, v in zip(snap.frame.column("okey").tolist(),
                            snap.frame.column("s").tolist()):
                assert final[k] == pytest.approx(v)
                seen[k] = v
        assert len(seen) == 30

    def test_shuffle_mode_converges_to_exact(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        agg = graph.add(
            AggregateOperator(
                "a",
                [AggSpec("sum", "qty", "s"), AggSpec("count", None, "n")],
                by=["cust"],
            ),
            (read,),
        )
        infos = graph.resolve()
        assert infos[agg].delivery == Delivery.REPLACE
        edf = run(graph, agg)
        expected = group_aggregate(
            catalog.table("sales").read_all(), ["cust"],
            [AggSpec("sum", "qty", "s"), AggSpec("count", None, "n")],
        )
        got = edf.get_final()
        got_map = dict(zip(got.column("cust").tolist(),
                           got.column("s").tolist()))
        exp_map = dict(zip(expected.column("cust").tolist(),
                           expected.column("s").tolist()))
        assert got_map == pytest.approx(exp_map)

    def test_shuffle_estimates_are_scaled(self, catalog):
        """First estimate should be in the ballpark of the final answer,
        not the raw partial sum (which would be ~6x smaller)."""
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        agg = graph.add(
            AggregateOperator(
                "a", [AggSpec("sum", "qty", "s")], by=[]
            ),
            (read,),
        )
        edf = run(graph, agg)
        total = catalog.table("sales").read_all().column("qty").sum()
        first = edf.snapshots[0].frame.column("s")[0]
        assert first == pytest.approx(total, rel=0.5)
        assert edf.get_final().column("s")[0] == pytest.approx(total)

    def test_group_by_mutable_rejected(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        agg1 = graph.add(
            AggregateOperator("a", [AggSpec("sum", "qty", "s")],
                              by=["cust"]),
            (read,),
        )
        graph.add(
            AggregateOperator("b", [AggSpec("sum", "s", "ss")], by=["s"]),
            (agg1,),
        )
        with pytest.raises(QueryError, match="mutable"):
            graph.resolve()

    def test_aggregate_over_aggregate(self, catalog):
        """Deep OLA: sum-per-okey (local) then sum-per-cust (shuffle)."""
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        per_order = graph.add(
            AggregateOperator(
                "per_order",
                [AggSpec("sum", "qty", "order_qty")],
                by=["okey"],
            ),
            (read,),
        )
        sel = graph.add(
            SelectOperator(
                "keep",
                [("okey", col("okey")), ("order_qty", col("order_qty"))],
            ),
            (per_order,),
        )
        del sel
        graph2_input = per_order
        per_cust = graph.add(
            AggregateOperator(
                "per_cust",
                [AggSpec("max", "order_qty", "biggest")],
                by=[],
            ),
            (graph2_input,),
        )
        edf = run(graph, per_cust)
        full = catalog.table("sales").read_all()
        per_order_exact = group_aggregate(
            full, ["okey"], [AggSpec("sum", "qty", "order_qty")]
        )
        expected = per_order_exact.column("order_qty").max()
        assert edf.get_final().column("biggest")[0] == pytest.approx(
            expected
        )


class TestHashJoinOperator:
    def test_inner_join_final(self, catalog, sales_frame, customers_frame):
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        cust = graph.add(ReadOperator(catalog.table("customers")))
        join = graph.add(
            HashJoinOperator("j", ["cust"], ["ckey"]), (sales, cust)
        )
        infos = graph.resolve()
        assert infos[join].delivery == Delivery.DELTA
        edf = run(graph, join)
        expected = hash_join(sales_frame, customers_frame, ["cust"],
                             ["ckey"])
        got = edf.get_final()
        assert got.n_rows == expected.n_rows
        assert sorted(got.column("name").tolist()) == sorted(
            expected.column("name").tolist()
        )

    def test_build_side_drained_first(self, catalog):
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        cust = graph.add(ReadOperator(catalog.table("customers")))
        graph.add(HashJoinOperator("j", ["cust"], ["ckey"]),
                  (sales, cust))
        priorities = graph.source_priorities()
        assert priorities[cust] == 0
        assert priorities[sales] == 1

    def test_semi_and_anti(self, catalog, sales_frame, customers_frame):
        for how, expected_rows in (("semi", 60), ("anti", 0)):
            graph = QueryGraph()
            sales = graph.add(ReadOperator(catalog.table("sales")))
            cust = graph.add(ReadOperator(catalog.table("customers")))
            join = graph.add(
                HashJoinOperator("j", ["cust"], ["ckey"], how=how),
                (sales, cust),
            )
            edf = run(graph, join)
            assert edf.get_final().n_rows == expected_rows

    def test_join_with_replace_build(self, catalog):
        """Build side is an aggregate result: buffered to its final
        snapshot (the paper's Q2/Q17 subquery pattern)."""
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        sales2 = graph.add(ReadOperator(
            catalog.table("sales"), name="read(sales2)",
            source_name="sales2"))
        per_cust = graph.add(
            AggregateOperator(
                "pc", [AggSpec("sum", "qty", "cust_total")], by=["cust"]
            ),
            (sales2,),
        )
        join = graph.add(
            HashJoinOperator("j", ["cust"], ["cust"]), (sales, per_cust)
        )
        edf = run(graph, join)
        final = edf.get_final()
        assert final.n_rows == 60
        full = catalog.table("sales").read_all()
        expected = group_aggregate(
            full, ["cust"], [AggSpec("sum", "qty", "cust_total")]
        )
        exp = dict(zip(expected.column("cust").tolist(),
                       expected.column("cust_total").tolist()))
        for c, v in zip(final.column("cust").tolist(),
                        final.column("cust_total").tolist()):
            assert v == pytest.approx(exp[c])


class TestMergeJoinOperator:
    def test_requires_clustering(self, catalog):
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        cust = graph.add(ReadOperator(catalog.table("customers")))
        graph.add(
            MergeJoinOperator("mj", "cust", "ckey"), (sales, cust)
        )
        with pytest.raises(QueryError, match="not.*clustered|clustered"):
            graph.resolve()

    def test_streaming_self_join(self, catalog, sales_frame, tmp_path):
        # second clustered copy of sales with different partitioning
        from repro.storage import write_table

        write_table(
            catalog, tmp_path / "sales_b", "sales_b", sales_frame,
            rows_per_partition=14,
            primary_key=["okey"], clustering_key=["okey"],
        )
        graph = QueryGraph()
        a = graph.add(ReadOperator(catalog.table("sales")))
        b = graph.add(ReadOperator(catalog.table("sales_b"),
                                   source_name="sales_b"))
        join = graph.add(
            MergeJoinOperator("mj", "okey", "okey"), (a, b)
        )
        infos = graph.resolve()
        assert infos[join].delivery == Delivery.DELTA
        edf = run(graph, join)
        # each okey has 2 rows per side -> 4 joined rows per okey
        final = edf.get_final()
        assert final.n_rows == 30 * 4
        # incremental: some output must appear before the last snapshot
        assert len(edf) > 1
        assert edf.snapshots[0].frame.n_rows > 0


class TestCrossJoinOperator:
    def test_live_scalar_broadcast(self, catalog):
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        total = graph.add(
            AggregateOperator(
                "tot", [AggSpec("sum", "qty", "grand")], by=[]
            ),
            (sales,),
        )
        sales2 = graph.add(
            ReadOperator(catalog.table("sales"), name="read(sales@2)")
        )
        cross = graph.add(
            CrossJoinOperator("x"), (sales2, total)
        )
        infos = graph.resolve()
        assert infos[cross].delivery == Delivery.REPLACE
        assert infos[cross].schema.kind("grand").value == "mutable"
        edf = run(graph, cross)
        final = edf.get_final()
        assert final.n_rows == 60
        expected = catalog.table("sales").read_all().column("qty").sum()
        np.testing.assert_allclose(final.column("grand"),
                                   np.full(60, expected))


class TestSortLimitOperator:
    def test_topk(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        top = graph.add(
            SortLimitOperator("t", by=["qty"], ascending=False, limit=5),
            (read,),
        )
        infos = graph.resolve()
        assert infos[top].delivery == Delivery.REPLACE
        edf = run(graph, top)
        final = edf.get_final()
        assert final.n_rows == 5
        all_qty = catalog.table("sales").read_all().column("qty")
        np.testing.assert_allclose(
            final.column("qty"), np.sort(all_qty)[::-1][:5]
        )

    def test_limit_only(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        top = graph.add(SortLimitOperator("t", limit=7), (read,))
        edf = run(graph, top)
        assert edf.get_final().n_rows == 7

    def test_requires_keys_or_limit(self):
        with pytest.raises(QueryError):
            SortLimitOperator("t")

    def test_negative_limit(self):
        with pytest.raises(QueryError):
            SortLimitOperator("t", limit=-1)


class TestDistinctOperator:
    def test_incremental_distinct(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        distinct = graph.add(
            DistinctOperator("d", subset=["cust"]), (read,)
        )
        infos = graph.resolve()
        assert infos[distinct].delivery == Delivery.DELTA
        edf = run(graph, distinct)
        final = edf.get_final()
        assert sorted(final.column("cust").tolist()) == [
            "c0", "c1", "c2", "c3", "c4"]
        # once emitted, a key never re-appears
        seen: set[str] = set()
        for snap in edf.snapshots:
            for c in snap.frame.column("cust").tolist():
                pass
        total_emitted = sum(
            len(set(s.frame.column("cust").tolist())) for s in
            [edf.snapshots[-1]]
        )
        assert total_emitted == 5
